"""Table I — accuracy & latency versus spike-train length.

Regenerates the paper's Table I (LeNet-5 on MNIST-class data, two
convolution units, 100 MHz): accuracy rises and saturates with T while
latency grows linearly.  The timed kernel is the quantized integer
inference that produces the accuracy column.
"""

from pathlib import Path

import numpy as np

from benchmarks.conftest import print_table, write_artifact

RESULTS_PATH = (Path(__file__).resolve().parent.parent
                / "artifacts" / "bench_table1.json")


def test_table1_report(runner, benchmark):
    result = runner.run_table1()
    print_table(result["table"])
    write_artifact(RESULTS_PATH, {"rows": result["rows"]})

    rows = result["rows"]
    accs = [r["accuracy_pct"] for r in rows]
    lats = [r["latency_us"] for r in rows]
    # Shape assertions mirroring the paper's observations:
    assert accs[-1] >= accs[0] - 0.2, "accuracy must not degrade with T"
    assert max(accs) > 95.0, "peak accuracy must be in the paper's regime"
    diffs = np.diff(lats)
    assert np.all(diffs > 0) and diffs.std() / diffs.mean() < 0.05, \
        "latency must scale linearly with T"

    snn, _ = runner.lenet_snn(4)
    _, test = runner.mnist()
    images = test.images[:64]
    benchmark(lambda: snn.forward_ints(images))

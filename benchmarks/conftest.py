"""Shared fixtures for the benchmark suite.

The session-scoped runner trains each workload model once (results are
cached in ``<repo>/artifacts``, so later sessions skip training) and every
benchmark prints its paper-table next to the timing numbers.  ``rng``
mirrors the test suite's deterministic per-test generator so stochastic
benchmark inputs reproduce.
"""

import numpy as np
import pytest

from repro.harness import ExperimentRunner
from tests.conftest import seed_for


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    return ExperimentRunner()


@pytest.fixture
def rng(request) -> np.random.Generator:
    """Per-benchmark deterministic numpy Generator (REPRO_TEST_SEED wins)."""
    return np.random.default_rng(seed_for(request.node.nodeid))


def print_table(table) -> None:
    print("\n\n" + table.render() + "\n")

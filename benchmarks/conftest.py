"""Shared fixtures and helpers for the benchmark suite.

The session-scoped runner trains each workload model once (results are
cached in ``<repo>/artifacts``, so later sessions skip training) and every
benchmark prints its paper-table next to the timing numbers.  ``rng``
mirrors the test suite's deterministic per-test generator so stochastic
benchmark inputs reproduce.

Every ``bench_*.json`` artifact goes through :func:`write_artifact`,
which stamps the host context (``cpu_count``, ``fast_mode``) so a
number in an artifact can always be interpreted: a speedup measured on
one core or under ``REPRO_FAST=1`` smoke scale is not comparable to a
full run on a wide box.  Parallel speedup gates use
:func:`skip_unless_multicore` / :func:`multicore` so single-core hosts
skip uniformly instead of failing (or silently passing) gates that
cannot be meaningful there.
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.harness import ExperimentRunner
from tests.conftest import seed_for

#: Smoke-scale mode (CI): smaller workloads, same artifact schema.
FAST_MODE = bool(os.environ.get("REPRO_FAST"))


def host_stamp() -> dict:
    """Host context recorded into every benchmark artifact."""
    return {"cpu_count": os.cpu_count(), "fast_mode": FAST_MODE}


def _json_safe(value):
    """json.dumps ``default`` hook: numpy scalars/arrays to native types
    (paper-table rows carry np.float64 cells straight from the models)."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON-serializable: {type(value).__name__}")


def write_artifact(path: Path, results: dict) -> None:
    """Write a ``bench_*.json`` artifact with the uniform host stamp
    plus the run's telemetry rollup (span totals, per-stage time)."""
    from repro.telemetry import telemetry_summary

    payload = dict(results)
    payload.update(host_stamp())
    payload["telemetry"] = telemetry_summary()
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, default=_json_safe)
                    + "\n")
    print(f"wrote {path}")


def multicore(needed: int = 2) -> bool:
    """Whether the host can make a ``needed``-way parallel gate meaningful."""
    return (os.cpu_count() or 1) >= needed


def skip_unless_multicore(needed: int = 2,
                          what: str = "parallel speedup gate") -> None:
    """Uniform 1-core skip for gates that require real parallelism."""
    if not multicore(needed):
        pytest.skip(f"{os.cpu_count() or 1} core(s) visible: "
                    f"{what} needs >= {needed}")


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    return ExperimentRunner()


@pytest.fixture
def rng(request) -> np.random.Generator:
    """Per-benchmark deterministic numpy Generator (REPRO_TEST_SEED wins)."""
    return np.random.default_rng(seed_for(request.node.nodeid))


def print_table(table) -> None:
    print("\n\n" + table.render() + "\n")

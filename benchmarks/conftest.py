"""Shared fixtures for the benchmark suite.

The session-scoped runner trains each workload model once (results are
cached in ``<repo>/artifacts``, so later sessions skip training) and every
benchmark prints its paper-table next to the timing numbers.
"""

import pytest

from repro.harness import ExperimentRunner


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    return ExperimentRunner()


def print_table(table) -> None:
    print("\n\n" + table.render() + "\n")

"""Robustness ablation — weight-memory fault injection.

Flips random bits in the deployed 3-bit weight memories (the BRAM-upset
failure mode of FPGA accelerators) and measures the accuracy degradation
curve.  Checks that accuracy degrades gracefully at small fault rates and
collapses toward chance at large ones — i.e. the quantized network has no
single point of catastrophic failure.  The timed kernel is one
fault-injection + evaluation round.
"""

from pathlib import Path

from repro.analysis import sensitivity_curve
from repro.harness import Table

from benchmarks.conftest import print_table, write_artifact

RESULTS_PATH = (Path(__file__).resolve().parent.parent
                / "artifacts" / "bench_fault_injection.json")


def test_fault_injection_report(runner, benchmark):
    snn, baseline_acc = runner.lenet_snn(4)
    _, test = runner.mnist()

    curve = sensitivity_curve(
        snn, test, flip_fractions=(0.0, 0.001, 0.01, 0.05, 0.2),
        seed=3, max_samples=300)

    table = Table(
        "Fault injection - accuracy vs weight-bit flip rate (LeNet-5, T=4)",
        ["flip rate", "bits flipped", "accuracy %"])
    for point in curve:
        table.add_row(f"{point.flip_fraction:.3f}",
                      f"{point.num_flips:,}", point.accuracy * 100)
    print_table(table)
    write_artifact(RESULTS_PATH, {
        "baseline_accuracy": baseline_acc,
        "curve": [{"flip_fraction": point.flip_fraction,
                   "num_flips": point.num_flips,
                   "accuracy": point.accuracy} for point in curve],
    })

    accs = [p.accuracy for p in curve]
    assert accs[0] > 0.9, "baseline must be intact"
    assert accs[1] > accs[0] - 0.10, \
        "0.1% flips must not collapse accuracy"
    assert accs[-1] < accs[0] - 0.2, \
        "20% flips must visibly damage the network"

    benchmark.pedantic(
        lambda: sensitivity_curve(snn, test, flip_fractions=(0.01,),
                                  seed=0, max_samples=100),
        rounds=2, iterations=1)

"""Zero-copy dispatch benchmark — per-worker tax and wire bytes.

The zero-copy PR's two claims, measured and gated:

* **Process-lane scaling** — the per-worker dispatch tax (serialize,
  queue, wake, deserialize) must be small enough that adding a second
  process lane *helps*: a warmed 2-lane process group must clear the
  same uniform work list faster than a warmed 1-lane group
  (speedup > 1.0x, hard gate on machines with >= 2 cores; the pytest
  path skips uniformly on 1 core).  Dispatch goes through
  ``submit_many`` so chunked batching and, where available, the
  shared-memory image lane are both on the timed path.  Bit-equality
  against a serial thread-lane baseline rides along with every
  measurement.
* **Wire bytes** — shipping a work item as a binary frame (JSON header
  + raw buffers, lossless COO for mostly-zero planes) must cut the
  per-item wire bytes by >= 4x against the v1 base64-JSON line encoding
  for event-style sparse inputs (hard gate everywhere; the dense-input
  ratio is recorded for context — base64 alone costs 4/3x, so dense
  frames land near 1.33x).

Results land in ``artifacts/bench_zero_copy.json`` next to the other
trajectory files (backends, sweep, serve, runtime, multimodel).
"""

import os

# Pin BLAS to one thread per process *before* numpy initializes: the
# lane-scaling claim is about dispatch overhead versus a second process
# lane, not an OpenBLAS thread-pool lottery.  Under pytest numpy is
# already loaded; ci.yml sets the same.
for _var in ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS",
             "MKL_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import time
from pathlib import Path

import numpy as np

from repro.core import AcceleratorConfig
from repro.harness import Table
from repro.models import performance_network
from repro.runtime import (
    Deployment,
    WorkItem,
    WorkerGroup,
    create_workers,
    encode_array,
    encode_frame,
    encode_line,
    shm_available,
)

from benchmarks.bench_backends import _event_batch
from benchmarks.conftest import (
    FAST_MODE,
    multicore,
    print_table,
    skip_unless_multicore,
    write_artifact,
)

RESULTS_PATH = (Path(__file__).resolve().parent.parent
                / "artifacts" / "bench_zero_copy.json")
NUM_ITEMS = 8 if FAST_MODE else 12
ITEM_BATCH = 64 if FAST_MODE else 96
WIRE_BATCH = 64
WIRE_REDUCTION_GATE = 4.0


def _deployment(rng) -> Deployment:
    network = performance_network(
        [("conv", 8, 3, 1, 1), ("pool", 2), ("conv", 16, 3, 1, 1),
         ("pool", 2), ("flatten",), ("linear", 10)],
        input_shape=(1, 16, 16), num_steps=3,
        seed=int(rng.integers(1 << 16)))
    return Deployment(network=network,
                      config=AcceleratorConfig.for_network(network))


def run_lane_scaling(rng) -> dict:
    """Warmed 1-lane vs 2-lane process groups on the same work list."""
    deployment = _deployment(rng)
    shape = deployment.network.input_shape
    items = [WorkItem(i, 0, rng.random((ITEM_BATCH,) + shape))
             for i in range(NUM_ITEMS)]

    # Serial thread-lane ground truth every lane count must reproduce.
    with WorkerGroup(create_workers(["thread"]),
                     deployments=[deployment]) as group:
        baseline = group.run(items)

    walls, batched = {}, {}
    for lanes in (1, 2):
        group = WorkerGroup(create_workers(["process"] * lanes),
                            deployments=[deployment])
        with group:
            group.run(items[:2])  # spin the lanes up before timing
            started = time.perf_counter()
            futures = group.submit_many(items)
            results = [future.result() for future in futures]
            walls[lanes] = time.perf_counter() - started
            batched[lanes] = group.metrics.batched
        # Determinism rides along: lanes must not change a single bit.
        for base, result in zip(baseline, results):
            np.testing.assert_array_equal(base.logits, result.logits)
            assert base.merged_trace() == result.merged_trace()

    return {
        "items": NUM_ITEMS,
        "item_batch": ITEM_BATCH,
        "shm_lane": shm_available(),
        "wall_1_lane_s": walls[1],
        "wall_2_lane_s": walls[2],
        "speedup_2_vs_1": walls[1] / walls[2],
        "items_batched": batched,
        "bit_identical": True,
    }


def _wire_bytes(images: np.ndarray) -> tuple[int, int]:
    """(v1 base64-JSON line bytes, binary frame bytes) for one item."""
    payload = {"op": "execute", "item_id": 0, "deployment": 0}
    json_line = encode_line({**payload, "images": encode_array(images)})
    frame = encode_frame(payload, {"images": images})
    return len(json_line), len(frame)


def run_wire_comparison(rng) -> dict:
    """Per-item wire bytes, binary frame vs base64-JSON line."""
    sparse = _event_batch(rng, (1, 32, 32), WIRE_BATCH)
    dense = rng.random((WIRE_BATCH, 1, 32, 32))

    sparse_json, sparse_frame = _wire_bytes(sparse)
    dense_json, dense_frame = _wire_bytes(dense)
    return {
        "batch": WIRE_BATCH,
        "sparse_input_density": float(
            np.count_nonzero(sparse) / sparse.size),
        "sparse_json_bytes": sparse_json,
        "sparse_frame_bytes": sparse_frame,
        "reduction_sparse": sparse_json / sparse_frame,
        "dense_json_bytes": dense_json,
        "dense_frame_bytes": dense_frame,
        "reduction_dense": dense_json / dense_frame,
    }


def run_bench(rng) -> dict:
    return {
        "lanes": run_lane_scaling(rng),
        "wire": run_wire_comparison(rng),
    }


def _render(payload: dict) -> Table:
    lanes = payload["lanes"]
    wire = payload["wire"]
    table = Table(
        "Zero-copy dispatch - lane scaling and wire bytes "
        f"({os.cpu_count()} cores)",
        ["metric", "value"])
    table.add_row("work list",
                  f"{lanes['items']} items x {lanes['item_batch']} images")
    table.add_row("shm image lane", lanes["shm_lane"])
    table.add_row("1-lane wall (s)", f"{lanes['wall_1_lane_s']:.2f}")
    table.add_row("2-lane wall (s)", f"{lanes['wall_2_lane_s']:.2f}")
    table.add_row("2-lane speedup", f"{lanes['speedup_2_vs_1']:.2f}x")
    table.add_row("bit-identical", lanes["bit_identical"])
    table.add_row("wire item",
                  f"{wire['batch']} images, density "
                  f"{wire['sparse_input_density']:.3f}")
    table.add_row("sparse json -> frame bytes",
                  f"{wire['sparse_json_bytes']} -> "
                  f"{wire['sparse_frame_bytes']} "
                  f"({wire['reduction_sparse']:.1f}x)")
    table.add_row("dense json -> frame bytes",
                  f"{wire['dense_json_bytes']} -> "
                  f"{wire['dense_frame_bytes']} "
                  f"({wire['reduction_dense']:.2f}x)")
    return table


def check_gates(payload: dict) -> None:
    """Acceptance bars, shared by the pytest and __main__ paths."""
    assert payload["lanes"]["bit_identical"]
    reduction = payload["wire"]["reduction_sparse"]
    assert reduction >= WIRE_REDUCTION_GATE, \
        (f"binary frames must cut per-item wire bytes >= "
         f"{WIRE_REDUCTION_GATE}x vs base64-JSON on sparse input, "
         f"measured {reduction:.2f}x")
    if multicore(2):
        speedup = payload["lanes"]["speedup_2_vs_1"]
        assert speedup > 1.0, \
            (f"a warmed 2-lane process group must beat 1 lane on a "
             f"uniform work list, measured {speedup:.2f}x")
    else:
        print(f"note: only {os.cpu_count()} core(s) visible - the "
              ">1.0x 2-lane bar needs >= 2; numbers recorded for "
              "the record")


def test_zero_copy_dispatch(rng, benchmark):
    skip_unless_multicore(2, "zero-copy 2-lane speedup gate")
    payload = run_bench(rng)
    print_table(_render(payload))
    write_artifact(RESULTS_PATH, payload)
    check_gates(payload)

    deployment = _deployment(rng)
    shape = deployment.network.input_shape
    items = [WorkItem(i, 0, rng.random((ITEM_BATCH,) + shape))
             for i in range(NUM_ITEMS)]

    def two_lane_run():
        with WorkerGroup(create_workers(["process", "process"]),
                         deployments=[deployment]) as group:
            for future in group.submit_many(items):
                future.result()

    benchmark.pedantic(two_lane_run, rounds=1, iterations=1)


if __name__ == "__main__":
    bench_rng = np.random.default_rng(13)
    bench_payload = run_bench(bench_rng)
    print(_render(bench_payload).render())
    write_artifact(RESULTS_PATH, bench_payload)
    check_gates(bench_payload)

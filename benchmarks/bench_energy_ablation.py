"""Energy-breakdown ablation — where the joules go.

Complements the wall-power model with the bottom-up activity-based
breakdown (``repro.core.energy``): adder operations vs on-chip memory vs
DRAM streaming.  Two claims are checked:

* with on-chip weights, compute+BRAM dominate and per-op adder energy is
  ~10x below a DSP-multiplier datapath (the paper's adder-only argument);
* forcing the same network's weights through DRAM makes DRAM energy
  dominant — the reason the paper keeps activations on-chip and streams
  only what cannot fit.

Energy is averaged over several images through ``Controller.run_images``
— the aggregated multi-image trace — instead of quoting a single
inference, so the data-dependent adder-activity term reflects real input
variety.  The timed kernel is the full multi-image functional inference
+ energy accounting.
"""

from repro.core import (
    AcceleratorConfig,
    Controller,
    EnergyConstants,
    compile_network,
    trace_energy,
)
from pathlib import Path

from repro.core.config import MemoryConfig
from repro.harness import Table

from benchmarks.conftest import print_table, write_artifact

RESULTS_PATH = (Path(__file__).resolve().parent.parent
                / "artifacts" / "bench_energy_ablation.json")

NUM_IMAGES = 3  # reference engine: seconds/image; enough for an average


def test_energy_ablation_report(runner, benchmark):
    snn, _ = runner.lenet_snn(3)
    _, test = runner.mnist()
    images = test.images[:NUM_IMAGES]

    def run_with(config):
        compiled = compile_network(snn.network, config)
        controller = Controller(compiled)
        _, merged = controller.run_images(images)
        return merged

    onchip_cfg = AcceleratorConfig()
    stream_cfg = AcceleratorConfig(
        memory=MemoryConfig(onchip_weight_capacity=1))

    merge_onchip = run_with(onchip_cfg)
    merge_stream = run_with(stream_cfg)
    e_onchip = trace_energy(merge_onchip)
    e_stream = trace_energy(merge_stream)

    table = Table(
        "Energy ablation - LeNet-5, T=3 (per inference, microjoules, "
        f"averaged over {NUM_IMAGES} images)",
        ["weights", "compute", "on-chip mem", "DRAM", "accumulator",
         "total", "dominant"])
    for label, e, n in (("on-chip", e_onchip, merge_onchip.num_images),
                        ("streamed", e_stream, merge_stream.num_images)):
        table.add_row(label, e.compute_pj * 1e-6 / n,
                      e.onchip_memory_pj * 1e-6 / n, e.dram_pj * 1e-6 / n,
                      e.accumulator_pj * 1e-6 / n, e.total_uj / n,
                      e.dominant())
    print_table(table)

    constants = EnergyConstants()
    dsp_ratio = constants.multiplier_op_pj / constants.adder_op_pj
    print(f"adder vs DSP-multiply energy per op: {dsp_ratio:.1f}x")

    write_artifact(RESULTS_PATH, {
        "num_images": NUM_IMAGES,
        "adder_vs_dsp_ratio": dsp_ratio,
        "breakdown_uj_per_image": {
            label: {"compute": e.compute_pj * 1e-6 / n,
                    "onchip_memory": e.onchip_memory_pj * 1e-6 / n,
                    "dram": e.dram_pj * 1e-6 / n,
                    "accumulator": e.accumulator_pj * 1e-6 / n,
                    "total": e.total_uj / n,
                    "dominant": e.dominant()}
            for label, e, n in (
                ("onchip", e_onchip, merge_onchip.num_images),
                ("streamed", e_stream, merge_stream.num_images))},
    })

    assert merge_onchip.num_images == NUM_IMAGES
    assert e_onchip.dram_pj == 0.0
    assert e_stream.dram_pj > 0.0
    assert e_stream.dominant() == "dram"
    assert e_stream.total_pj > e_onchip.total_pj

    assert dsp_ratio > 5.0

    benchmark.pedantic(
        lambda: trace_energy(run_with(onchip_cfg)), rounds=2, iterations=1)

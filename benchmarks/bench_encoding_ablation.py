"""Section IV-B claim — radix versus rate encoding.

The paper: radix encoding reaches state-of-the-art accuracy at T=6 where
rate-coded designs (Fang et al.) need about ten steps, "hence a potential
efficiency improvement of around 40%".  This benchmark regenerates both
accuracy-vs-T curves on the same trained LeNet and computes the implied
step ratio and efficiency gain.  The timed kernel is radix encode+decode
throughput over a full activation tensor.
"""

from pathlib import Path

import numpy as np

from repro.encoding import radix

from benchmarks.conftest import print_table, write_artifact

RESULTS_PATH = (Path(__file__).resolve().parent.parent
                / "artifacts" / "bench_encoding_ablation.json")


def test_encoding_ablation_report(runner, benchmark):
    result = runner.run_encoding_ablation()
    print_table(result["table"])
    comparison = result["comparison"]
    write_artifact(RESULTS_PATH, {
        "target_accuracy": comparison.target_accuracy,
        "radix_steps": comparison.radix_steps,
        "rate_steps": comparison.rate_steps,
        "efficiency_gain": comparison.efficiency_gain,
        "curves": {
            curve.encoding: {"num_steps": list(curve.num_steps),
                             "accuracies": list(curve.accuracies)}
            for curve in (result["radix"], result["rate"])},
    })
    print(f"target accuracy : {comparison.target_accuracy * 100:.2f}%")
    print(f"radix needs T = {comparison.radix_steps}")
    print(f"rate  needs T = {comparison.rate_steps}")
    if comparison.efficiency_gain is not None:
        print(f"efficiency gain : {comparison.efficiency_gain * 100:.0f}% "
              "(paper: ~40%)")

    radix_curve, rate_curve = result["radix"], result["rate"]
    # Radix saturates fast:
    assert radix_curve.best_accuracy() > 0.95
    assert comparison.radix_steps is not None
    assert comparison.radix_steps <= 6
    # Rate needs a much longer train for the same accuracy (the paper's
    # baseline needed ~10 steps with their optimized flow; plain
    # threshold balancing is slower still).
    if comparison.rate_steps is not None:
        assert comparison.rate_steps >= round(1.5 * comparison.radix_steps)
        assert comparison.efficiency_gain >= 0.3
    else:
        assert rate_curve.best_accuracy() < comparison.target_accuracy

    values = np.random.default_rng(0).random((16, 64, 64))

    def encode_decode():
        return radix.decode_ints(radix.encode_real(values, 6))

    benchmark(encode_decode)

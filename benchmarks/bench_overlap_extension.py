"""Extension ablation — what overlap optimizations would buy.

The paper's DRAM option stalls compute while each layer's weights stream
in, and frames run strictly sequentially.  This benchmark prices the two
natural extensions on the paper's own VGG-11 deployment: prefetching the
next layer's weights during compute, and pipelining frames through the
layer sequence.  (These are what-if estimates on top of the calibrated
model — clearly separated from the reproduction numbers.)
"""

from pathlib import Path

from repro.core import AcceleratorConfig
from repro.core.pipeline import pipelined_throughput, prefetch_latency
from repro.harness import Table
from repro.models import vgg11_performance_network

from benchmarks.conftest import print_table, write_artifact

RESULTS_PATH = (Path(__file__).resolve().parent.parent
                / "artifacts" / "bench_overlap_extension.json")


def test_overlap_extension_report(runner, benchmark):
    net = vgg11_performance_network(num_steps=6)
    config = AcceleratorConfig.for_network(net, num_conv_units=8,
                                           clock_mhz=115.0)

    prefetch = prefetch_latency(net, config)
    pipeline = pipelined_throughput(net, config, weights_on_chip=False)

    to_ms = 1.0 / config.clock_mhz / 1000.0
    table = Table(
        "Overlap extensions - VGG-11, 8 units, 115 MHz (what-if)",
        ["configuration", "cycles/frame", "ms/frame", "fps"])
    table.add_row("paper baseline (stall on DRAM)",
                  f"{prefetch.baseline_cycles:,}",
                  prefetch.baseline_cycles * to_ms,
                  1000.0 / (prefetch.baseline_cycles * to_ms))
    table.add_row("+ weight prefetch",
                  f"{prefetch.optimized_cycles:,}",
                  prefetch.optimized_cycles * to_ms,
                  1000.0 / (prefetch.optimized_cycles * to_ms))
    table.add_row("+ frame pipelining (steady state)",
                  f"{pipeline.optimized_cycles:,}",
                  pipeline.optimized_cycles * to_ms,
                  1000.0 / (pipeline.optimized_cycles * to_ms))
    print_table(table)
    write_artifact(RESULTS_PATH, {
        "clock_mhz": config.clock_mhz,
        "baseline_cycles": prefetch.baseline_cycles,
        "prefetch_cycles": prefetch.optimized_cycles,
        "pipelined_cycles": pipeline.optimized_cycles,
        "baseline_fps": 1000.0 / (prefetch.baseline_cycles * to_ms),
        "prefetch_fps": 1000.0 / (prefetch.optimized_cycles * to_ms),
        "pipelined_fps": 1000.0 / (pipeline.optimized_cycles * to_ms),
    })

    assert prefetch.optimized_cycles < prefetch.baseline_cycles
    assert pipeline.optimized_cycles < prefetch.optimized_cycles

    benchmark(lambda: (prefetch_latency(net, config),
                       pipelined_throughput(net, config, False)))

"""Multi-model pool benchmark — shared capacity beats static partitions.

The deployment-registry refactor lets several models share one
``WorkerGroup`` engine pool.  The claim this benchmark gates: on a
**skewed** two-model load (one model carries most of the offered work),
a shared pool of N lanes holding *both* deployments clears the load
measurably faster than two isolated pools of N/2 lanes each — because
in the shared pool every lane can execute every model, so capacity
flows to the busy model instead of idling behind the partition.

Acceptance bars:

* **Shared-pool speedup** — shared 2-lane pool vs two isolated 1-lane
  pools on the same skewed work list: ≥ 1.15x on machines with
  ≥ 2 cores (recorded either way, with the core count in the payload).
  The bar was 1.5x before zero-copy dispatch; most of that old margin
  was the per-item pickling tax the isolated pools paid N times over,
  which chunked ``submit_many`` + shm lanes removed.  What remains is
  the true capacity-flow effect, capped well short of the ideal 2x on
  a 2-core host where the parent dispatcher contends with both lanes
  (each arrangement is timed ``TIMED_RUNS`` times, min scored).
* **Bit-exactness** — both arrangements produce results bit-identical to
  a serial thread-lane baseline, per deployment (hard gate everywhere).
* **Serving spot-check** — a multi-model :class:`InferenceServer` on one
  pool answers each deployment's requests equal to its direct
  ``run_batch`` (hard gate everywhere).

Results land in ``artifacts/bench_multimodel.json`` next to the other
trajectory files (backends, sweep, serve, runtime).
"""

import os

# Pin BLAS to one thread per process *before* numpy initializes: the
# shared-pool claim is about lane scheduling, not an OpenBLAS thread-pool
# lottery.  Under pytest numpy is already loaded; ci.yml sets the same.
for _var in ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS",
             "MKL_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import asyncio
import time
from pathlib import Path

import numpy as np

from repro.core import AcceleratorConfig
from repro.harness import Table
from repro.models import performance_network
from repro.runtime import (
    Deployment,
    DeploymentRegistry,
    WorkItem,
    WorkerGroup,
    create_workers,
)
from repro.serve import InferenceServer

from benchmarks.conftest import (
    FAST_MODE as FAST,
    multicore,
    print_table,
    write_artifact,
)

RESULTS_PATH = (Path(__file__).resolve().parent.parent
                / "artifacts" / "bench_multimodel.json")
HEAVY_ITEMS = 8 if FAST else 10
HEAVY_BATCH = 96
LIGHT_ITEMS = 3 if FAST else 4
LIGHT_BATCH = 4
SHARED_GATE = 1.15
#: Timed runs per arrangement; the min is scored.  Zero-copy dispatch
#: cut the per-item tax so far that a single fast-mode run is inside
#: OS scheduler noise on a 2-core host.
TIMED_RUNS = 3


def _deployments(rng) -> DeploymentRegistry:
    """One heavy and one light model — the skew is in the *load*."""
    heavy = performance_network(
        [("conv", 8, 3, 1, 1), ("pool", 2), ("conv", 16, 3, 1, 1),
         ("pool", 2), ("flatten",), ("linear", 10)],
        input_shape=(1, 16, 16), num_steps=3,
        seed=int(rng.integers(1 << 16)))
    light = performance_network(
        [("conv", 4, 3, 1, 1), ("pool", 2), ("flatten",), ("linear", 5)],
        input_shape=(1, 8, 8), num_steps=3,
        seed=int(rng.integers(1 << 16)))
    registry = DeploymentRegistry()
    registry.register("heavy", Deployment(
        network=heavy, config=AcceleratorConfig.for_network(heavy)))
    registry.register("light", Deployment(
        network=light, config=AcceleratorConfig.for_network(light)))
    return registry


def _skewed_items(rng, registry) -> list[WorkItem]:
    """Nearly all offered work lands on the heavy deployment."""
    heavy = registry.resolve("heavy").deployment.network
    light = registry.resolve("light").deployment.network
    items = [WorkItem(i, 0, rng.random((HEAVY_BATCH,)
                                       + heavy.input_shape))
             for i in range(HEAVY_ITEMS)]
    items += [WorkItem(1000 + i, 1, rng.random((LIGHT_BATCH,)
                                               + light.input_shape))
              for i in range(LIGHT_ITEMS)]
    return items


def _run_serial_baseline(registry, items):
    """Thread-lane ground truth every arrangement must reproduce."""
    with WorkerGroup(create_workers(["thread"]),
                     deployments=registry) as group:
        return group.run(items)


def _run_shared(registry, items) -> tuple[list, float]:
    """One 2-lane pool holding both deployments."""
    group = WorkerGroup(create_workers(["process", "process"]),
                        deployments=registry)
    wall = float("inf")
    with group:
        group.run(items[:1] + items[-1:])  # warm both models' engines
        for _ in range(TIMED_RUNS):
            started = time.perf_counter()
            results = group.run(items)
            wall = min(wall, time.perf_counter() - started)
    return results, wall


def _run_isolated(registry, items) -> tuple[list, float]:
    """Two 1-lane pools, one model each — the static partition."""
    table = registry.table()
    groups = [WorkerGroup(create_workers(["process"]),
                          deployments=[table[index]])
              for index in range(2)]
    try:
        for group in groups:
            group.start()
        for item in (items[0], items[-1]):  # warm both partitions
            rewired = WorkItem(item.item_id, 0, item.images)
            groups[item.deployment].run([rewired])
        wall = float("inf")
        for _ in range(TIMED_RUNS):
            started = time.perf_counter()
            futures = [None] * len(items)
            for index in range(2):
                positions = [pos for pos, item in enumerate(items)
                             if item.deployment == index]
                # Each partition holds a one-entry table: index 0
                # locally.  One submit_many per partition, so both
                # arrangements get the same chunked dispatch.
                lane = groups[index].submit_many(
                    [WorkItem(items[pos].item_id, 0, items[pos].images)
                     for pos in positions])
                for pos, future in zip(positions, lane):
                    futures[pos] = future
            results = [future.result() for future in futures]
            wall = min(wall, time.perf_counter() - started)
    finally:
        for group in groups:
            group.stop()
    return results, wall


def _assert_bit_identical(baseline, other) -> None:
    for base, result in zip(baseline, other):
        np.testing.assert_array_equal(base.logits, result.logits)
        assert base.merged_trace() == result.merged_trace()


def run_pool_comparison(rng) -> dict:
    registry = _deployments(rng)
    items = _skewed_items(rng, registry)
    baseline = _run_serial_baseline(registry, items)
    shared_results, shared_wall = _run_shared(registry, items)
    isolated_results, isolated_wall = _run_isolated(registry, items)
    _assert_bit_identical(baseline, shared_results)
    _assert_bit_identical(baseline, isolated_results)
    return {
        "heavy_items": HEAVY_ITEMS,
        "heavy_batch": HEAVY_BATCH,
        "light_items": LIGHT_ITEMS,
        "light_batch": LIGHT_BATCH,
        "shared_wall_s": shared_wall,
        "isolated_wall_s": isolated_wall,
        "shared_speedup": isolated_wall / shared_wall,
        "bit_identical": True,
    }


def run_serving_spot_check(rng) -> dict:
    """Two deployments on one serving pool, predictions verified."""
    registry = _deployments(rng)
    heavy = registry.resolve("heavy").deployment
    light = registry.resolve("light").deployment
    heavy_images = rng.random((6,) + heavy.network.input_shape)
    light_images = rng.random((6,) + light.network.input_shape)

    async def main():
        server = InferenceServer(registry, max_batch=4, engines=2)
        async with server:
            heavy_results, light_results = await asyncio.gather(
                server.submit_many(heavy_images, deployment="heavy"),
                server.submit_many(light_images, deployment="light"))
            snapshot = server.snapshot()
        return heavy_results, light_results, snapshot

    heavy_results, light_results, snapshot = asyncio.run(main())
    for deployment, images, results in (
            (heavy, heavy_images, heavy_results),
            (light, light_images, light_results)):
        direct, _ = deployment.engine().run_batch(images)
        np.testing.assert_array_equal(
            [result.prediction for result in results],
            direct.argmax(axis=1))
    return {
        "verified_requests": len(heavy_results) + len(light_results),
        "per_deployment_completed": {
            name: payload["completed"]
            for name, payload in snapshot.per_deployment.items()},
    }


def run_bench(rng) -> dict:
    return {
        "pool": run_pool_comparison(rng),
        "serving": run_serving_spot_check(rng),
    }


def _render(payload: dict) -> Table:
    pool = payload["pool"]
    serving = payload["serving"]
    table = Table(
        "Multi-model pools - shared lanes vs static partitions "
        f"({os.cpu_count()} cores)",
        ["metric", "value"])
    table.add_row("skewed load",
                  f"{pool['heavy_items']}x{pool['heavy_batch']} heavy + "
                  f"{pool['light_items']}x{pool['light_batch']} light")
    table.add_row("isolated wall (s)", f"{pool['isolated_wall_s']:.2f}")
    table.add_row("shared wall (s)", f"{pool['shared_wall_s']:.2f}")
    table.add_row("shared-pool speedup", f"{pool['shared_speedup']:.2f}x")
    table.add_row("bit-identical", pool["bit_identical"])
    table.add_row("served + verified requests",
                  serving["verified_requests"])
    for name, count in serving["per_deployment_completed"].items():
        table.add_row(f"  completed[{name}]", count)
    return table


def check_gates(payload: dict) -> None:
    """Acceptance bars, shared by the pytest and __main__ paths."""
    assert payload["pool"]["bit_identical"]
    assert payload["serving"]["verified_requests"] > 0
    if multicore(2):
        speedup = payload["pool"]["shared_speedup"]
        assert speedup >= SHARED_GATE, \
            (f"a shared multi-model pool must be >= {SHARED_GATE}x two "
             f"isolated half-size pools on a skewed load, measured "
             f"{speedup:.2f}x")
    else:
        print(f"note: only {os.cpu_count()} core(s) visible - the "
              f">={SHARED_GATE}x shared-pool bar needs >= 2; numbers "
              "recorded for the record")


def test_multimodel_pool(rng, benchmark):
    payload = run_bench(rng)
    print_table(_render(payload))
    write_artifact(RESULTS_PATH, payload)
    check_gates(payload)

    registry = _deployments(rng)
    items = _skewed_items(rng, registry)

    def shared_run():
        with WorkerGroup(create_workers(["process", "process"]),
                         deployments=registry) as group:
            group.run(items)

    benchmark.pedantic(shared_run, rounds=1, iterations=1)


if __name__ == "__main__":
    bench_rng = np.random.default_rng(11)
    bench_payload = run_bench(bench_rng)
    print(_render(bench_payload).render())
    write_artifact(RESULTS_PATH, bench_payload)
    check_gates(bench_payload)

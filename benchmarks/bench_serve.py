"""Serving benchmark — micro-batch coalescing vs batch-size-1 serving.

Drives the asyncio inference server (``repro.serve``) with an open-loop
load generator on a fixed LeNet-5 deployment (vectorized engine) and
records to ``artifacts/bench_serve.json``:

* the head-to-head: batch-size-1 serving vs greedy micro-batching at the
  *same* offered load — the coalescing speedup is the PR's acceptance
  bar (>= 3x);
* a latency/throughput curve for the coalescing server across offered
  loads (0.5x .. 4x the engine's single-image rate);
* the deadline (SLO) policy at moderate load, with the measured p99
  against the configured target.

Every phase runtime-asserts that each served prediction equals the
direct ``Accelerator.run_logits`` argmax for the same image — batching
must never change results, only when they arrive.

The model is an untrained ``performance_network`` LeNet: serving
throughput and latency do not depend on the weight values, and skipping
training keeps the benchmark self-contained and fast.
"""

import os

# Pin BLAS before numpy initializes its thread pool (see bench_sweep.py):
# the comparison is request coalescing vs per-request dispatch, and a
# multi-threaded GEMM under the batch-1 server would blur exactly the
# per-call overhead the benchmark measures.
for _var in ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS",
             "MKL_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import asyncio
import time
from pathlib import Path

import numpy as np

from repro.core import Accelerator, AcceleratorConfig, warm_engine
from repro.harness import Table
from repro.models import performance_network
from repro.serve import InferenceServer, LoadGenerator
from repro.snn import SNNModel

from benchmarks.conftest import FAST_MODE, print_table, write_artifact

RESULTS_PATH = (Path(__file__).resolve().parent.parent
                / "artifacts" / "bench_serve.json")
NUM_REQUESTS = 256 if FAST_MODE else 1024
MAX_BATCH = 32
SLO_MS = 75.0
#: Offered-load multipliers (of the engine's single-image rate) for the
#: latency/throughput curve.
CURVE_LOADS = (0.5, 1.0, 2.0, 4.0)
#: The head-to-head runs well past batch-1 capacity so both servers are
#: saturated by the same offered stream.
HEAD_TO_HEAD_LOAD = 4.0


def _lenet_network():
    """LeNet-5 geometry at the repo's 12x12 MNIST scale, T=3."""
    return performance_network(
        [("conv", 6, 5, 1, 2), ("pool", 2), ("conv", 16, 5, 1, 0),
         ("pool", 2), ("flatten",), ("linear", 120), ("linear", 84),
         ("linear", 10)],
        input_shape=(1, 12, 12), num_steps=3, seed=0)


def _request_images(network, count: int) -> np.ndarray:
    rng = np.random.default_rng(0)
    return rng.random((count,) + network.input_shape)


def measure_single_image_rate(network, config) -> float:
    """Images/s of the engine itself at batch size 1 (no serving layer)."""
    engine = warm_engine(network, config)
    image = _request_images(network, 1)
    engine.run_batch(image)  # warm numpy paths
    start = time.perf_counter()
    count = 0
    while time.perf_counter() - start < 0.5:
        engine.run_batch(image)
        count += 1
    return count / (time.perf_counter() - start)


def run_serve_phase(network, config, images, rate_rps,
                    expected_predictions, **server_kwargs) -> dict:
    """One load phase: build a server, offer the stream, check, report."""

    async def main():
        async with InferenceServer(network, config,
                                   **server_kwargs) as server:
            generator = LoadGenerator(server.submit, rate_rps=rate_rps)
            report = await generator.run(images)
            return report, server.snapshot()

    report, snapshot = asyncio.run(main())
    assert report.failed == 0, f"{report.failed} requests failed"
    served = np.array([r.prediction for r in report.results])
    np.testing.assert_array_equal(served, expected_predictions)
    return {
        "offered_rps": report.offered_rps,
        "achieved_rps": report.achieved_rps,
        "wall_s": report.wall_s,
        "num_requests": report.num_requests,
        "mean_batch_size": snapshot.mean_batch_size,
        "latency_ms": snapshot.latency_ms,
        "queue_wait_ms": snapshot.queue_wait_ms,
        "service_ms": snapshot.service_ms,
    }


def run_bench() -> dict:
    network = _lenet_network()
    config = AcceleratorConfig.for_network(network)
    images = _request_images(network, NUM_REQUESTS)

    # Ground truth for the runtime prediction assert in every phase.
    accelerator = Accelerator(config, backend="vectorized", warm=True)
    accelerator.deploy(SNNModel(network), name="LeNet-5 T=3")
    direct_logits, _ = accelerator.run_logits(images)
    expected = direct_logits.argmax(axis=1)

    base_rps = measure_single_image_rate(network, config)

    # Head-to-head at the same offered load, well past batch-1 capacity.
    offered = HEAD_TO_HEAD_LOAD * base_rps
    batch1 = run_serve_phase(
        network, config, images, offered, expected,
        policy="greedy", max_batch=1, max_wait_ms=0.0)
    coalesced = run_serve_phase(
        network, config, images, offered, expected,
        policy="greedy", max_batch=MAX_BATCH, max_wait_ms=2.0)
    speedup = coalesced["achieved_rps"] / batch1["achieved_rps"]

    # Latency/throughput curve for the coalescing server.
    curve = []
    for multiplier in CURVE_LOADS:
        phase = run_serve_phase(
            network, config, images, multiplier * base_rps, expected,
            policy="greedy", max_batch=MAX_BATCH, max_wait_ms=2.0)
        phase["load_multiplier"] = multiplier
        curve.append(phase)

    # Deadline policy: moderate load, p99 must land under the SLO.
    deadline = run_serve_phase(
        network, config, images, 1.5 * base_rps, expected,
        policy="deadline", max_batch=MAX_BATCH, slo_ms=SLO_MS)
    deadline["slo_ms"] = SLO_MS

    return {
        "workload": (f"LeNet-5 T=3, vectorized, {NUM_REQUESTS} requests, "
                     f"max_batch {MAX_BATCH}"),
        "single_image_rps": base_rps,
        "head_to_head_offered_rps": offered,
        "batch1": batch1,
        "coalesced": coalesced,
        "speedup_coalesced_vs_batch1": speedup,
        "curve": curve,
        "deadline": deadline,
    }


def _render(payload: dict) -> Table:
    table = Table(
        f"Serving - coalesced micro-batching vs batch-1 "
        f"({payload['workload']}, {os.cpu_count()} cores)",
        ["configuration", "offered rps", "achieved rps", "mean batch",
         "p50 ms", "p99 ms"])

    def row(label, phase):
        table.add_row(label, f"{phase['offered_rps']:.0f}",
                      f"{phase['achieved_rps']:.0f}",
                      f"{phase['mean_batch_size']:.1f}",
                      f"{phase['latency_ms']['p50']:.2f}",
                      f"{phase['latency_ms']['p99']:.2f}")

    row("batch-1", payload["batch1"])
    row(f"coalesced (<= {MAX_BATCH})", payload["coalesced"])
    for phase in payload["curve"]:
        row(f"curve {phase['load_multiplier']:.1f}x", phase)
    row(f"deadline (SLO {SLO_MS:.0f} ms)", payload["deadline"])
    table.add_row("coalescing speedup", "",
                  f"{payload['speedup_coalesced_vs_batch1']:.2f}x",
                  "", "", "")
    return table


def check_serve_bars(payload: dict) -> None:
    """The acceptance gates, shared by the pytest and __main__ paths."""
    speedup = payload["speedup_coalesced_vs_batch1"]
    assert speedup >= 3.0, (
        f"coalesced micro-batching must sustain >= 3x the batch-1 "
        f"throughput at equal offered load, got {speedup:.2f}x")
    p99 = payload["deadline"]["latency_ms"]["p99"]
    assert p99 < payload["deadline"]["slo_ms"], (
        f"deadline policy p99 {p99:.2f} ms exceeds the "
        f"{payload['deadline']['slo_ms']} ms SLO")


def test_serve_coalescing(benchmark):
    payload = run_bench()
    print_table(_render(payload))
    write_artifact(RESULTS_PATH, payload)
    check_serve_bars(payload)

    network = _lenet_network()
    config = AcceleratorConfig.for_network(network)
    images = _request_images(network, 64)

    async def one_wave():
        async with InferenceServer(network, config,
                                   max_batch=MAX_BATCH) as server:
            await server.submit_many(images)

    benchmark.pedantic(lambda: asyncio.run(one_wave()),
                       rounds=2, iterations=1)


if __name__ == "__main__":
    bench_payload = run_bench()
    print(_render(bench_payload).render())
    write_artifact(RESULTS_PATH, bench_payload)
    check_serve_bars(bench_payload)

"""Autotune benchmark — the calibration subsystem's two hard gates.

Measured, not guessed: this benchmark calibrates the LeNet deployment
(:func:`repro.core.engine.calibrate.calibrate_deployment`), then holds
the resulting table to its promises and records the evidence in
``artifacts/bench_autotune.json``:

* **Density routing** — at every density bucket from near-silent to
  dense, the ``auto`` backend (which routes each batch to ``sparse`` or
  ``vectorized`` by observed density using the calibrated crossover)
  must land within 5 % of the *better* of the two fixed backends, and
  at the sparsest and densest buckets it must be strictly faster than
  the *worse* one — i.e. routing by the table picks the winning engine
  where the choice matters.  Logits and traces are asserted
  bit-identical across all three backends at every bucket.
* **Saturation-aware sharding** — on a cheap-per-image event workload
  (mostly silent frames on the sparse backend), a
  ``SweepDriver(saturate=True)`` run on 2 process lanes must beat a
  fixed 4-image shard size (fine enough to be harmless on dense
  ~ms-per-image work, but once the per-image cost collapses on a
  mostly-silent stream the per-unit dispatch tax dominates every lane)
  by >= 1.1x wall clock with bit-identical merged predictions and
  trace counters.  The two
  configurations are swept in paired alternating rounds and compared by
  median per-round ratio — forked-lane wall clocks are the noisiest
  numbers in the suite.  Requires >= 2 cores; skipped (pytest) or
  omitted (``__main__``) below that.
"""

import itertools
import time
from pathlib import Path

import numpy as np

from repro.core import AcceleratorConfig
from repro.core.engine import warm_engine
from repro.core.engine.calibrate import calibrate_deployment, probe_batch
from repro.harness import Table
from repro.harness.sweep import SweepDriver, SweepTask

from benchmarks.conftest import (
    FAST_MODE,
    multicore,
    print_table,
    skip_unless_multicore,
    write_artifact,
)

RESULTS_PATH = (Path(__file__).resolve().parent.parent
                / "artifacts" / "bench_autotune.json")
DENSITY_BUCKETS = (0.02, 0.10, 0.25, 0.50, 0.90)
BATCH = 16 if FAST_MODE else 48
ROUNDS = 12 if FAST_MODE else 18
#: Re-measures allowed per bucket before its gate verdict sticks — a
#: mis-route fails all of them; a noisy neighbour usually only one.
MEASURE_ATTEMPTS = 3
#: Saturated-sharding workload: mostly silent event frames (cheap per
#: image) so the per-unit dispatch tax dominates a fixed-shard run.
SHARD_IMAGES = 384 if FAST_MODE else 1024
SHARD_SILENT_FRAC = 0.75
SHARD_DENSITY = 0.03
#: The fixed baseline: a shard size that amortizes fine on dense
#: ~ms-per-image work but leaves lanes paying more dispatch than
#: compute once the per-image cost collapses on an event stream —
#: exactly the blind spot saturation-aware sizing exists to close.
SHARD_FIXED = 4
SHARD_GATE = 1.1
#: Paired fixed-vs-saturated sweep rounds; the gate reads the median
#: per-round wall ratio.
SHARD_SWEEP_ROUNDS = 5


def _best_time(fn, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _calibrated_lenet(runner):
    """LeNet + the config every sweep/serve entry point deploys it under,
    with its calibration table measured (or reloaded) and installed."""
    snn, _ = runner.lenet_snn(3)
    config = AcceleratorConfig.for_network(snn.network)
    table, cached = calibrate_deployment(snn.network, config,
                                         store=runner.store)
    return snn, config, table, cached


def run_auto_routing(runner, rng) -> dict:
    """Gate 1: auto must track the better fixed backend per bucket."""
    snn, config, table, cached = _calibrated_lenet(runner)
    # Warm-cache engines: install_table refreshed their thresholds in
    # place, and auto's children ARE these instances — so the race
    # below compares routing overhead, not engine-instance luck.
    engines = {name: warm_engine(snn.network, config, name)
               for name in ("vectorized", "sparse", "auto")}
    assert engines["auto"]._sparse is engines["sparse"]
    assert engines["auto"]._dense is engines["vectorized"]

    # Every ordering of the three engines, cycled across rounds: a
    # fixed or merely rotated order hands some engine a permanently
    # warm predecessor (e.g. vectorized always running right after
    # auto's vectorized delegate) and biases the race by 5-15% on a
    # busy host.  Paired per-round ratios + median (below) then cancel
    # clock drift that spans rounds.
    orders = list(itertools.permutations(engines))

    def measure(images) -> dict:
        rounds = []
        for engine in engines.values():
            engine.run_batch(images)              # full-batch warm-up
        for index in range(ROUNDS):
            row = {}
            for name in orders[index % len(orders)]:
                engine = engines[name]
                row[name] = _best_time(
                    lambda: engine.run_batch(images), rounds=1)
            rounds.append(row)
        seconds = {name: float(np.median([row[name] for row in rounds]))
                   for name in engines}
        return {
            "vectorized_s": seconds["vectorized"],
            "sparse_s": seconds["sparse"],
            "auto_s": seconds["auto"],
            "auto_vs_best": float(np.median(
                [min(row["vectorized"], row["sparse"]) / row["auto"]
                 for row in rounds])),
            "auto_vs_worst": float(np.median(
                [max(row["vectorized"], row["sparse"]) / row["auto"]
                 for row in rounds])),
        }

    buckets = []
    for position, density in enumerate(DENSITY_BUCKETS):
        images = probe_batch(snn.network.input_shape, density, BATCH, rng)
        extreme = position in (0, len(DENSITY_BUCKETS) - 1)
        # Routing is deterministic; the race against a noisy-neighbour
        # clock is not.  A failed attempt re-rolls the measurement (a
        # real mis-route keeps failing every attempt), bounded at 3.
        for attempt in range(1, MEASURE_ATTEMPTS + 1):
            stats = measure(images)
            if stats["auto_vs_best"] >= 0.95 and (
                    not extreme or stats["auto_vs_worst"] > 1.0):
                break

        outputs = {name: engine.run_batch(images)
                   for name, engine in engines.items()}
        # Bit-identity across all three backends, logits AND traces.
        ref_logits, ref_traces = outputs["vectorized"]
        for name in ("sparse", "auto"):
            logits, traces = outputs[name]
            np.testing.assert_array_equal(logits, ref_logits)
            for trace, ref in zip(traces, ref_traces):
                assert trace.total_cycles == ref.total_cycles, name
                assert trace.total_adder_ops == ref.total_adder_ops, name

        buckets.append({
            "target_density": density,
            "input_density": float(np.count_nonzero(images)
                                   / images.size),
            "routed": engines["auto"].last_backend,
            "attempts": attempt,
            **stats,
        })

    # The gates: within 5% of the better backend everywhere; strictly
    # ahead of the worse one where the routing choice matters most.
    for bucket in buckets:
        assert bucket["auto_vs_best"] >= 0.95, (
            f"auto must be within 5% of the better backend at density "
            f"{bucket['input_density']:.3f}: {bucket}")
    for bucket in (buckets[0], buckets[-1]):
        assert bucket["auto_vs_worst"] > 1.0, (
            f"auto must beat the worse backend at the extreme density "
            f"{bucket['input_density']:.3f}: {bucket}")

    return {
        "workload": "LeNet-5, T=3, event blob frames per density bucket",
        "batch": BATCH,
        "calibration_cached": cached,
        "backend_crossover": table.backend_crossover,
        "hook_crossovers": table.hook_crossovers,
        "coo_ratio": table.coo_ratio,
        "buckets": buckets,
    }


def _shard_workload(shape, rng) -> np.ndarray:
    return probe_batch(shape, SHARD_DENSITY, SHARD_IMAGES, rng,
                       silent_frac=SHARD_SILENT_FRAC)


def run_saturated_sharding(runner, rng) -> dict:
    """Gate 2: saturate=True must beat fixed shards on 2 process lanes."""
    snn, config, table, _ = _calibrated_lenet(runner)
    images = _shard_workload(snn.network.input_shape, rng)
    labels = np.zeros(len(images), dtype=np.int64)
    # Warm the parent-side compile so forked lanes inherit it (and the
    # saturating probe measures compute, not compilation — 16 images is
    # the probe's own batch size, so its buffers are warm too).
    warm_engine(snn.network, config, "sparse").run_batch(images[:16])

    def sweep(saturate: bool) -> tuple:
        task = SweepTask(key="saturate-bench", network=snn.network,
                         config=config, images=images, labels=labels,
                         backend="sparse")
        driver = SweepDriver(workers=2, shard_size=SHARD_FIXED,
                             saturate=saturate)
        outcome = driver.run([task])["saturate-bench"]
        return outcome, driver.last_summary

    # Paired rounds, alternating order: forked-lane wall clocks drift
    # on phases longer than a whole best-of-N block, so timing the two
    # configurations back to back and taking the median per-round
    # ratio is the only comparison the host cannot skew.
    fixed_walls, sat_walls, ratios = [], [], []
    for round_index in range(SHARD_SWEEP_ROUNDS):
        configs = [False, True] if round_index % 2 == 0 else [True, False]
        walls = {}
        for saturate in configs:
            outcome, summary = sweep(saturate)
            walls[saturate] = summary.wall_s
            if saturate:
                sat_outcome, sat_summary = outcome, summary
            else:
                fixed_outcome, fixed_summary = outcome, summary
        fixed_walls.append(walls[False])
        sat_walls.append(walls[True])
        ratios.append(walls[False] / walls[True])

    # Shard sizing is pure scheduling: the merge must not notice it.
    np.testing.assert_array_equal(sat_outcome.predictions,
                                  fixed_outcome.predictions)
    assert (sat_outcome.trace.total_cycles
            == fixed_outcome.trace.total_cycles)
    assert (sat_outcome.trace.total_adder_ops
            == fixed_outcome.trace.total_adder_ops)

    sat_size = sat_summary.task_shard_sizes["saturate-bench"]
    speedup = float(np.median(ratios))
    results = {
        "workload": (f"LeNet-5 sparse backend, {SHARD_IMAGES} event "
                     f"frames ({SHARD_SILENT_FRAC:.0%} silent, density "
                     f"{SHARD_DENSITY})"),
        "lanes": 2,
        "fixed_shard_size": SHARD_FIXED,
        "saturated_shard_size": sat_size,
        "dispatch_cost_s": table.dispatch_cost_s,
        "wall_fixed_s": float(np.median(fixed_walls)),
        "wall_saturated_s": float(np.median(sat_walls)),
        "speedup": speedup,
    }
    assert sat_size > SHARD_FIXED, (
        f"saturating sizer should grow shards on this workload, "
        f"chose {sat_size}")
    assert speedup >= SHARD_GATE, (
        f"saturated sharding must be >= {SHARD_GATE}x the fixed-shard "
        f"sweep, got {speedup:.2f}x: {results}")
    return results


def _render_routing(results: dict) -> Table:
    table = Table(
        "backend=auto - density routing vs fixed backends (LeNet-5)",
        ["density", "routed", "vec s", "sparse s", "auto s", "vs best"])
    for bucket in results["buckets"]:
        table.add_row(f"{bucket['input_density']:.3f}", bucket["routed"],
                      f"{bucket['vectorized_s']:.4f}",
                      f"{bucket['sparse_s']:.4f}",
                      f"{bucket['auto_s']:.4f}",
                      f"{bucket['auto_vs_best']:.2f}x")
    return table


def _render_sharding(results: dict) -> Table:
    table = Table("Saturation-aware sharding - 2 process lanes",
                  ["sharding", "images/unit", "wall s", "speedup"])
    table.add_row("fixed", results["fixed_shard_size"],
                  f"{results['wall_fixed_s']:.2f}", "1.0x")
    table.add_row("saturated", results["saturated_shard_size"],
                  f"{results['wall_saturated_s']:.2f}",
                  f"{results['speedup']:.2f}x")
    return table


def test_autotune_report(runner, rng):
    routing = run_auto_routing(runner, rng)
    print_table(_render_routing(routing))
    skip_unless_multicore(2, "saturated sharding gate")
    sharding = run_saturated_sharding(runner, rng)
    print_table(_render_sharding(sharding))
    write_artifact(RESULTS_PATH,
                   {"routing": routing, "sharding": sharding})


if __name__ == "__main__":
    from repro.harness import ExperimentRunner

    main_runner = ExperimentRunner()
    main_rng = np.random.default_rng(0)
    routing_results = run_auto_routing(main_runner, main_rng)
    print(_render_routing(routing_results).render())
    payload = {"routing": routing_results}
    if multicore(2):
        sharding_results = run_saturated_sharding(main_runner, main_rng)
        print(_render_sharding(sharding_results).render())
        payload["sharding"] = sharding_results
    else:
        print("single core visible: saturated sharding gate omitted")
    write_artifact(RESULTS_PATH, payload)

"""Pipelined fabric benchmark — in-flight windows and the result cache.

The pipelining PR's three claims, measured and gated:

* **Windowed remote lane** — with real wire latency between the driver
  and a ``WorkerServer`` (injected here by an in-bench TCP relay that
  sleeps before forwarding each burst), a windowed lane (W=4) must
  clear the same work list >= 1.3x faster than stop-and-wait (W=1):
  chunk N+1 is encoded and on the wire while chunk N computes remotely,
  so the per-chunk RTT stops serializing the lane.
* **Pipelined process sweep** — the sweep fabric's dispatch engine
  (the same ``WorkerGroup`` that ``repro sweep --window`` constructs),
  draining event-frame shards on the sparse backend with one shard per
  chunk and process lanes sized to leave the driver its own core (every
  other core runs a lane — the saturated PR 9 configuration), must
  clear the work list >= 1.15x faster with W=2 double-buffered lanes
  than under PR 9's stop-and-wait dispatch (W=1).  Warmed groups and
  best-of-N drains look through cgroup CPU throttling — forked-lane
  wall clocks are the noisiest numbers in the suite — and each gate
  re-measures up to 3 times before its verdict sticks (a real
  regression fails every attempt; a noisy neighbour usually one).
* **Result-cache serving** — a duplicate-heavy serving load must clear
  its repeated requests >= 5x faster than the cold pass: cache hits
  replay the stored logits+trace at admission without touching a lane.

Bit-equality rides along with every measurement: windowed merges match
a serial thread-lane baseline, and cache hits replay the cold results
verbatim.  Results land in ``artifacts/bench_pipeline.json``.
"""

import os

# Pin BLAS to one thread per process *before* numpy initializes: the
# pipelining claims are about overlap in the dispatch path, not an
# OpenBLAS thread-pool lottery.  Under pytest numpy is already loaded;
# ci.yml sets the same.
for _var in ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS",
             "MKL_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import asyncio
import itertools
import socket
import threading
import time
from pathlib import Path

import numpy as np

from repro.core import AcceleratorConfig
from repro.core.engine.calibrate import probe_batch
from repro.harness import Table
from repro.models import performance_network
from repro.runtime import (
    Deployment,
    RemoteWorker,
    ThreadWorker,
    WorkItem,
    WorkerGroup,
    WorkerServer,
    create_workers,
)
from repro.serve import InferenceServer

from benchmarks.conftest import (
    FAST_MODE,
    multicore,
    print_table,
    skip_unless_multicore,
    write_artifact,
)

RESULTS_PATH = (Path(__file__).resolve().parent.parent
                / "artifacts" / "bench_pipeline.json")

#: One-way injected wire latency per direction; every request and reply
#: burst pays it, so stop-and-wait pays a full RTT per chunk.
WIRE_LATENCY_S = 0.010 if FAST_MODE else 0.020
REMOTE_ITEMS = 8 if FAST_MODE else 12
REMOTE_BATCH = 4
REMOTE_WINDOW = 4
REMOTE_GATE = 1.3

#: Sweep workload: mostly-silent event frames on the sparse backend —
#: per-image compute is tiny, so the per-chunk dispatch turnaround
#: (pack, queue, wake, reply decode) is a real fraction of each chunk.
SWEEP_UNITS = 32 if FAST_MODE else 48
SWEEP_SHARD = 4
SWEEP_SILENT_FRAC = 0.75
SWEEP_DENSITY = 0.03
#: Best-of-N drains per window config: the un-throttled drain is the
#: one comparable across configs on a cgroup-throttled host.
SWEEP_ROUNDS = 3 if FAST_MODE else 4
#: Saturated: every core beyond the driver's runs a process lane (the
#: issue's 2-lane shape on >= 3 cores; 1 lane + driver on 2).
SWEEP_LANES = max(1, min(2, (os.cpu_count() or 1) - 1))
SWEEP_GATE = 1.15

CACHE_REQUESTS = 16 if FAST_MODE else 48
CACHE_GATE = 5.0

#: Re-measures allowed per gate before its verdict sticks.
MEASURE_ATTEMPTS = 3


class LatencyRelay:
    """In-bench TCP relay adding one-way latency in each direction.

    Listens on an ephemeral port, forwards every connection to
    ``upstream_port``, and sleeps ``latency_s`` before relaying each
    received burst — a stop-and-wait exchange pays the full RTT per
    chunk while pipelined frames coalesce into shared bursts, exactly
    the wire behaviour windowed dispatch exists to hide.
    """

    def __init__(self, upstream_port: int, latency_s: float) -> None:
        self.upstream_port = upstream_port
        self.latency_s = latency_s
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.port = self._listener.getsockname()[1]
        threading.Thread(target=self._accept, daemon=True).start()

    def _accept(self) -> None:
        while True:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            upstream = socket.create_connection(
                ("127.0.0.1", self.upstream_port))
            for src, dst in ((client, upstream), (upstream, client)):
                threading.Thread(target=self._pump, args=(src, dst),
                                 daemon=True).start()

    def _pump(self, src: socket.socket, dst: socket.socket) -> None:
        try:
            while True:
                data = src.recv(1 << 20)
                if not data:
                    break
                time.sleep(self.latency_s)
                dst.sendall(data)
        except OSError:
            pass
        finally:
            for sock in (src, dst):
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass

    def close(self) -> None:
        try:
            self._listener.close()
        except OSError:
            pass


def _deployment(rng) -> Deployment:
    network = performance_network(
        [("conv", 4, 3, 1, 1), ("pool", 2), ("flatten",), ("linear", 10)],
        input_shape=(1, 12, 12), num_steps=3,
        seed=int(rng.integers(1 << 16)))
    return Deployment(network=network,
                      config=AcceleratorConfig.for_network(network))


def run_remote_pipelining(rng) -> dict:
    """Gate 1: windowed remote lane vs stop-and-wait under latency."""
    deployment = _deployment(rng)
    shape = deployment.network.input_shape
    items = [WorkItem(i, 0, rng.random((REMOTE_BATCH,) + shape))
             for i in range(REMOTE_ITEMS)]
    warmup = [WorkItem(900 + i, 0, rng.random((REMOTE_BATCH,) + shape))
              for i in range(2)]

    # Serial thread-lane ground truth every window size must reproduce.
    with WorkerGroup([ThreadWorker()], deployments=[deployment]) as group:
        baseline = group.run(items)

    walls, pipelined = {}, {}
    with WorkerServer(window=REMOTE_WINDOW) as server:
        relay = LatencyRelay(server.port, WIRE_LATENCY_S)
        try:
            for window in (1, REMOTE_WINDOW):
                worker = RemoteWorker("127.0.0.1", relay.port,
                                      name=f"wire-w{window}")
                group = WorkerGroup([worker], deployments=[deployment],
                                    window=window, max_batch_items=1,
                                    heartbeat_s=30.0)
                with group:
                    group.run(warmup)  # connect+deploy off the timed path
                    started = time.perf_counter()
                    futures = group.submit_many(items)
                    results = [future.result() for future in futures]
                    walls[window] = time.perf_counter() - started
                    pipelined[window] = group.metrics.pipelined
                for base, result in zip(baseline, results):
                    np.testing.assert_array_equal(base.logits,
                                                  result.logits)
                    assert base.merged_trace() == result.merged_trace()
        finally:
            relay.close()

    return {
        "items": REMOTE_ITEMS,
        "item_batch": REMOTE_BATCH,
        "wire_latency_ms": WIRE_LATENCY_S * 1e3,
        "window": REMOTE_WINDOW,
        "wall_stop_and_wait_s": walls[1],
        "wall_windowed_s": walls[REMOTE_WINDOW],
        "speedup": walls[1] / walls[REMOTE_WINDOW],
        "chunks_pipelined": pipelined[REMOTE_WINDOW],
        "bit_identical": True,
    }


def run_sweep_pipelining(rng) -> dict:
    """Gate 2: W=2 double-buffered process lanes vs PR 9 stop-and-wait.

    Drives the sweep fabric's dispatch engine the way ``repro sweep
    --window`` constructs it: one event-frame shard per chunk on the
    sparse backend, process lanes on every core beyond the driver's.
    Lanes are warmed (fork, deploy, first-touch arenas) before timing
    and each config keeps its best of ``SWEEP_ROUNDS`` drains.
    """
    network = performance_network(
        [("conv", 4, 3, 1, 1), ("pool", 2), ("flatten",), ("linear", 10)],
        input_shape=(1, 16, 16), num_steps=3,
        seed=int(rng.integers(1 << 16)))
    deployment = Deployment(
        network=network, config=AcceleratorConfig.for_network(network),
        backend="sparse")
    shards = [probe_batch(network.input_shape, SWEEP_DENSITY,
                          SWEEP_SHARD, rng,
                          silent_frac=SWEEP_SILENT_FRAC)
              for _ in range(SWEEP_UNITS)]
    ids = itertools.count()

    def make_items() -> list:
        # Fresh ids per drain: the group's exactly-once done-set would
        # replay a repeated id instead of executing it.
        return [WorkItem(next(ids), 0, images) for images in shards]

    # Serial thread-lane ground truth every window size must reproduce.
    with WorkerGroup([ThreadWorker()], deployments=[deployment]) as group:
        baseline = group.run(make_items())

    def drain(group) -> tuple:
        items = make_items()
        started = time.perf_counter()
        results = [future.result() for future in group.submit_many(items)]
        return time.perf_counter() - started, results

    walls = {}
    for window in (1, 2):
        group = WorkerGroup(create_workers(["process"] * SWEEP_LANES),
                            deployments=[deployment], window=window,
                            max_batch_items=1, heartbeat_s=30.0)
        with group:
            drain(group)  # fork + deploy + arenas off the timed path
            walls[window], results = min(
                (drain(group) for _ in range(SWEEP_ROUNDS)),
                key=lambda pair: pair[0])
        # Windowing is pure scheduling: the merge must not notice it.
        for base, result in zip(baseline, results):
            np.testing.assert_array_equal(base.logits, result.logits)
            assert base.merged_trace() == result.merged_trace()

    return {
        "workload": (f"sparse backend, {SWEEP_UNITS} shards x "
                     f"{SWEEP_SHARD} event frames "
                     f"({SWEEP_SILENT_FRAC:.0%} silent, density "
                     f"{SWEEP_DENSITY})"),
        "lanes": SWEEP_LANES,
        "window": 2,
        "rounds": SWEEP_ROUNDS,
        "wall_stop_and_wait_s": walls[1],
        "wall_windowed_s": walls[2],
        "speedup": walls[1] / walls[2],
        "bit_identical": True,
    }


def run_cache_serving(rng) -> dict:
    """Gate 3: duplicate-heavy serving, cache-hit pass vs cold pass."""
    network = performance_network(
        [("conv", 4, 3, 1, 1), ("pool", 2), ("flatten",), ("linear", 10)],
        input_shape=(1, 12, 12), num_steps=3,
        seed=int(rng.integers(1 << 16)))
    shape = network.input_shape
    images = [rng.random((1,) + shape)[0] for _ in range(CACHE_REQUESTS)]
    warmup = rng.random((1,) + shape)[0]

    async def main():
        async with InferenceServer(network, max_wait_ms=0.0,
                                   result_cache=2 * CACHE_REQUESTS
                                   ) as server:
            await server.submit(warmup)  # compile off the timed path
            started = time.perf_counter()
            cold = [await server.submit(image) for image in images]
            cold_wall = time.perf_counter() - started
            started = time.perf_counter()
            hits = [await server.submit(image) for image in images]
            hit_wall = time.perf_counter() - started
            return cold, cold_wall, hits, hit_wall, server.snapshot()

    cold, cold_wall, hits, hit_wall, snapshot = asyncio.run(main())

    # Hits must replay the cold results verbatim.
    for first, again in zip(cold, hits):
        np.testing.assert_array_equal(first.logits, again.logits)
        assert first.prediction == again.prediction
        assert first.trace == again.trace
    cache = snapshot.fabric["result_cache"]
    assert cache["hits"] >= CACHE_REQUESTS
    assert snapshot.cached >= CACHE_REQUESTS

    total = cache["hits"] + cache["misses"]
    return {
        "requests": CACHE_REQUESTS,
        "wall_cold_s": cold_wall,
        "wall_cached_s": hit_wall,
        "speedup": cold_wall / hit_wall,
        "cache_hits": cache["hits"],
        "cache_misses": cache["misses"],
        "hit_rate": cache["hits"] / total,
        "bit_identical": True,
    }


def _measured(run, threshold: float) -> dict:
    """Run a gate's measurement, re-rolling on a miss (bounded): the
    gates race wall clocks on a shared host — a real regression keeps
    failing every attempt, a noisy neighbour usually only one."""
    for attempt in range(1, MEASURE_ATTEMPTS + 1):
        results = run()
        if results["speedup"] >= threshold:
            break
    results["attempts"] = attempt
    return results


def run_bench(rng) -> dict:
    payload = {
        "remote": _measured(lambda: run_remote_pipelining(rng),
                            REMOTE_GATE),
        "cache": _measured(lambda: run_cache_serving(rng), CACHE_GATE),
    }
    if multicore(2):
        payload["sweep"] = _measured(lambda: run_sweep_pipelining(rng),
                                     SWEEP_GATE)
    else:
        print(f"note: only {os.cpu_count()} core(s) visible - the "
              f">= {SWEEP_GATE}x pipelined sweep bar needs a lane "
              "beyond the driver's core; omitted")
    return payload


def _render(payload: dict) -> Table:
    remote = payload["remote"]
    cache = payload["cache"]
    table = Table(
        "Pipelined fabric - windowed dispatch and result cache "
        f"({os.cpu_count()} cores)",
        ["metric", "value"])
    table.add_row("remote work list",
                  f"{remote['items']} chunks x {remote['item_batch']} "
                  f"images, {remote['wire_latency_ms']:.0f} ms wire")
    table.add_row("remote stop-and-wait (s)",
                  f"{remote['wall_stop_and_wait_s']:.2f}")
    table.add_row(f"remote windowed W={remote['window']} (s)",
                  f"{remote['wall_windowed_s']:.2f}")
    table.add_row("remote speedup", f"{remote['speedup']:.2f}x")
    if "sweep" in payload:
        sweep = payload["sweep"]
        table.add_row("sweep workload", sweep["workload"])
        table.add_row("sweep stop-and-wait (s)",
                      f"{sweep['wall_stop_and_wait_s']:.2f}")
        table.add_row("sweep windowed W=2 (s)",
                      f"{sweep['wall_windowed_s']:.2f}")
        table.add_row("sweep speedup", f"{sweep['speedup']:.2f}x")
    table.add_row("cache cold pass (s)", f"{cache['wall_cold_s']:.3f}")
    table.add_row("cache hit pass (s)", f"{cache['wall_cached_s']:.3f}")
    table.add_row("cache speedup", f"{cache['speedup']:.1f}x")
    table.add_row("cache hit rate", f"{cache['hit_rate']:.0%}")
    return table


def check_gates(payload: dict) -> None:
    """Acceptance bars, shared by the pytest and __main__ paths."""
    remote = payload["remote"]
    assert remote["bit_identical"]
    assert remote["chunks_pipelined"] > 0, \
        "the windowed run never had two chunks in flight"
    assert remote["speedup"] >= REMOTE_GATE, \
        (f"a windowed remote lane must be >= {REMOTE_GATE}x "
         f"stop-and-wait under {remote['wire_latency_ms']:.0f} ms wire "
         f"latency, measured {remote['speedup']:.2f}x")
    if "sweep" in payload:
        sweep = payload["sweep"]
        assert sweep["bit_identical"]
        assert sweep["speedup"] >= SWEEP_GATE, \
            (f"a pipelined 2-lane process sweep must be >= "
             f"{SWEEP_GATE}x the stop-and-wait baseline, measured "
             f"{sweep['speedup']:.2f}x")
    cache = payload["cache"]
    assert cache["bit_identical"]
    assert cache["speedup"] >= CACHE_GATE, \
        (f"the cache-hit serving path must be >= {CACHE_GATE}x the "
         f"cold path on a duplicate-heavy load, measured "
         f"{cache['speedup']:.1f}x")


def test_pipelined_fabric(rng, benchmark):
    skip_unless_multicore(2, "pipelined 2-lane sweep gate")
    payload = run_bench(rng)
    print_table(_render(payload))
    write_artifact(RESULTS_PATH, payload)
    check_gates(payload)

    network = performance_network(
        [("conv", 4, 3, 1, 1), ("pool", 2), ("flatten",), ("linear", 10)],
        input_shape=(1, 12, 12), num_steps=3,
        seed=int(rng.integers(1 << 16)))
    image = rng.random((1,) + network.input_shape)[0]

    def duplicate_heavy_serve():
        async def main():
            async with InferenceServer(network, max_wait_ms=0.0) as server:
                for _ in range(CACHE_REQUESTS):
                    await server.submit(image)

        asyncio.run(main())

    benchmark.pedantic(duplicate_heavy_serve, rounds=1, iterations=1)


if __name__ == "__main__":
    bench_rng = np.random.default_rng(17)
    bench_payload = run_bench(bench_rng)
    print(_render(bench_payload).render())
    write_artifact(RESULTS_PATH, bench_payload)
    check_gates(bench_payload)

"""Figures 1 & 2 — architecture overview and convolution-unit datapath.

The paper's figures are structural; this benchmark renders both diagrams
from the live configuration of the Table I deployment and validates the
datapath they describe by running the bit-exact functional model of one
full inference (the timed kernel), confirming it matches the SNN
reference.
"""

from pathlib import Path

import numpy as np

from repro.core import Accelerator, AcceleratorConfig
from repro.harness import render_conv_unit, render_overview

from benchmarks.conftest import write_artifact

RESULTS_PATH = (Path(__file__).resolve().parent.parent
                / "artifacts" / "bench_figures.json")


def test_figures_report(runner, benchmark):
    snn, _ = runner.lenet_snn(3)
    config = AcceleratorConfig()
    accelerator = Accelerator(config)
    compiled = accelerator.deploy(snn, name="LeNet-5")

    print("\n\nFig. 1 — accelerator overview")
    print(render_overview(config, compiled))
    print("\nFig. 2 — convolution unit (5x5 kernels, stride 1)")
    print(render_conv_unit(config, kernel_rows=5, stride=1))

    _, test = runner.mnist()
    image = test.images[0]
    expected = snn.forward_ints(image[np.newaxis])[0]

    def run_functional():
        logits, trace = accelerator.run_image(image)
        np.testing.assert_array_equal(logits, expected)
        return trace.total_cycles

    cycles = benchmark.pedantic(run_functional, rounds=2, iterations=1)
    print(f"\nfunctional model: {cycles:,} cycles "
          f"({cycles / config.clock_mhz:.0f} us at "
          f"{config.clock_mhz:.0f} MHz), bit-exact to the SNN reference")
    write_artifact(RESULTS_PATH, {
        "cycles": cycles,
        "clock_mhz": config.clock_mhz,
        "latency_us": cycles / config.clock_mhz,
        "bit_exact": True,
    })

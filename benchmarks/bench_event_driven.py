"""Related-work ablation — event-driven engines vs the paper's dataflow.

The paper's related-work section notes that event-driven FPGA designs
(Minitaur family, refs [9][10]) are energy-efficient but "applied to
linear layers only".  This benchmark quantifies why: pricing LeNet-5's
measured spike activity on an event-driven cost model shows the conv
layers' kernel-sized fan-out per event, and rate coding (which those
engines rely on) multiplies the event count further.

Spike statistics average over several images (per-image event counts are
data-dependent), and "this work" quotes both the analytic latency and
the cycles measured by the functional model's aggregated multi-image
trace (``Controller.run_images``) — the two agree by construction.

Timing note: ``SNNModel.forward_spikes`` now computes all ``T`` step
currents per layer in one fused whole-plane call (the per-step Python
loop only shifts and integrates), so the spike-statistics collection
timed here runs ~T-fold fewer convolution dispatches than the naive
per-step simulation; the printed wall time records that on every run.
"""

import time
from pathlib import Path

from repro.baselines import estimate_event_driven
from repro.core import AcceleratorConfig, Controller, LatencyModel, \
    compile_network
from repro.harness import Table

from benchmarks.conftest import print_table, write_artifact

RESULTS_PATH = (Path(__file__).resolve().parent.parent
                / "artifacts" / "bench_event_driven.json")

NUM_IMAGES = 3


def test_event_driven_report(runner, benchmark):
    snn, _ = runner.lenet_snn(3)
    _, test = runner.mnist()
    images = test.images[:NUM_IMAGES]

    start = time.perf_counter()
    _, stats = snn.forward_spikes(images, collect_stats=True)
    spike_sim_s = time.perf_counter() - start
    # Per-image averages: the event-driven cost model prices one
    # inference, so the batch totals divide by the image count.
    events_per_layer = [s // NUM_IMAGES for s in stats.spikes_per_layer]
    event_est = estimate_event_driven(snn.network, events_per_layer)

    config = AcceleratorConfig()
    ours_us = LatencyModel(config).latency_us(snn.network)
    # Cross-check against the functional model: measured cycles from the
    # aggregated multi-image trace, converted at the configured clock.
    controller = Controller(compile_network(snn.network, config))
    _, merged = controller.run_images(images)
    measured_us = merged.cycles_per_image() * config.cycle_time_us

    # Rate coding at the T the encoding ablation found necessary (~16)
    # multiplies events by roughly T_rate / T_radix x density growth; use
    # the measured radix spike count scaled by train-length ratio as a
    # conservative lower bound.
    rate_scale = 16 / snn.num_steps
    rate_events = [int(s * rate_scale) for s in events_per_layer]
    rate_est = estimate_event_driven(snn.network, rate_events)

    table = Table(
        "Event-driven engine vs this work - LeNet-5 inference "
        f"(spike counts averaged over {NUM_IMAGES} images)",
        ["engine", "events", "state updates", "latency us"])
    table.add_row("event-driven, radix spikes (NOT functional: order lost)",
                  f"{event_est.total_events:,}",
                  f"{event_est.total_updates:,}", event_est.latency_us)
    table.add_row("event-driven, rate spikes (T=16, its real mode)",
                  f"{rate_est.total_events:,}",
                  f"{rate_est.total_updates:,}", rate_est.latency_us)
    table.add_row("this work (row dataflow, radix)", "-", "-", ours_us)
    table.add_row("this work (measured functional cycles)", "-", "-",
                  measured_us)
    print_table(table)
    print("note: an event-driven engine integrates spikes order-blind, so "
          "it cannot execute radix\ntrains at all (the paper's motivation); "
          "the first row is a hypothetical lower bound.")
    print(f"timing: step-batched forward_spikes simulated {NUM_IMAGES} "
          f"images x T={snn.num_steps} in {spike_sim_s * 1e3:.0f} ms "
          "(fused per-layer step currents; the Python loop only "
          "shift-integrates)")

    write_artifact(RESULTS_PATH, {
        "num_images": NUM_IMAGES,
        "spike_sim_s": spike_sim_s,
        "events_per_layer": events_per_layer,
        "event_driven_radix": {"events": event_est.total_events,
                               "updates": event_est.total_updates,
                               "latency_us": event_est.latency_us},
        "event_driven_rate_t16": {"events": rate_est.total_events,
                                  "updates": rate_est.total_updates,
                                  "latency_us": rate_est.latency_us},
        "this_work_latency_us": ours_us,
        "this_work_measured_us": measured_us,
    })

    # The structural claims: in its actual operating mode (rate coding at
    # the T the encoding ablation found necessary) the event-driven engine
    # is far slower than the row dataflow, and the rate event count dwarfs
    # the radix one — order-awareness is what buys the short trains.
    assert rate_est.latency_us > ours_us
    assert rate_est.total_events > 3 * event_est.total_events
    # Analytic and measured latency describe the same hardware.
    assert abs(measured_us - ours_us) / ours_us < 0.05

    benchmark.pedantic(
        lambda: snn.forward_spikes(images, collect_stats=True),
        rounds=2, iterations=1)

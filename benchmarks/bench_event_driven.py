"""Related-work ablation — event-driven engines vs the paper's dataflow.

The paper's related-work section notes that event-driven FPGA designs
(Minitaur family, refs [9][10]) are energy-efficient but "applied to
linear layers only".  This benchmark quantifies why: pricing LeNet-5's
measured spike activity on an event-driven cost model shows the conv
layers' kernel-sized fan-out per event, and rate coding (which those
engines rely on) multiplies the event count further.  The timed kernel is
the spike-statistics collection powering the estimate.
"""

from repro.baselines import estimate_event_driven
from repro.core import AcceleratorConfig, LatencyModel
from repro.harness import Table

from benchmarks.conftest import print_table


def test_event_driven_report(runner, benchmark):
    snn, _ = runner.lenet_snn(3)
    _, test = runner.mnist()
    images = test.images[:1]

    _, stats = snn.forward_spikes(images, collect_stats=True)
    event_est = estimate_event_driven(snn.network, stats.spikes_per_layer)

    config = AcceleratorConfig()
    ours_us = LatencyModel(config).latency_us(snn.network)

    # Rate coding at the T the encoding ablation found necessary (~16)
    # multiplies events by roughly T_rate / T_radix x density growth; use
    # the measured radix spike count scaled by train-length ratio as a
    # conservative lower bound.
    rate_scale = 16 / snn.num_steps
    rate_events = [int(s * rate_scale) for s in stats.spikes_per_layer]
    rate_est = estimate_event_driven(snn.network, rate_events)

    table = Table(
        "Event-driven engine vs this work - LeNet-5 inference",
        ["engine", "events", "state updates", "latency us"])
    table.add_row("event-driven, radix spikes (NOT functional: order lost)",
                  f"{event_est.total_events:,}",
                  f"{event_est.total_updates:,}", event_est.latency_us)
    table.add_row("event-driven, rate spikes (T=16, its real mode)",
                  f"{rate_est.total_events:,}",
                  f"{rate_est.total_updates:,}", rate_est.latency_us)
    table.add_row("this work (row dataflow, radix)", "-", "-", ours_us)
    print_table(table)
    print("note: an event-driven engine integrates spikes order-blind, so "
          "it cannot execute radix\ntrains at all (the paper's motivation); "
          "the first row is a hypothetical lower bound.")

    # The structural claims: in its actual operating mode (rate coding at
    # the T the encoding ablation found necessary) the event-driven engine
    # is far slower than the row dataflow, and the rate event count dwarfs
    # the radix one — order-awareness is what buys the short trains.
    assert rate_est.latency_us > ours_us
    assert rate_est.total_events > 3 * event_est.total_events

    benchmark.pedantic(
        lambda: snn.forward_spikes(images, collect_stats=True),
        rounds=2, iterations=1)

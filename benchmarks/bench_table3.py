"""Table III — efficiency and performance of SNN hardware accelerators.

Regenerates the paper's headline comparison: published Ju et al. / Fang
et al. rows next to our accelerator running Fang's CNN-2, LeNet-5 and
VGG-11 (CIFAR-100, DRAM-resident weights).  The claims checked are the
orderings the paper emphasizes: large latency advantage over Fang's
design, large throughput advantage over Ju's, lower power than both, less
than half their LUT/FF budget, and VGG-11 at more than four frames per
second.  The timed kernel is the compile-and-estimate path for the
28.5M-parameter VGG-11.
"""

from pathlib import Path

from repro.core import Accelerator, AcceleratorConfig
from repro.models import vgg11_performance_network
from repro.snn import SNNModel

from benchmarks.conftest import print_table, write_artifact

RESULTS_PATH = (Path(__file__).resolve().parent.parent
                / "artifacts" / "bench_table3.json")


def test_table3_report(runner, benchmark):
    result = runner.run_table3(include_vgg=True)
    print_table(result["table"])
    write_artifact(RESULTS_PATH, {"rows": result["rows"]})

    rows = {r["label"]: r for r in result["rows"]}
    ju = rows["Ju et al. [12]"]
    fang = rows["Fang et al. [11]"]
    ours_cnn2 = rows["This work (CNN 2)"]
    ours_lenet = rows["This work (LeNet-5)"]
    ours_vgg = rows["This work (VGG-11)"]

    # Who wins, by roughly what factor (paper: 18x lat, 15x fps, 25% pow):
    assert fang["latency_us"] / ours_cnn2["latency_us"] > 5.0
    assert ours_cnn2["throughput_fps"] / ju["throughput_fps"] > 5.0
    assert ours_cnn2["power_w"] < fang["power_w"] * 0.85
    assert ours_cnn2["luts"] < fang["luts"] / 2
    assert ours_cnn2["ffs"] < fang["ffs"] / 2
    assert ours_lenet["luts"] < ju["luts"] / 2

    # Accuracy regime (synthetic datasets, see EXPERIMENTS.md):
    assert ours_lenet["accuracy_pct"] > 95.0
    assert ours_cnn2["accuracy_pct"] > 95.0

    # The scalability claim: VGG-11 streams from DRAM yet exceeds 4 fps.
    assert not ours_vgg["weights_on_chip"]
    assert ours_vgg["throughput_fps"] > 4.0
    assert ours_vgg["power_w"] > ours_lenet["power_w"]

    def compile_and_estimate_vgg():
        net = vgg11_performance_network(num_steps=6)
        config = AcceleratorConfig.for_network(net, num_conv_units=8,
                                               clock_mhz=115.0)
        accelerator = Accelerator(config)
        accelerator.deploy(SNNModel(net), name="VGG-11")
        return accelerator.report()

    benchmark.pedantic(compile_and_estimate_vgg, rounds=3, iterations=1)

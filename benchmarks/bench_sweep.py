"""Sweep-driver benchmark — images/s versus worker count.

Times the same hardware-in-the-loop scoring workload (trained LeNet-5,
T=3, vectorized engine) through the sharded sweep driver at 1/2/4 worker
processes, verifies every configuration merges to bit-identical
predictions and trace counters, and records the scaling curve to
``artifacts/bench_sweep.json`` so the process-parallelism axis is tracked
across PRs alongside the batching axis (``bench_backends.json``).

The scaling bar (>= 2x images/s going from 1 to 4 workers) is asserted
only when the machine actually exposes >= 4 CPU cores — on smaller boxes
the numbers are still measured and recorded, with the core count in the
payload so the trajectory reader can interpret them.
"""

import os

# Pin BLAS to one thread per process *before* numpy initializes OpenBLAS
# (effective on the `python benchmarks/bench_sweep.py` entry CI runs):
# the scaling claim is about process parallelism, and an N-thread GEMM
# pool in the 1-worker baseline — or N processes x N BLAS threads when
# sharded — turns the measurement into an oversubscription lottery.
# Under pytest numpy is already loaded; there ci.yml sets the same vars.
for _var in ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS",
             "MKL_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import time
from pathlib import Path

import numpy as np

from repro.core import AcceleratorConfig
from repro.harness import SweepDriver, SweepTask, Table

from benchmarks.conftest import (
    FAST_MODE,
    multicore,
    print_table,
    write_artifact,
)

RESULTS_PATH = (Path(__file__).resolve().parent.parent
                / "artifacts" / "bench_sweep.json")
WORKER_COUNTS = (1, 2, 4)
SHARD_SIZE = 32
NUM_IMAGES = 192 if FAST_MODE else 512


def _workload(runner) -> SweepTask:
    """A fixed LeNet scoring task, tiled to ``NUM_IMAGES`` images."""
    snn, _ = runner.lenet_snn(3)
    _, test = runner.mnist()
    reps = -(-NUM_IMAGES // len(test))
    images = np.tile(test.images, (reps, 1, 1, 1))[:NUM_IMAGES]
    labels = np.tile(test.labels, reps)[:NUM_IMAGES]
    return SweepTask(
        key="bench_sweep_lenet_t3", network=snn.network,
        config=AcceleratorConfig.for_network(snn.network),
        images=images, labels=labels, backend="vectorized")


def run_worker_scaling(runner) -> tuple[dict, dict]:
    """Time the workload per worker count; returns (payload, outcomes)."""
    task = _workload(runner)
    outcomes = {}
    images_per_second = {}
    for workers in WORKER_COUNTS:
        driver = SweepDriver(workers=workers, shard_size=SHARD_SIZE)
        start = time.perf_counter()
        outcomes[workers] = driver.run([task])[task.key]
        wall = time.perf_counter() - start
        images_per_second[workers] = task.num_images / wall

    # Determinism rides along with every measurement: all worker counts
    # must merge to bit-identical predictions and trace counters.
    baseline = outcomes[WORKER_COUNTS[0]]
    for workers, outcome in outcomes.items():
        np.testing.assert_array_equal(outcome.predictions,
                                      baseline.predictions)
        assert outcome.trace == baseline.trace, workers
        assert outcome.correct == baseline.correct

    lo, hi = WORKER_COUNTS[0], WORKER_COUNTS[-1]
    payload = {
        "workload": f"LeNet-5, T=3, vectorized, {task.num_images} images",
        "shard_size": SHARD_SIZE,
        "num_images": task.num_images,
        "images_per_second_by_workers": images_per_second,
        "speedup_4_vs_1": images_per_second[hi] / images_per_second[lo],
    }
    return payload, outcomes


def _render(payload: dict) -> Table:
    table = Table(
        "Sweep driver - images/s versus worker processes "
        f"({payload['workload']}, {os.cpu_count()} cores)",
        ["workers", "images/s", "speedup"])
    base = payload["images_per_second_by_workers"][WORKER_COUNTS[0]]
    for workers, ips in payload["images_per_second_by_workers"].items():
        table.add_row(workers, f"{ips:.1f}", f"{ips / base:.2f}x")
    return table


def check_scaling_bar(payload: dict) -> None:
    """The acceptance gate, shared by the pytest and __main__ paths."""
    if multicore(4):
        assert payload["speedup_4_vs_1"] >= 2.0, \
            "4 workers must be >= 2x the single-process throughput"
    else:
        print(f"note: only {os.cpu_count()} core(s) visible - the >=2x "
              "scaling bar needs >= 4; numbers recorded for the record")


def test_sweep_worker_scaling(runner, benchmark):
    payload, _ = run_worker_scaling(runner)
    print_table(_render(payload))
    write_artifact(RESULTS_PATH, payload)
    check_scaling_bar(payload)

    task = _workload(runner)
    workers = min(4, os.cpu_count() or 1)
    benchmark.pedantic(
        lambda: SweepDriver(workers=workers,
                            shard_size=SHARD_SIZE).run([task]),
        rounds=2, iterations=1)


if __name__ == "__main__":
    from repro.harness import ExperimentRunner

    bench_payload, _ = run_worker_scaling(ExperimentRunner())
    print(_render(bench_payload).render())
    write_artifact(RESULTS_PATH, bench_payload)
    check_scaling_bar(bench_payload)

"""Table II — latency, power and resources versus convolution units.

Regenerates the paper's unit-scaling sweep (LeNet-5, T=3, 100 MHz):
latency improves sub-linearly (pool/linear units are memory-bound and not
duplicated) while LUT/FF grow ~linearly and power only slightly.  The
timed kernel is the full analytic estimation stack across the sweep.
"""

from pathlib import Path

from repro.core import (
    AcceleratorConfig,
    LatencyModel,
    PowerModel,
    ResourceModel,
)

from benchmarks.conftest import print_table, write_artifact

RESULTS_PATH = (Path(__file__).resolve().parent.parent
                / "artifacts" / "bench_table2.json")


def test_table2_report(runner, benchmark):
    result = runner.run_table2()
    print_table(result["table"])
    write_artifact(RESULTS_PATH, {"rows": result["rows"]})

    rows = {r["units"]: r for r in result["rows"]}
    # Sub-linear latency scaling (doubling units never halves latency):
    assert rows[2]["latency_us"] > rows[1]["latency_us"] / 2
    assert rows[8]["latency_us"] > rows[4]["latency_us"] / 2
    # Monotone improvements and costs:
    assert rows[8]["latency_us"] < rows[1]["latency_us"]
    assert rows[8]["luts"] > rows[1]["luts"]
    assert rows[8]["power_w"] > rows[1]["power_w"]
    # Within-tolerance reproduction of every published cell:
    for units, row in rows.items():
        assert abs(row["latency_us"] - row["paper_latency_us"]) \
            / row["paper_latency_us"] < 0.10
        assert abs(row["power_w"] - row["paper_power_w"]) \
            / row["paper_power_w"] < 0.03
        assert abs(row["luts"] - row["paper_luts"]) \
            / row["paper_luts"] < 0.12
        assert abs(row["ffs"] - row["paper_ffs"]) \
            / row["paper_ffs"] < 0.12

    snn, _ = runner.lenet_snn(3)

    def estimate_sweep():
        out = []
        for units in (1, 2, 4, 8):
            config = AcceleratorConfig().with_units(units)
            out.append((
                LatencyModel(config).latency_us(snn.network),
                PowerModel(config).average_power_w(),
                ResourceModel(config).estimate().luts,
            ))
        return out

    benchmark(estimate_sweep)

"""Backend benchmark — reference vs vectorized vs sparse wall clock.

Times batched LeNet-5 inference on the execution engines, checks the
backends agree on predictions and cycle totals while measuring, and
records the numbers (per-image seconds per backend, batch-size scaling of
the vectorized engine, and the headline speedups) to
``artifacts/bench_backends.json`` so the performance trajectory is
tracked across PRs.  Two gates:

* the vectorized engine must be >= 10x faster than reference for
  batched inference (in practice it lands orders of magnitude beyond);
* the sparse engine must beat the vectorized engine at paper-level
  input sparsity — event-style frames where half the planes are silent
  and the rest carry one small active blob — while staying bit-equal
  on logits *and* traces.  On dense input sparse is allowed to lose
  (its per-hook density checks fall back to the dense kernels).
"""

import time
from pathlib import Path

import numpy as np

from repro.core import Accelerator, AcceleratorConfig
from repro.harness import Table

from benchmarks.conftest import FAST_MODE, print_table, write_artifact

RESULTS_PATH = (Path(__file__).resolve().parent.parent
                / "artifacts" / "bench_backends.json")
REFERENCE_IMAGES = 2          # the reference engine is minutes/batch beyond this
BATCH_SIZES = (1, 8, 32, 128)
SPARSE_BATCH = 16 if FAST_MODE else 64
SPARSE_ROUNDS = 3 if FAST_MODE else 7
SPARSE_BLOB = 6               # active patch edge, in pixels
SPARSE_SILENT_FRAC = 0.5      # fraction of fully silent frames


def _time(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def run_backend_comparison(runner) -> dict:
    """Measure both backends on LeNet-5; returns the JSON payload."""
    snn, _ = runner.lenet_snn(3)
    _, test = runner.mnist()
    config = AcceleratorConfig.for_network(snn.network, num_conv_units=2)

    reference = Accelerator(config, backend="reference")
    reference.deploy(snn, name="LeNet-5")
    vectorized = Accelerator(config, backend="vectorized")
    vectorized.deploy(snn, name="LeNet-5")

    ref_images = test.images[:REFERENCE_IMAGES]
    (ref_preds, ref_traces), ref_seconds = _time(
        lambda: reference.run(ref_images))
    ref_per_image = ref_seconds / len(ref_images)

    scaling = {}
    vec_per_image = None
    for batch in BATCH_SIZES:
        images = test.images[:min(batch, len(test.images))]
        (vec_preds, vec_traces), vec_seconds = _time(
            lambda: vectorized.run(images))
        scaling[len(images)] = vec_seconds / len(images)
        vec_per_image = scaling[len(images)]
        # Correctness rides along with every measurement.
        shared = min(len(images), len(ref_images))
        np.testing.assert_array_equal(vec_preds[:shared], ref_preds[:shared])
        for ref_trace, vec_trace in zip(ref_traces, vec_traces):
            assert ref_trace.total_cycles == vec_trace.total_cycles
            assert ref_trace.total_adder_ops == vec_trace.total_adder_ops

    speedup = ref_per_image / vec_per_image
    return {
        "workload": "LeNet-5, T=3, 2 conv units",
        "reference_s_per_image": ref_per_image,
        "vectorized_s_per_image_by_batch": scaling,
        "largest_batch_s_per_image": vec_per_image,
        "speedup_batched": speedup,
    }


def _event_batch(rng, shape, batch: int) -> np.ndarray:
    """Event-style frames at paper-level sparsity.

    Half the frames are fully silent; the rest carry one bright
    ``SPARSE_BLOB``-square blob on a dark plane, mirroring the
    address-event workloads whose zeros the sparse engine exists to
    skip.
    """
    images = np.zeros((batch,) + tuple(shape), dtype=np.float64)
    h, w = shape[-2], shape[-1]
    for i in range(batch):
        if rng.random() < SPARSE_SILENT_FRAC:
            continue
        r = int(rng.integers(0, h - SPARSE_BLOB))
        c = int(rng.integers(0, w - SPARSE_BLOB))
        images[i, ..., r:r + SPARSE_BLOB, c:c + SPARSE_BLOB] = \
            rng.uniform(0.5, 1.0, size=(SPARSE_BLOB, SPARSE_BLOB))
    return images


def run_sparsity_comparison(runner, rng) -> dict:
    """Time vectorized vs sparse on sparse frames; returns JSON payload."""
    snn, _ = runner.lenet_snn(3)
    _, test = runner.mnist()
    config = AcceleratorConfig.for_network(snn.network, num_conv_units=2)
    images = _event_batch(rng, test.images.shape[1:], SPARSE_BATCH)

    engines = {}
    for backend in ("vectorized", "sparse"):
        accelerator = Accelerator(config, backend=backend)
        accelerator.deploy(snn, name="LeNet-5")
        engines[backend] = accelerator
        accelerator.run_logits(images[:2])    # warm caches / compile

    seconds = {}
    outputs = {}
    for backend, accelerator in engines.items():
        best = float("inf")
        for _ in range(SPARSE_ROUNDS):
            (logits, traces), elapsed = _time(
                lambda: accelerator.run_logits(images))
            best = min(best, elapsed)
        seconds[backend] = best
        outputs[backend] = (logits, traces)

    # Bit-equality rides along with every measurement: logits AND traces.
    vec_logits, vec_traces = outputs["vectorized"]
    sp_logits, sp_traces = outputs["sparse"]
    np.testing.assert_array_equal(sp_logits, vec_logits)
    for vec_trace, sp_trace in zip(vec_traces, sp_traces):
        assert vec_trace.total_cycles == sp_trace.total_cycles
        assert vec_trace.total_adder_ops == sp_trace.total_adder_ops

    return {
        "workload": (f"LeNet-5, T=3, event frames "
                     f"(blob={SPARSE_BLOB}, "
                     f"silent_frac={SPARSE_SILENT_FRAC})"),
        "batch": SPARSE_BATCH,
        "input_density": float(np.count_nonzero(images) / images.size),
        "vectorized_s_per_batch": seconds["vectorized"],
        "sparse_s_per_batch": seconds["sparse"],
        "speedup_sparse_input": seconds["vectorized"] / seconds["sparse"],
    }


def _render(results: dict) -> Table:
    table = Table(
        "Execution backends - wall clock per image (LeNet-5, T=3)",
        ["backend", "batch", "s/image", "speedup"])
    table.add_row("reference", REFERENCE_IMAGES,
                  f"{results['reference_s_per_image']:.3f}", "1.0x")
    for batch, per_image in results[
            "vectorized_s_per_image_by_batch"].items():
        table.add_row("vectorized", batch, f"{per_image:.5f}",
                      f"{results['reference_s_per_image'] / per_image:.0f}x")
    return table


def _render_sparse(results: dict) -> Table:
    table = Table(
        "Sparse engine - event frames at paper-level sparsity",
        ["backend", "batch", "s/batch", "speedup"])
    table.add_row("vectorized", results["batch"],
                  f"{results['vectorized_s_per_batch']:.4f}", "1.0x")
    table.add_row("sparse", results["batch"],
                  f"{results['sparse_s_per_batch']:.4f}",
                  f"{results['speedup_sparse_input']:.2f}x")
    return table


def test_backend_speedup_report(runner, benchmark, rng):
    results = run_backend_comparison(runner)
    print_table(_render(results))
    sparse_results = run_sparsity_comparison(runner, rng)
    print_table(_render_sparse(sparse_results))

    write_artifact(RESULTS_PATH,
                   {**results, "sparse_input": sparse_results})

    assert results["speedup_batched"] >= 10.0, \
        "vectorized backend must be >= 10x faster for batched inference"
    assert sparse_results["speedup_sparse_input"] > 1.0, \
        "sparse backend must beat vectorized at paper-level input sparsity"

    snn, _ = runner.lenet_snn(3)
    _, test = runner.mnist()
    vectorized = Accelerator(
        AcceleratorConfig.for_network(snn.network, num_conv_units=2),
        backend="vectorized")
    vectorized.deploy(snn, name="LeNet-5")
    images = test.images[rng.choice(len(test.images), size=32,
                                    replace=False)]
    benchmark.pedantic(lambda: vectorized.run(images),
                       rounds=3, iterations=1)


if __name__ == "__main__":
    from repro.harness import ExperimentRunner

    main_runner = ExperimentRunner()
    bench_results = run_backend_comparison(main_runner)
    print(_render(bench_results).render())
    sparse_bench = run_sparsity_comparison(
        main_runner, np.random.default_rng(0))
    print(_render_sparse(sparse_bench).render())
    write_artifact(RESULTS_PATH,
                   {**bench_results, "sparse_input": sparse_bench})

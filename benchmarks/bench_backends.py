"""Backend benchmark — reference vs vectorized wall clock, batch scaling.

Times batched LeNet-5 inference on both execution engines, checks the
backends agree on predictions and cycle totals while measuring, and
records the numbers (per-image seconds per backend, batch-size scaling of
the vectorized engine, and the headline speedup) to
``artifacts/bench_backends.json`` so the performance trajectory is
tracked across PRs.  The acceptance bar is a >= 10x wall-clock speedup
for batched inference; in practice the vectorized engine lands orders of
magnitude beyond that.  The timed kernel is one vectorized batch run.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.core import Accelerator, AcceleratorConfig
from repro.harness import Table

from benchmarks.conftest import print_table

RESULTS_PATH = (Path(__file__).resolve().parent.parent
                / "artifacts" / "bench_backends.json")
REFERENCE_IMAGES = 2          # the reference engine is minutes/batch beyond this
BATCH_SIZES = (1, 8, 32, 128)


def _time(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def run_backend_comparison(runner) -> dict:
    """Measure both backends on LeNet-5; returns the JSON payload."""
    snn, _ = runner.lenet_snn(3)
    _, test = runner.mnist()
    config = AcceleratorConfig.for_network(snn.network, num_conv_units=2)

    reference = Accelerator(config, backend="reference")
    reference.deploy(snn, name="LeNet-5")
    vectorized = Accelerator(config, backend="vectorized")
    vectorized.deploy(snn, name="LeNet-5")

    ref_images = test.images[:REFERENCE_IMAGES]
    (ref_preds, ref_traces), ref_seconds = _time(
        lambda: reference.run(ref_images))
    ref_per_image = ref_seconds / len(ref_images)

    scaling = {}
    vec_per_image = None
    for batch in BATCH_SIZES:
        images = test.images[:min(batch, len(test.images))]
        (vec_preds, vec_traces), vec_seconds = _time(
            lambda: vectorized.run(images))
        scaling[len(images)] = vec_seconds / len(images)
        vec_per_image = scaling[len(images)]
        # Correctness rides along with every measurement.
        shared = min(len(images), len(ref_images))
        np.testing.assert_array_equal(vec_preds[:shared], ref_preds[:shared])
        for ref_trace, vec_trace in zip(ref_traces, vec_traces):
            assert ref_trace.total_cycles == vec_trace.total_cycles
            assert ref_trace.total_adder_ops == vec_trace.total_adder_ops

    speedup = ref_per_image / vec_per_image
    return {
        "workload": "LeNet-5, T=3, 2 conv units",
        "reference_s_per_image": ref_per_image,
        "vectorized_s_per_image_by_batch": scaling,
        "largest_batch_s_per_image": vec_per_image,
        "speedup_batched": speedup,
    }


def _render(results: dict) -> Table:
    table = Table(
        "Execution backends - wall clock per image (LeNet-5, T=3)",
        ["backend", "batch", "s/image", "speedup"])
    table.add_row("reference", REFERENCE_IMAGES,
                  f"{results['reference_s_per_image']:.3f}", "1.0x")
    for batch, per_image in results[
            "vectorized_s_per_image_by_batch"].items():
        table.add_row("vectorized", batch, f"{per_image:.5f}",
                      f"{results['reference_s_per_image'] / per_image:.0f}x")
    return table


def test_backend_speedup_report(runner, benchmark, rng):
    results = run_backend_comparison(runner)
    print_table(_render(results))

    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")

    assert results["speedup_batched"] >= 10.0, \
        "vectorized backend must be >= 10x faster for batched inference"

    snn, _ = runner.lenet_snn(3)
    _, test = runner.mnist()
    vectorized = Accelerator(
        AcceleratorConfig.for_network(snn.network, num_conv_units=2),
        backend="vectorized")
    vectorized.deploy(snn, name="LeNet-5")
    images = test.images[rng.choice(len(test.images), size=32,
                                    replace=False)]
    benchmark.pedantic(lambda: vectorized.run(images),
                       rounds=3, iterations=1)


if __name__ == "__main__":
    from repro.harness import ExperimentRunner

    bench_results = run_backend_comparison(ExperimentRunner())
    print(_render(bench_results).render())
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(bench_results, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")

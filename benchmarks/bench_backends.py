"""Backend benchmark — reference vs vectorized vs sparse wall clock.

Times batched LeNet-5 inference on the execution engines, checks the
backends agree on predictions and cycle totals while measuring, and
records the numbers (per-image seconds per backend, batch-size scaling of
the vectorized engine, and the headline speedups) to
``artifacts/bench_backends.json`` so the performance trajectory is
tracked across PRs.  Two gates:

* the vectorized engine must be >= 10x faster than reference for
  batched inference (in practice it lands orders of magnitude beyond);
* the sparse engine must beat the vectorized engine at the sparsest
  density bucket — event-style blob frames, the address-event workloads
  whose zeros it exists to skip — while staying bit-equal on logits
  *and* traces at **every** bucket.  The sparse-vs-vectorized race is
  reported per density bucket (~5 levels from near-silent to dense),
  giving the calibration gate in ``bench_autotune.py`` a trajectory to
  compare its measured crossover against; on dense buckets sparse is
  allowed to lose (its per-hook density checks fall back to the dense
  kernels).
"""

import time
from pathlib import Path

import numpy as np

from repro.core import Accelerator, AcceleratorConfig
from repro.core.engine.calibrate import probe_batch
from repro.harness import Table

from benchmarks.conftest import FAST_MODE, print_table, write_artifact

RESULTS_PATH = (Path(__file__).resolve().parent.parent
                / "artifacts" / "bench_backends.json")
REFERENCE_IMAGES = 2          # the reference engine is minutes/batch beyond this
BATCH_SIZES = (1, 8, 32, 128)
SPARSE_BATCH = 16 if FAST_MODE else 64
SPARSE_ROUNDS = 3 if FAST_MODE else 7
#: Realized input densities the sparse-vs-vectorized race is reported
#: at — near-silent through dense, matching bench_autotune's buckets.
DENSITY_BUCKETS = (0.02, 0.10, 0.25, 0.50, 0.90)


def _time(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def run_backend_comparison(runner) -> dict:
    """Measure both backends on LeNet-5; returns the JSON payload."""
    snn, _ = runner.lenet_snn(3)
    _, test = runner.mnist()
    config = AcceleratorConfig.for_network(snn.network, num_conv_units=2)

    reference = Accelerator(config, backend="reference")
    reference.deploy(snn, name="LeNet-5")
    vectorized = Accelerator(config, backend="vectorized")
    vectorized.deploy(snn, name="LeNet-5")

    ref_images = test.images[:REFERENCE_IMAGES]
    (ref_preds, ref_traces), ref_seconds = _time(
        lambda: reference.run(ref_images))
    ref_per_image = ref_seconds / len(ref_images)

    scaling = {}
    vec_per_image = None
    for batch in BATCH_SIZES:
        images = test.images[:min(batch, len(test.images))]
        (vec_preds, vec_traces), vec_seconds = _time(
            lambda: vectorized.run(images))
        scaling[len(images)] = vec_seconds / len(images)
        vec_per_image = scaling[len(images)]
        # Correctness rides along with every measurement.
        shared = min(len(images), len(ref_images))
        np.testing.assert_array_equal(vec_preds[:shared], ref_preds[:shared])
        for ref_trace, vec_trace in zip(ref_traces, vec_traces):
            assert ref_trace.total_cycles == vec_trace.total_cycles
            assert ref_trace.total_adder_ops == vec_trace.total_adder_ops

    speedup = ref_per_image / vec_per_image
    return {
        "workload": "LeNet-5, T=3, 2 conv units",
        "reference_s_per_image": ref_per_image,
        "vectorized_s_per_image_by_batch": scaling,
        "largest_batch_s_per_image": vec_per_image,
        "speedup_batched": speedup,
    }


def run_sparsity_comparison(runner, rng) -> dict:
    """Sparse vs vectorized across density buckets; returns JSON payload.

    One event-style probe batch per bucket (bright blobs on dark
    planes, the same generator calibration probes with), each backend
    timed best-of-rounds, bit-equality on logits and traces asserted at
    every bucket.
    """
    snn, _ = runner.lenet_snn(3)
    config = AcceleratorConfig.for_network(snn.network, num_conv_units=2)
    shape = tuple(snn.network.input_shape)

    engines = {}
    for backend in ("vectorized", "sparse"):
        accelerator = Accelerator(config, backend=backend)
        accelerator.deploy(snn, name="LeNet-5")
        engines[backend] = accelerator

    buckets = []
    for density in DENSITY_BUCKETS:
        images = probe_batch(shape, density, SPARSE_BATCH, rng)
        seconds = {}
        outputs = {}
        for backend, accelerator in engines.items():
            accelerator.run_logits(images)       # full-batch warm-up
            best = float("inf")
            for _ in range(SPARSE_ROUNDS):
                (logits, traces), elapsed = _time(
                    lambda: accelerator.run_logits(images))
                best = min(best, elapsed)
            seconds[backend] = best
            outputs[backend] = (logits, traces)

        # Bit-equality rides along with every bucket: logits AND traces.
        vec_logits, vec_traces = outputs["vectorized"]
        sp_logits, sp_traces = outputs["sparse"]
        np.testing.assert_array_equal(sp_logits, vec_logits)
        for vec_trace, sp_trace in zip(vec_traces, sp_traces):
            assert vec_trace.total_cycles == sp_trace.total_cycles
            assert vec_trace.total_adder_ops == sp_trace.total_adder_ops

        buckets.append({
            "target_density": density,
            "input_density": float(np.count_nonzero(images)
                                   / images.size),
            "vectorized_s_per_batch": seconds["vectorized"],
            "sparse_s_per_batch": seconds["sparse"],
            "speedup": seconds["vectorized"] / seconds["sparse"],
        })

    return {
        "workload": "LeNet-5, T=3, event blob frames per density bucket",
        "batch": SPARSE_BATCH,
        "buckets": buckets,
    }


def _render(results: dict) -> Table:
    table = Table(
        "Execution backends - wall clock per image (LeNet-5, T=3)",
        ["backend", "batch", "s/image", "speedup"])
    table.add_row("reference", REFERENCE_IMAGES,
                  f"{results['reference_s_per_image']:.3f}", "1.0x")
    for batch, per_image in results[
            "vectorized_s_per_image_by_batch"].items():
        table.add_row("vectorized", batch, f"{per_image:.5f}",
                      f"{results['reference_s_per_image'] / per_image:.0f}x")
    return table


def _render_sparse(results: dict) -> Table:
    table = Table(
        "Sparse engine - speedup vs vectorized by input density",
        ["density", "vectorized s", "sparse s", "speedup"])
    for bucket in results["buckets"]:
        table.add_row(f"{bucket['input_density']:.3f}",
                      f"{bucket['vectorized_s_per_batch']:.4f}",
                      f"{bucket['sparse_s_per_batch']:.4f}",
                      f"{bucket['speedup']:.2f}x")
    return table


def test_backend_speedup_report(runner, benchmark, rng):
    results = run_backend_comparison(runner)
    print_table(_render(results))
    sparse_results = run_sparsity_comparison(runner, rng)
    print_table(_render_sparse(sparse_results))

    write_artifact(RESULTS_PATH,
                   {**results, "sparse_by_density": sparse_results})

    assert results["speedup_batched"] >= 10.0, \
        "vectorized backend must be >= 10x faster for batched inference"
    assert sparse_results["buckets"][0]["speedup"] > 1.0, \
        "sparse backend must beat vectorized at the sparsest bucket"

    snn, _ = runner.lenet_snn(3)
    _, test = runner.mnist()
    vectorized = Accelerator(
        AcceleratorConfig.for_network(snn.network, num_conv_units=2),
        backend="vectorized")
    vectorized.deploy(snn, name="LeNet-5")
    images = test.images[rng.choice(len(test.images), size=32,
                                    replace=False)]
    benchmark.pedantic(lambda: vectorized.run(images),
                       rounds=3, iterations=1)


if __name__ == "__main__":
    from repro.harness import ExperimentRunner

    main_runner = ExperimentRunner()
    bench_results = run_backend_comparison(main_runner)
    print(_render(bench_results).render())
    sparse_bench = run_sparsity_comparison(
        main_runner, np.random.default_rng(0))
    print(_render_sparse(sparse_bench).render())
    write_artifact(RESULTS_PATH,
                   {**bench_results, "sparse_by_density": sparse_bench})

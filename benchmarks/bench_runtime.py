"""Runtime fabric benchmark — work stealing and remote equivalence.

Two acceptance bars for the ``repro.runtime`` worker fabric:

* **Work stealing** — a deliberately skewed static assignment (all the
  heavy shards pinned to one lane, the light ones to the other) must run
  ≥ 1.3x faster with stealing enabled, on machines with ≥ 2 cores.  On
  smaller boxes the numbers are still measured and recorded with the
  core count in the payload, and the merged results are asserted
  bit-identical either way — stealing only ever changes scheduling.
* **Remote workers** — a sweep fanned out over two local TCP engine
  workers (the ``repro worker --listen`` protocol, in-process here) must
  merge bit-exactly to the single-process run, and a served request
  through a remote-lane engine pool must predict exactly what a direct
  ``run_batch`` predicts.  These are hard gates on every machine.

Results land in ``artifacts/bench_runtime.json`` so the fabric's
trajectory is tracked across PRs alongside the batching
(``bench_backends.json``), sharding (``bench_sweep.json``) and serving
(``bench_serve.json``) axes.
"""

import os

# Pin BLAS to one thread per process *before* numpy initializes: the
# stealing claim is about lane parallelism, not an OpenBLAS thread-pool
# lottery.  Under pytest numpy is already loaded; ci.yml sets the same.
for _var in ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS",
             "MKL_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import asyncio
import time
from pathlib import Path

import numpy as np

from repro.core import AcceleratorConfig
from repro.harness import SweepDriver, SweepTask, Table
from repro.models import performance_network
from repro.runtime import (
    Deployment,
    WorkItem,
    WorkerGroup,
    WorkerServer,
    create_workers,
)
from repro.serve import InferenceServer

from benchmarks.conftest import (
    FAST_MODE as FAST,
    multicore,
    print_table,
    write_artifact,
)

RESULTS_PATH = (Path(__file__).resolve().parent.parent
                / "artifacts" / "bench_runtime.json")
HEAVY_ITEMS = 8 if FAST else 12
HEAVY_BATCH = 96 if FAST else 128
LIGHT_ITEMS = HEAVY_ITEMS
STEAL_GATE = 1.3


def _deployment(rng) -> Deployment:
    network = performance_network(
        [("conv", 8, 3, 1, 1), ("pool", 2), ("conv", 16, 3, 1, 1),
         ("pool", 2), ("flatten",), ("linear", 10)],
        input_shape=(1, 16, 16), num_steps=3,
        seed=int(rng.integers(1 << 16)))
    return Deployment(network=network,
                      config=AcceleratorConfig.for_network(network))


def _skewed_items(rng, deployment):
    """Heavy shards for lane 0, token shards for lane 1: the worst-case
    static assignment stealing exists to absorb."""
    shape = deployment.network.input_shape
    heavy = [WorkItem(i, 0, rng.random((HEAVY_BATCH,) + shape))
             for i in range(HEAVY_ITEMS)]
    light = [WorkItem(1000 + i, 0, rng.random((2,) + shape))
             for i in range(LIGHT_ITEMS)]
    return heavy + light, [0] * len(heavy) + [1] * len(light)


def run_steal_comparison(rng) -> dict:
    """Static-pinned vs stealing on the same skewed work list."""
    deployment = _deployment(rng)
    deployment.engine().run_batch(
        rng.random((2,) + deployment.network.input_shape))  # warm compile
    items, assignment = _skewed_items(rng, deployment)

    walls, results, stolen_counts = {}, {}, {}
    for steal in (False, True):
        group = WorkerGroup(create_workers(["process", "process"]),
                            deployments=[deployment], steal=steal)
        with group:
            group.run(items[:2])  # spin lanes up before timing
            started = time.perf_counter()
            results[steal] = group.run(items, assignment=assignment)
            walls[steal] = time.perf_counter() - started
            stolen_counts[steal] = group.metrics.stolen

    # Determinism rides along: stealing must not change a single bit.
    for static_result, steal_result in zip(results[False], results[True]):
        np.testing.assert_array_equal(static_result.logits,
                                      steal_result.logits)
        assert static_result.merged_trace() == steal_result.merged_trace()

    return {
        "heavy_items": HEAVY_ITEMS,
        "heavy_batch": HEAVY_BATCH,
        "light_items": LIGHT_ITEMS,
        "static_wall_s": walls[False],
        "steal_wall_s": walls[True],
        "steal_speedup": walls[False] / walls[True],
        "stolen_units": stolen_counts[True],
    }


def run_remote_equivalence(rng) -> dict:
    """Two local TCP workers vs the serial baseline, bit for bit."""
    network = performance_network(
        [("conv", 4, 3, 1, 1), ("pool", 2), ("flatten",), ("linear", 5)],
        input_shape=(1, 8, 8), num_steps=3,
        seed=int(rng.integers(1 << 16)))
    num_images = 64 if FAST else 128
    task = SweepTask(
        key="bench_runtime_remote", network=network,
        config=AcceleratorConfig.for_network(network),
        images=rng.random((num_images,) + network.input_shape),
        labels=rng.integers(0, 5, size=num_images))

    serial = SweepDriver(workers=1, shard_size=num_images).run(
        [task])[task.key]
    with WorkerServer() as first, WorkerServer() as second:
        specs = [f"127.0.0.1:{first.port}", f"127.0.0.1:{second.port}"]
        started = time.perf_counter()
        driver = SweepDriver(workers=specs, shard_size=8)
        remote = driver.run([task])[task.key]
        remote_wall = time.perf_counter() - started

        # The hard gate: the TCP fabric is invisible in the results.
        np.testing.assert_array_equal(remote.predictions,
                                      serial.predictions)
        assert remote.trace == serial.trace
        assert remote.correct == serial.correct

        # And one served request through a remote-lane engine pool.
        images = rng.random((4,) + network.input_shape)
        direct_logits, _ = Deployment(
            network=network,
            config=task.config).engine().run_batch(images)

        async def serve_once():
            server = InferenceServer(network, max_batch=4,
                                     workers=[specs[0]])
            async with server:
                return await server.submit_many(images)

        served = asyncio.run(serve_once())
        np.testing.assert_array_equal(
            [result.prediction for result in served],
            direct_logits.argmax(axis=1))

    return {
        "num_images": num_images,
        "tcp_workers": 2,
        "remote_wall_s": remote_wall,
        "bit_identical": True,
        "served_predictions_verified": len(served),
        "summary_executors": list(driver.last_summary.executors),
    }


def run_bench(rng) -> dict:
    return {
        "steal": run_steal_comparison(rng),
        "remote": run_remote_equivalence(rng),
    }


def _render(payload: dict) -> Table:
    steal = payload["steal"]
    remote = payload["remote"]
    table = Table(
        "Runtime fabric - work stealing and remote workers "
        f"({os.cpu_count()} cores)",
        ["metric", "value"])
    table.add_row("skewed workload",
                  f"{steal['heavy_items']}x{steal['heavy_batch']} heavy + "
                  f"{steal['light_items']} light shards")
    table.add_row("static wall (s)", f"{steal['static_wall_s']:.2f}")
    table.add_row("steal wall (s)", f"{steal['steal_wall_s']:.2f}")
    table.add_row("steal speedup", f"{steal['steal_speedup']:.2f}x")
    table.add_row("units stolen", steal["stolen_units"])
    table.add_row("remote sweep images", remote["num_images"])
    table.add_row("remote sweep wall (s)",
                  f"{remote['remote_wall_s']:.2f}")
    table.add_row("remote bit-identical", remote["bit_identical"])
    table.add_row("served via TCP lane, verified",
                  remote["served_predictions_verified"])
    return table


def check_gates(payload: dict) -> None:
    """Acceptance bars, shared by the pytest and __main__ paths."""
    assert payload["remote"]["bit_identical"]
    if multicore(2):
        speedup = payload["steal"]["steal_speedup"]
        assert speedup >= STEAL_GATE, \
            (f"work stealing must be >= {STEAL_GATE}x vs static shards "
             f"on a skewed workload, measured {speedup:.2f}x")
    else:
        print(f"note: only {os.cpu_count()} core(s) visible - the "
              f">={STEAL_GATE}x stealing bar needs >= 2; numbers "
              "recorded for the record")


def test_runtime_fabric(rng, benchmark):
    payload = run_bench(rng)
    print_table(_render(payload))
    write_artifact(RESULTS_PATH, payload)
    check_gates(payload)

    deployment = _deployment(rng)
    items, assignment = _skewed_items(rng, deployment)

    def stealing_run():
        with WorkerGroup(create_workers(["process", "process"]),
                         deployments=[deployment]) as group:
            group.run(items, assignment=assignment)

    benchmark.pedantic(stealing_run, rounds=1, iterations=1)


if __name__ == "__main__":
    bench_rng = np.random.default_rng(7)
    bench_payload = run_bench(bench_rng)
    print(_render(bench_payload).render())
    write_artifact(RESULTS_PATH, bench_payload)
    check_gates(bench_payload)

"""Section III-A claim — the row-based dataflow minimizes memory accesses.

Compares the memory traffic actually measured by the functional simulator
(one row fetch feeds all kernel rows; no feature-map tiling) against a
naive sliding-window engine that re-reads the receptive field per output
pixel.  The timed kernel is one functional convolution-unit pass.
"""

import numpy as np

from repro.core import AcceleratorConfig, ConvUnit
from repro.encoding import radix

from benchmarks.conftest import print_table


def test_dataflow_ablation_report(runner, benchmark):
    result = runner.run_dataflow_ablation()
    print_table(result["table"])
    summary = result["summary"]
    assert summary.activation_read_reduction > 5.0, \
        "row reuse must cut activation reads by the kernel-size factor"
    assert summary.kernel_read_reduction > 1.5

    snn, _ = runner.lenet_snn(3)
    spec = snn.network.conv_layers()[1]      # 6 -> 16 channels, 5x5
    rng = np.random.default_rng(0)
    ints = rng.integers(0, 8, size=spec.in_shape)
    bits = radix.encode_ints(ints, 3).bits
    unit = ConvUnit(AcceleratorConfig())

    benchmark.pedantic(
        lambda: unit.run_pass(spec, bits, [0], 3), rounds=3, iterations=1)

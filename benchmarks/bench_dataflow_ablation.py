"""Section III-A claim — the row-based dataflow minimizes memory accesses.

Compares the memory traffic actually measured by the functional simulator
(one row fetch feeds all kernel rows; no feature-map tiling) against a
naive sliding-window engine that re-reads the receptive field per output
pixel.  The timed kernel is one functional convolution-unit pass.
"""

from pathlib import Path

import numpy as np

from repro.core import AcceleratorConfig, ConvUnit
from repro.encoding import radix

from benchmarks.conftest import print_table, write_artifact

RESULTS_PATH = (Path(__file__).resolve().parent.parent
                / "artifacts" / "bench_dataflow_ablation.json")


def test_dataflow_ablation_report(runner, benchmark):
    result = runner.run_dataflow_ablation()
    print_table(result["table"])
    summary = result["summary"]
    write_artifact(RESULTS_PATH, {
        "rowwise_activation_read_bits":
            summary.rowwise.activation_read_bits,
        "naive_activation_read_bits": summary.naive.activation_read_bits,
        "activation_read_reduction": summary.activation_read_reduction,
        "rowwise_kernel_read_values": summary.rowwise.kernel_read_values,
        "naive_kernel_read_values": summary.naive.kernel_read_values,
        "kernel_read_reduction": summary.kernel_read_reduction,
    })
    assert summary.activation_read_reduction > 5.0, \
        "row reuse must cut activation reads by the kernel-size factor"
    assert summary.kernel_read_reduction > 1.5

    snn, _ = runner.lenet_snn(3)
    spec = snn.network.conv_layers()[1]      # 6 -> 16 channels, 5x5
    rng = np.random.default_rng(0)
    ints = rng.integers(0, 8, size=spec.in_shape)
    bits = radix.encode_ints(ints, 3).bits
    unit = ConvUnit(AcceleratorConfig())

    benchmark.pedantic(
        lambda: unit.run_pass(spec, bits, [0], 3), rounds=3, iterations=1)

"""Chaos benchmark — fault-injected fabric throughput and exactness.

Two acceptance bars for the chaos-hardened runtime fabric:

* **Exactness under faults** — a mixed group (two process lanes plus a
  remote TCP lane) with a seeded kill *and* a seeded sever mid-run must
  answer every request exactly once, bit-identical to a serial
  single-lane run.  Hard gate on every machine.
* **Throughput under lane loss** — losing 1 of 3 process lanes to a
  chaos kill must retain ≥ 0.5x the healthy 3-lane throughput on the
  same work list, with zero lost and zero duplicated requests.  Gated
  on machines with ≥ 3 cores; measured and recorded everywhere.

Results land in ``artifacts/bench_chaos.json`` next to the fabric's
other axes (``bench_runtime.json``, ``bench_serve.json``) so fault
resilience is tracked across PRs like any other performance claim.
"""

import os

# Pin BLAS to one thread per process *before* numpy initializes: the
# lane-loss claim is about fabric capacity, not a BLAS thread lottery.
for _var in ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS",
             "MKL_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import time
from pathlib import Path

import numpy as np

from repro.core import AcceleratorConfig
from repro.harness import Table
from repro.models import performance_network
from repro.runtime import (
    ChaosPolicy,
    Deployment,
    ThreadWorker,
    WorkItem,
    WorkerGroup,
    WorkerServer,
    create_workers,
)

from benchmarks.conftest import (
    FAST_MODE as FAST,
    multicore,
    print_table,
    skip_unless_multicore,
    write_artifact,
)

RESULTS_PATH = (Path(__file__).resolve().parent.parent
                / "artifacts" / "bench_chaos.json")
NUM_ITEMS = 10 if FAST else 16
BATCH = 48 if FAST else 96
LOSS_GATE = 0.5          # chaos throughput >= 0.5x healthy


def _deployment(rng) -> Deployment:
    network = performance_network(
        [("conv", 8, 3, 1, 1), ("pool", 2), ("conv", 16, 3, 1, 1),
         ("pool", 2), ("flatten",), ("linear", 10)],
        input_shape=(1, 16, 16), num_steps=3,
        seed=int(rng.integers(1 << 16)))
    return Deployment(network=network,
                      config=AcceleratorConfig.for_network(network))


def _items(rng, deployment, count=NUM_ITEMS, batch=BATCH):
    shape = deployment.network.input_shape
    return [WorkItem(item_id=i, deployment=0,
                     images=rng.random((batch,) + shape))
            for i in range(count)]


def _clone(items):
    """Fresh WorkItems over the same images (fresh idempotency keys, so
    a second run executes for real instead of hitting the ledger)."""
    return [WorkItem(item_id=i.item_id, deployment=0, images=i.images)
            for i in items]


def _assert_exactly_once(items, results):
    """Every request answered, none twice, input order preserved."""
    assert [r.item_id for r in results] == [i.item_id for i in items]


def run_mixed_chaos(rng) -> dict:
    """Kill + sever a mixed local/remote group mid-run; compare serial."""
    deployment = _deployment(rng)
    deployment.engine().run_batch(
        rng.random((2,) + deployment.network.input_shape))
    items = _items(rng, deployment)

    with WorkerGroup([ThreadWorker()],
                     deployments=[deployment]) as group:
        serial = group.run(_clone(items))

    server = WorkerServer().start()
    chaos = ChaosPolicy(kill={"proc-0": 1}, sever={"remote-0": 2})
    try:
        workers = create_workers(
            ["process", "process", f"127.0.0.1:{server.port}"])
        for worker, name in zip(workers,
                                ("proc-0", "proc-1", "remote-0")):
            worker.name = name
        started = time.perf_counter()
        with WorkerGroup(workers, deployments=[deployment],
                         chaos=chaos, heartbeat_s=30.0) as group:
            chaotic = group.run(_clone(items))
            metrics = group.metrics
        wall = time.perf_counter() - started
    finally:
        server.close()

    _assert_exactly_once(items, chaotic)
    for base, other in zip(serial, chaotic):
        np.testing.assert_array_equal(base.logits, other.logits)
        assert base.merged_trace() == other.merged_trace()
    assert metrics.worker_crashes >= 1
    assert chaos.events, "seeded schedule injected nothing"
    return {
        "items": len(items),
        "batch": BATCH,
        "wall_s": wall,
        "worker_crashes": metrics.worker_crashes,
        "requeued": metrics.requeued,
        "retries": metrics.retries,
        "deduped": metrics.deduped,
        "poisoned": metrics.poisoned,
        "chaos": chaos.summary(),
        "bit_identical_to_serial": True,
    }


def run_lane_loss(rng) -> dict:
    """3 healthy process lanes vs 3 lanes with one chaos-killed."""
    deployment = _deployment(rng)
    deployment.engine().run_batch(
        rng.random((2,) + deployment.network.input_shape))
    items = _items(rng, deployment)

    walls, counters = {}, {}
    for label, chaos in (("healthy", None),
                         ("lane_lost",
                          ChaosPolicy(kill={"lane-0": 1}))):
        workers = create_workers(["process"] * 3)
        for index, worker in enumerate(workers):
            worker.name = f"lane-{index}"
        with WorkerGroup(workers, deployments=[deployment],
                         chaos=chaos, heartbeat_s=30.0) as group:
            group.run(_clone(items)[:2])   # spin lanes up off the clock
            started = time.perf_counter()
            results = group.run(_clone(items))
            walls[label] = time.perf_counter() - started
            counters[label] = group.metrics
        _assert_exactly_once(items, results)

    total_images = NUM_ITEMS * BATCH
    healthy_rps = total_images / walls["healthy"]
    chaos_rps = total_images / walls["lane_lost"]
    return {
        "items": NUM_ITEMS,
        "batch": BATCH,
        "healthy_wall_s": walls["healthy"],
        "lane_lost_wall_s": walls["lane_lost"],
        "healthy_images_per_s": healthy_rps,
        "lane_lost_images_per_s": chaos_rps,
        "retained_fraction": chaos_rps / healthy_rps,
        "gate": LOSS_GATE,
        "lane_lost_crashes": counters["lane_lost"].worker_crashes,
        "lane_lost_requeued": counters["lane_lost"].requeued,
        "lost_requests": 0,
        "duplicated_requests": 0,
    }


def _render(mixed: dict, loss: dict) -> Table:
    table = Table("Chaos drill - fault-injected fabric",
                  ["metric", "value"])
    table.add_row("mixed kill+sever bit-identical",
                  str(mixed["bit_identical_to_serial"]))
    table.add_row("mixed crashes / requeued",
                  f"{mixed['worker_crashes']} / {mixed['requeued']}")
    table.add_row("healthy 3-lane (images/s)",
                  f"{loss['healthy_images_per_s']:.1f}")
    table.add_row("1-of-3 lost (images/s)",
                  f"{loss['lane_lost_images_per_s']:.1f}")
    table.add_row("retained fraction",
                  f"{loss['retained_fraction']:.2f} "
                  f"(gate >= {LOSS_GATE})")
    table.add_row("lost / duplicated requests", "0 / 0")
    return table


def check_gate(loss: dict) -> None:
    """The lane-loss throughput gate (needs 3 real cores to mean
    anything — the exactness gates in run_* are hard everywhere)."""
    assert loss["retained_fraction"] >= LOSS_GATE, (
        f"1-of-3 lane loss retained only "
        f"{loss['retained_fraction']:.2f}x of healthy throughput "
        f"(gate {LOSS_GATE}x)")


def run_bench(rng) -> tuple[dict, dict]:
    mixed = run_mixed_chaos(rng)
    loss = run_lane_loss(rng)
    print_table(_render(mixed, loss))
    write_artifact(RESULTS_PATH, {"mixed_chaos": mixed,
                                  "lane_loss": loss})
    return mixed, loss


def test_chaos_fabric_benchmark(rng):
    _, loss = run_bench(rng)
    # Losing a lane costs capacity, never answers; the gate only means
    # something when 3 lanes can actually run in parallel.
    skip_unless_multicore(3, "1-of-3 lane-loss throughput gate")
    check_gate(loss)


if __name__ == "__main__":
    bench_rng = np.random.default_rng(7)
    _, bench_loss = run_bench(bench_rng)
    if multicore(3):
        check_gate(bench_loss)
    else:
        print(f"lane-loss gate skipped: {os.cpu_count() or 1} core(s) "
              "visible, needs >= 3")

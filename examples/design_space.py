"""Design-space exploration: generalizing the paper's Table II sweep.

The paper picks 4 convolution units for its 200 MHz deployments because
they "yielded one of the best latency-power-resource ratio".  This example
sweeps units × clock frequency for LeNet-5, prints the grid and computes
the same figure of merit (energy per frame × LUTs) to show where the
paper's choice sits.

Run:  python examples/design_space.py
"""

from repro.core import (
    AcceleratorConfig,
    LatencyModel,
    PowerModel,
    ResourceModel,
    plan_bram,
)
from repro.harness import Table
from repro.models import performance_network


def lenet_network(num_steps=4):
    return performance_network(
        [("conv", 6, 5, 1, 0), ("pool", 2), ("conv", 16, 5, 1, 0),
         ("pool", 2), ("conv", 120, 5, 1, 0), ("flatten",),
         ("linear", 120), ("linear", 84), ("linear", 10)],
        input_shape=(1, 32, 32), num_steps=num_steps)


def main() -> None:
    network = lenet_network(num_steps=4)
    table = Table(
        "Design space - LeNet-5, T=4 (figure of merit: energy/frame x "
        "LUTs, lower is better)",
        ["units", "clock MHz", "latency us", "power W", "LUTs",
         "energy mJ", "FoM"])
    best = None
    for units in (1, 2, 4, 8, 16):
        for clock in (100.0, 150.0, 200.0):
            config = AcceleratorConfig().with_units(units).with_clock(clock)
            latency_us = LatencyModel(config).latency_us(network)
            bram = plan_bram(network, config.memory, True)
            power_w = PowerModel(config).average_power_w(
                bram_mbit=bram.total_mbit)
            luts = ResourceModel(config).estimate().luts
            energy_mj = power_w * latency_us * 1e-3
            fom = energy_mj * luts
            table.add_row(units, clock, latency_us, power_w,
                          f"{luts:,}", energy_mj, fom)
            if best is None or fom < best[0]:
                best = (fom, units, clock)
    print(table.render())
    print(f"\nBest figure of merit: {best[1]} units at {best[2]:.0f} MHz "
          "(the paper chose 4 units at 200 MHz for its MNIST rows)")


if __name__ == "__main__":
    main()

"""Chaos drill: kill a lane mid-run and prove the answers didn't move.

The fabric's robustness claim in one script:

1. build a small deployed SNN and a batch of work,
2. run it serially on one thread lane — the ground truth,
3. run the same work on three process lanes under a seeded
   :class:`~repro.runtime.ChaosPolicy` that SIGKILLs one lane on its
   first dispatch,
4. assert every request was answered exactly once, bit-identical to
   the serial run, and print the fault log + scheduling counters.

The chaos schedule is a pure function of its seed, so a failure here
replays exactly — rerun with the same seed and the same lane dies at
the same draw.

Run:  python examples/chaos_drill.py
      (REPRO_FAST=1 shrinks the workload; CI-safe on any core count)
"""

import os

import numpy as np

from repro.core import AcceleratorConfig
from repro.harness import Table
from repro.models import performance_network
from repro.runtime import (
    ChaosPolicy,
    Deployment,
    ThreadWorker,
    WorkItem,
    WorkerGroup,
    create_workers,
)

FAST = bool(os.environ.get("REPRO_FAST"))


def build_deployment(rng) -> Deployment:
    network = performance_network(
        [("conv", 8, 3, 1, 1), ("pool", 2), ("flatten",), ("linear", 10)],
        input_shape=(1, 12, 12), num_steps=3,
        seed=int(rng.integers(1 << 16)))
    return Deployment(network=network,
                      config=AcceleratorConfig.for_network(network))


def make_items(rng, deployment, count, batch):
    shape = deployment.network.input_shape
    return [WorkItem(item_id=i, deployment=0,
                     images=rng.random((batch,) + shape))
            for i in range(count)]


def main() -> None:
    rng = np.random.default_rng(7)
    deployment = build_deployment(rng)
    count, batch = (4, 8) if FAST else (8, 24)
    items = make_items(rng, deployment, count, batch)

    print("1) serial ground truth (one thread lane) ...")
    with WorkerGroup([ThreadWorker()],
                     deployments=[deployment]) as group:
        serial = group.run([WorkItem(item_id=i.item_id, deployment=0,
                                     images=i.images) for i in items])

    print("2) three process lanes, chaos kills 'lane-0' on its first "
          "dispatch ...")
    chaos = ChaosPolicy(kill={"lane-0": 1})
    workers = create_workers(["process"] * 3)
    for index, worker in enumerate(workers):
        worker.name = f"lane-{index}"
    with WorkerGroup(workers, deployments=[deployment], chaos=chaos,
                     heartbeat_s=30.0) as group:
        chaotic = group.run(items)
        metrics = group.metrics
        survivors = group.alive_workers()

    print("3) verifying exactly-once, bit-identical results ...")
    assert [r.item_id for r in chaotic] == [i.item_id for i in items]
    for base, other in zip(serial, chaotic):
        np.testing.assert_array_equal(base.logits, other.logits)
        assert base.merged_trace() == other.merged_trace()
    print("   every request answered once; logits and traces match "
          "the serial run bit for bit.\n")

    table = Table("chaos drill", ["metric", "value"])
    table.add_row("injected faults",
                  ", ".join(f"{site}={hits}" for site, hits
                            in sorted(chaos.summary().items())) or "none")
    table.add_row("worker crashes", str(metrics.worker_crashes))
    table.add_row("items requeued", str(metrics.requeued))
    table.add_row("retries", str(metrics.retries))
    table.add_row("answered from ledger", str(metrics.deduped))
    table.add_row("surviving lanes", ", ".join(survivors))
    print(table.render())


if __name__ == "__main__":
    main()

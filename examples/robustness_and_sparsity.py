"""Robustness and sparsity analysis of a deployed SNN.

Two hardware-facing analyses beyond the paper's tables:

* **fault injection** — flip random bits in the 3-bit weight BRAMs and
  watch accuracy degrade (the FPGA configuration-upset failure mode);
* **spike sparsity** — per-layer spike rates, which gate the adder
  activity (and hence dynamic energy) of the accelerator.

Run:  python examples/robustness_and_sparsity.py
      (uses cached models when available; REPRO_FAST=1 for a smoke run)
"""

from repro.analysis import measure_sparsity, sensitivity_curve
from repro.harness import ExperimentRunner, Table


def main() -> None:
    runner = ExperimentRunner()
    snn, accuracy = runner.lenet_snn(4)
    _, test = runner.mnist()
    print(f"LeNet-5 at T=4, baseline accuracy {accuracy * 100:.2f}%\n")

    print("Fault injection (weight-bit flips in the deployed memories):")
    table = Table("accuracy vs flip rate",
                  ["flip rate", "flips", "accuracy %"])
    for point in sensitivity_curve(
            snn, test, flip_fractions=(0.0, 0.001, 0.01, 0.05, 0.1),
            max_samples=300):
        table.add_row(f"{point.flip_fraction:.3f}",
                      f"{point.num_flips:,}", point.accuracy * 100)
    print(table.render())

    print("\nSpike sparsity (adders only fire on spikes):")
    report = measure_sparsity(snn, test, max_samples=32)
    table = Table("per-layer spike rates",
                  ["layer", "neurons", "spikes/sample", "rate"])
    for layer in report.layers:
        table.add_row(layer.layer_index, layer.num_neurons,
                      layer.mean_spikes_per_sample, layer.spike_rate)
    print(table.render())
    print(f"\nnetwork-wide spike rate: {report.overall_rate:.3f} "
          "(fraction of neuron-step slots carrying a spike)")
    print(f"densest layer: {report.densest_layer().layer_index}")


if __name__ == "__main__":
    main()

"""LeNet-5 on synthetic MNIST: the paper's Table I experiment end to end.

Sweeps the spike-train length T, training one quantization-aware model
per T (as the paper's toolchain does), and reports accuracy and latency
side by side with the paper's published values.  Also renders the Fig. 1
architecture diagram for the deployment used.

Run:  python examples/lenet_mnist.py          (cached models if available)
      REPRO_FAST=1 python examples/lenet_mnist.py   (tiny smoke run)
"""

from repro.core import AcceleratorConfig
from repro.harness import ExperimentRunner, render_overview
from repro.snn import SNNModel


def main() -> None:
    runner = ExperimentRunner()
    print("Training one QAT model per spike-train length "
          "(cached in artifacts/ once trained) ...\n")
    result = runner.run_table1()
    print(result["table"].render())

    print("\nSpike statistics at T=4 (radix trains are short and sparse):")
    snn, _ = runner.lenet_snn(4)
    _, test = runner.mnist()
    _, stats = snn.forward_spikes(test.images[:16], collect_stats=True)
    for i, (spikes, neurons) in enumerate(
            zip(stats.spikes_per_layer, stats.neurons_per_layer)):
        rate = spikes / (neurons * snn.num_steps)
        print(f"  layer {i}: {spikes:7d} spikes over {neurons:6d} neurons "
              f"-> rate {rate:.3f}")

    print("\nFig. 1 for the Table I deployment:")
    from repro.core import Accelerator
    accelerator = Accelerator(AcceleratorConfig())
    compiled = accelerator.deploy(snn, name="LeNet-5")
    print(render_overview(accelerator.config, compiled))


if __name__ == "__main__":
    main()

"""VGG-11 on CIFAR-100: the paper's scalability headline (Table III row 5).

The paper is "the first work to deploy the large neural network model VGG
on physical FPGA-based neuromorphic hardware": 28.5M parameters at 3 bits
exceed on-chip memory, so weights stream from DRAM; with 8 convolution
units at 115 MHz it still exceeds 4 frames per second.

This example reproduces the deployment analysis on the *exact* VGG-11
geometry (weight values do not affect latency/power/resources) and —
unless ``--skip-training`` is given — measures accuracy with the
width-reduced twin that pure-numpy training can handle (see DESIGN.md §2).

Run:  python examples/vgg_cifar100.py --skip-training     (seconds)
      python examples/vgg_cifar100.py                     (minutes)
"""

import argparse

from repro.core import Accelerator, AcceleratorConfig
from repro.harness import ExperimentRunner
from repro.models import vgg11_performance_network
from repro.snn import SNNModel


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--skip-training", action="store_true",
                        help="skip the accuracy measurement")
    args = parser.parse_args()

    print("Building the full VGG-11 geometry (28.5M parameters) ...")
    network = vgg11_performance_network(num_steps=6)
    print(f"  parameters : {network.num_parameters / 1e6:.1f} M")
    print(f"  at 3 bits  : {network.parameter_bytes / 1e6:.1f} MB "
          "(exceeds on-chip capacity -> DRAM streaming)")

    config = AcceleratorConfig.for_network(network, num_conv_units=8,
                                           clock_mhz=115.0)
    accelerator = Accelerator(config)
    compiled = accelerator.deploy(SNNModel(network), name="VGG-11")
    print(f"  weights on chip: {compiled.weights_on_chip} "
          "(paper: streamed from DRAM)")

    accuracy = None
    if not args.skip_training:
        print("\nTraining the width-reduced VGG-11 twin on synthetic "
              "CIFAR-100 (cached once trained) ...")
        runner = ExperimentRunner()
        accuracy = runner.vgg_accuracy(num_steps=6)
        print(f"  accuracy: {accuracy * 100:.2f}% "
              "(paper: 60.1% on real CIFAR-100)")

    print("\nDeployment report (paper: 210 ms, 4.7 fps, 4.9 W, "
          "88k LUTs / 84k FFs):")
    print(accelerator.report(accuracy=accuracy).summary())

    print("\nPer-layer latency breakdown:")
    from repro.core import LatencyModel
    model = LatencyModel(config)
    for layer in model.layer_latencies(network, weights_on_chip=False):
        total_ms = layer.total_cycles / config.clock_mhz / 1000
        dram = (f" (+{layer.dram_cycles:,} DRAM cycles)"
                if layer.dram_cycles else "")
        print(f"  {layer.name:8s} {layer.kind:8s} {total_ms:8.2f} ms{dram}")


if __name__ == "__main__":
    main()

"""A tour of the neural encodings: why spike order matters.

Shows, on concrete numbers, what radix encoding does that rate encoding
cannot: a length-T binary spike train carries a T-bit value exactly when
the receiver left-shifts its accumulator between steps (MSB first), while
a rate code needs 2^T steps for the same resolution.  This is the whole
reason the paper's accelerator exists — traditional SNN hardware ignores
spike order and cannot run radix-encoded models.

Run:  python examples/encoding_tour.py
"""

import numpy as np

from repro.encoding import (
    DeterministicRateEncoder,
    decode_rate,
    radix,
)
from repro.snn import RadixIFNeuron


def main() -> None:
    value = 0.71875  # = 23/32, exactly representable with T=5 bits
    num_steps = 5

    print(f"encoding the activation a = {value} with T = {num_steps}\n")

    q = radix.quantize_real(np.array([value]), num_steps)[0]
    train = radix.encode_ints(np.array([q]), num_steps)
    print("radix (MSB first):")
    print(f"  integer      : {q} = 0b{q:05b}")
    print(f"  spike train  : {train.bits[:, 0].tolist()}")
    print(f"  decoded      : {radix.decode_real(train)[0]} (exact)")

    rate = DeterministicRateEncoder(num_steps).encode(np.array([value]))
    print("\nrate (same length):")
    print(f"  spike train  : {rate.bits[:, 0].tolist()}")
    print(f"  decoded      : {decode_rate(rate)[0]} "
          f"(error {abs(decode_rate(rate)[0] - value):.4f})")
    long_rate = DeterministicRateEncoder(1 << num_steps).encode(
        np.array([value]))
    print(f"  with T = {1 << num_steps} steps: "
          f"{decode_rate(long_rate)[0]} — rate needs 2^T steps "
          "for the resolution radix gets in T")

    print("\nwhy order matters — scramble the radix train:")
    scrambled = train.bits[::-1].copy()
    from repro.encoding.spike_train import SpikeTrain
    wrong = radix.decode_real(SpikeTrain(scrambled))[0]
    print(f"  reversed spike order decodes to {wrong} != {value}")
    print("  (rate decoders are permutation-invariant and cannot tell "
        "the difference)")

    print("\nthe receiving neuron (accumulator with left shift):")
    neuron = RadixIFNeuron((1,), num_steps)
    for t, plane in enumerate(train.bits):
        neuron.integrate(plane.astype(np.int64))
        print(f"  after step {t}: potential = {neuron.potential[0]:2d} "
              f"(spike {int(plane[0])}, weight {radix.step_weight(t, num_steps)})")
    print(f"  final potential {neuron.potential[0]} == quantized value "
          f"{q}: the dot product is exact")


if __name__ == "__main__":
    main()

"""Quickstart: train a small SNN, deploy it on the accelerator, run it.

This walks the paper's complete flow in about a minute:

1. generate a synthetic digit dataset (offline MNIST stand-in),
2. train LeNet-5 with quantization-aware training (3-bit weights,
   T-bit radix activations),
3. convert the ANN to a radix-encoded SNN (bit-exact contract),
4. deploy it on the simulated accelerator and run the functional model
   on the selected execution backend — ``reference`` simulates every
   register shift, ``vectorized`` computes the identical integer
   semantics with whole-batch tensor ops,
5. print the performance report the paper's Table III rows are made of.

Run:  python examples/quickstart.py [--backend reference|vectorized|both]
Set ``REPRO_FAST=1`` for a smoke-scale run (CI uses this).
"""

import argparse
import os
import time

import numpy as np

from repro.core import Accelerator, AcceleratorConfig, available_backends
from repro.data import generate_mnist
from repro.models import build_lenet5
from repro.nn import Adam
from repro.nn.qat import QATTrainer, add_activation_quantization
from repro.snn import ann_to_snn

NUM_STEPS = 4  # spike-train length T


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", default="both",
                        choices=available_backends() + ("both",),
                        help="execution engine for the functional run")
    args = parser.parse_args()
    backends = (available_backends() if args.backend == "both"
                else (args.backend,))
    fast = bool(os.environ.get("REPRO_FAST"))
    train_count, epochs = (600, 1) if fast else (2000, 3)

    print("1) generating synthetic digit data ...")
    train, test = generate_mnist(train_count=train_count, test_count=400)

    print("2) quantization-aware training (3-bit weights, "
          f"T={NUM_STEPS} activations) ...")
    model = add_activation_quantization(build_lenet5(), NUM_STEPS)
    trainer = QATTrainer(model, Adam(model.params(), lr=1.5e-3),
                         weight_bits=3, input_steps=NUM_STEPS,
                         batch_size=64)
    trainer.fit(train.images, train.labels, epochs=epochs, verbose=True)

    print("3) converting to a radix-encoded SNN ...")
    snn = ann_to_snn(model, train.subset(256), num_steps=NUM_STEPS)
    accuracy = snn.accuracy(test)
    print(f"   SNN accuracy: {accuracy * 100:.2f}%")

    print("4) deploying on the accelerator (2 conv units, 100 MHz) ...")
    batch = test.images[:4 if fast else 16]
    reference_ints = snn.forward_ints(batch)
    report = None
    for backend in backends:
        accelerator = Accelerator(AcceleratorConfig(), backend=backend)
        accelerator.deploy(snn, name="LeNet-5")
        # The reference engine simulates every register shift — run it on
        # one image; the vectorized engine takes the whole batch at once.
        images = batch[:1] if backend == "reference" else batch
        start = time.perf_counter()
        logits, traces = accelerator.run_logits(images)
        elapsed = time.perf_counter() - start
        assert np.array_equal(logits, reference_ints[:len(images)]), \
            "hardware must be bit-exact"
        predictions = logits.argmax(axis=1)
        correct = int((predictions == test.labels[:len(images)]).sum())
        print(f"   {backend:>10}: {len(images)} image(s) in "
              f"{elapsed * 1e3:.1f} ms "
              f"({elapsed / len(images) * 1e3:.1f} ms/image), "
              f"{traces[0].total_cycles:,} cycles/frame, "
              f"{correct}/{len(images)} correct, bit-exact vs the SNN "
              "reference")
        report = accelerator.report(accuracy=accuracy)

    print("5) performance report:")
    print(report.summary())


if __name__ == "__main__":
    main()

"""Quickstart: train a small SNN, deploy it on the accelerator, run it.

This walks the paper's complete flow in about a minute:

1. generate a synthetic digit dataset (offline MNIST stand-in),
2. train LeNet-5 with quantization-aware training (3-bit weights,
   T-bit radix activations),
3. convert the ANN to a radix-encoded SNN (bit-exact contract),
4. deploy it on the simulated accelerator and run the functional model,
5. print the performance report the paper's Table III rows are made of.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import Accelerator, AcceleratorConfig
from repro.data import generate_mnist
from repro.models import build_lenet5
from repro.nn import Adam
from repro.nn.qat import QATTrainer, add_activation_quantization
from repro.snn import ann_to_snn

NUM_STEPS = 4  # spike-train length T


def main() -> None:
    print("1) generating synthetic digit data ...")
    train, test = generate_mnist(train_count=2000, test_count=400)

    print("2) quantization-aware training (3-bit weights, "
          f"T={NUM_STEPS} activations) ...")
    model = add_activation_quantization(build_lenet5(), NUM_STEPS)
    trainer = QATTrainer(model, Adam(model.params(), lr=1.5e-3),
                         weight_bits=3, input_steps=NUM_STEPS,
                         batch_size=64)
    trainer.fit(train.images, train.labels, epochs=3, verbose=True)

    print("3) converting to a radix-encoded SNN ...")
    snn = ann_to_snn(model, train.subset(256), num_steps=NUM_STEPS)
    accuracy = snn.accuracy(test)
    print(f"   SNN accuracy: {accuracy * 100:.2f}%")

    print("4) deploying on the accelerator (2 conv units, 100 MHz) ...")
    accelerator = Accelerator(AcceleratorConfig())
    accelerator.deploy(snn, name="LeNet-5")

    image = test.images[0]
    logits, trace = accelerator.run_image(image)
    reference = snn.forward_ints(image[np.newaxis])[0]
    assert np.array_equal(logits, reference), "hardware must be bit-exact"
    print(f"   functional run: predicted class {logits.argmax()} "
          f"(true {test.labels[0]}), {trace.total_cycles:,} cycles, "
          "bit-exact against the SNN reference")

    print("5) performance report:")
    print(accelerator.report(accuracy=accuracy).summary())


if __name__ == "__main__":
    main()

"""Spec-level network builders for performance experiments.

Latency, power and resource estimates depend only on layer *geometry*
(shapes, kernel sizes, channel counts) — never on trained weight values.
For the full-size VGG-11 row of Table III it would be wasteful to allocate
and train 28.5M float parameters just to read shapes off them, so these
builders construct the :class:`~repro.snn.spec.QuantizedNetwork` directly
from an architecture description, with compact random integer weights
(int8) that keep the network executable by the functional simulator if
ever needed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.models.vgg import VGG11_CONV_PLAN
from repro.snn.spec import (
    FlattenSpec,
    QuantConvSpec,
    QuantLinearSpec,
    QuantPoolSpec,
    QuantizedNetwork,
)

__all__ = ["performance_network", "vgg11_performance_network"]


def performance_network(
    layers: list[tuple],
    input_shape: tuple[int, int, int],
    num_steps: int,
    weight_bits: int = 3,
    seed: int = 0,
) -> QuantizedNetwork:
    """Build a quantized network from layer descriptors.

    Descriptors: ``("conv", out_channels, kernel, stride, padding)``,
    ``("pool", size)``, ``("flatten",)``, ``("linear", out_features)``.
    The final linear layer becomes the (un-requantized) classifier head.
    """
    rng = np.random.default_rng(seed)
    top = (1 << (weight_bits - 1)) - 1
    specs: list = []
    shape = input_shape
    flat: int | None = None
    linear_indices = [i for i, d in enumerate(layers) if d[0] == "linear"]
    if not linear_indices or linear_indices[-1] != len(layers) - 1:
        raise ShapeError("a performance network must end in a linear layer")

    for i, desc in enumerate(layers):
        kind = desc[0]
        if kind == "conv":
            _, out_c, k, stride, padding = desc
            c, h, w = shape
            h_out = (h + 2 * padding - k) // stride + 1
            w_out = (w + 2 * padding - k) // stride + 1
            weights = rng.integers(-top, top + 1, size=(out_c, c, k, k),
                                   dtype=np.int8)
            specs.append(QuantConvSpec(
                weights=weights,
                bias=np.zeros(out_c, dtype=np.int64),
                scales=np.full(out_c, 1.0 / max(c * k * k * top, 1)),
                stride=stride, padding=padding,
                in_shape=shape, out_shape=(out_c, h_out, w_out),
            ))
            shape = (out_c, h_out, w_out)
        elif kind == "pool":
            _, size = desc
            c, h, w = shape
            out_shape = (c, (h - size) // size + 1, (w - size) // size + 1)
            specs.append(QuantPoolSpec(size=size, stride=size,
                                       in_shape=shape, out_shape=out_shape))
            shape = out_shape
        elif kind == "flatten":
            flat = int(np.prod(shape))
            specs.append(FlattenSpec(in_shape=shape, out_features=flat))
        elif kind == "linear":
            _, out_f = desc
            if flat is None:
                flat = int(np.prod(shape))
            weights = rng.integers(-top, top + 1, size=(out_f, flat),
                                   dtype=np.int8)
            specs.append(QuantLinearSpec(
                weights=weights,
                bias=np.zeros(out_f, dtype=np.int64),
                scales=np.full(out_f, 1.0 / max(flat * top, 1)),
                is_output=(i == len(layers) - 1),
                in_features=flat, out_features=out_f,
            ))
            flat = out_f
        else:
            raise ShapeError(f"unknown layer descriptor {desc!r}")
    return QuantizedNetwork(
        layers=tuple(specs), num_steps=num_steps, weight_bits=weight_bits,
        input_shape=input_shape, num_classes=specs[-1].out_features,
    )


def vgg11_performance_network(
    num_steps: int = 6,
    weight_bits: int = 3,
    num_classes: int = 100,
) -> QuantizedNetwork:
    """Full-geometry VGG-11 (28.5M parameters) for hardware estimation."""
    layers: list[tuple] = []
    for entry in VGG11_CONV_PLAN:
        if entry == "P":
            layers.append(("pool", 2))
        else:
            layers.append(("conv", int(entry), 3, 1, 1))
    layers.append(("flatten",))
    layers.append(("linear", 4096))
    layers.append(("linear", 4096))
    layers.append(("linear", num_classes))
    return performance_network(layers, (3, 32, 32), num_steps, weight_bits)

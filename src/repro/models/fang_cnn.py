"""Network topologies of the two prior works compared in Table III.

The paper deploys Fang et al.'s convolutional SNN on its own accelerator
for a like-for-like comparison (Table III, row 3), so both topologies are
reproduced here exactly as quoted in the table footnotes:

* Fang et al. [11] ("CNN 2"): ``28x28 – 32C3 – P2 – 32C3 – P2 – 256 – 10``
* Ju et al. [12] ("CNN 1"):   ``28x28 – 64C5 – P2 – 64C5 – P2 – 128 – 10``
"""

from __future__ import annotations

import numpy as np

from repro.nn import AvgPool2d, Conv2d, Flatten, Linear, ReLU, Sequential

__all__ = [
    "build_fang_cnn",
    "build_ju_cnn",
    "FANG_ARCH_STRING",
    "JU_ARCH_STRING",
]

FANG_ARCH_STRING = "28x28 - 32C3 - P2 - 32C3 - P2 - 256 - 10"
JU_ARCH_STRING = "28x28 - 64C5 - P2 - 64C5 - P2 - 128 - 10"


def build_fang_cnn(seed: int = 0) -> Sequential:
    """Fang et al.'s CNN 2 for 28×28 single-channel inputs."""
    rng = np.random.default_rng(seed)
    return Sequential([
        Conv2d(1, 32, kernel_size=3, rng=rng),      # 28 -> 26
        ReLU(),
        AvgPool2d(2),                               # 26 -> 13
        Conv2d(32, 32, kernel_size=3, rng=rng),     # 13 -> 11
        ReLU(),
        AvgPool2d(2),                               # 11 -> 5
        Flatten(),                                  # 32*5*5 = 800
        Linear(800, 256, rng=rng),
        ReLU(),
        Linear(256, 10, rng=rng),
    ])


def build_ju_cnn(seed: int = 0) -> Sequential:
    """Ju et al.'s CNN 1 for 28×28 single-channel inputs."""
    rng = np.random.default_rng(seed)
    return Sequential([
        Conv2d(1, 64, kernel_size=5, rng=rng),      # 28 -> 24
        ReLU(),
        AvgPool2d(2),                               # 24 -> 12
        Conv2d(64, 64, kernel_size=5, rng=rng),     # 12 -> 8
        ReLU(),
        AvgPool2d(2),                               # 8 -> 4
        Flatten(),                                  # 64*4*4 = 1024
        Linear(1024, 128, rng=rng),
        ReLU(),
        Linear(128, 10, rng=rng),
    ])

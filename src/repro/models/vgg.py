"""VGG-11 — the large model the paper is the first to deploy on FPGA
neuromorphic hardware.

``build_vgg11(width_multiplier=1.0)`` reproduces the exact geometry the
paper quotes (28.5M parameters: eight 3×3 convolutions of widths
64/128/256/256/512/512/512/512 with five 2×2 poolings, then a
512→4096→4096→100 classifier for CIFAR-100).  The full-width network is
used for all hardware experiments (latency/power/resources are
weight-independent); a width-reduced variant keeps training tractable in
pure numpy for the accuracy measurement — see DESIGN.md §2.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn import (
    AvgPool2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)

__all__ = ["build_vgg11", "VGG11_CONV_PLAN", "vgg11_channel_widths"]

# Channel width per conv layer; "P" marks a 2x2 pooling.  This is the
# standard VGG-11 configuration ("A" column of the VGG paper).
VGG11_CONV_PLAN: tuple = (64, "P", 128, "P", 256, 256, "P",
                          512, 512, "P", 512, 512, "P")

_CLASSIFIER_HIDDEN = 4096


def _scaled(width: int, multiplier: float) -> int:
    scaled = int(round(width * multiplier))
    return max(scaled, 1)


def vgg11_channel_widths(width_multiplier: float = 1.0) -> list[int]:
    """Conv channel widths after applying the multiplier (for tests/docs)."""
    return [_scaled(w, width_multiplier)
            for w in VGG11_CONV_PLAN if w != "P"]


def build_vgg11(
    num_classes: int = 100,
    in_channels: int = 3,
    width_multiplier: float = 1.0,
    pool: str = "avg",
    dropout: float = 0.0,
    seed: int = 0,
) -> Sequential:
    """VGG-11 for 32×32 inputs.

    ``pool='avg'`` (default) keeps the network convertible to the
    accelerator's adder-only pooling unit; ``pool='max'`` gives the classic
    ANN baseline.
    """
    if width_multiplier <= 0:
        raise ShapeError(
            f"width multiplier must be positive, got {width_multiplier}"
        )
    if pool not in ("avg", "max"):
        raise ShapeError(f"pool must be 'avg' or 'max', got {pool!r}")
    rng = np.random.default_rng(seed)
    pool_cls = AvgPool2d if pool == "avg" else MaxPool2d

    layers = []
    channels = in_channels
    for entry in VGG11_CONV_PLAN:
        if entry == "P":
            layers.append(pool_cls(2))
            continue
        width = _scaled(entry, width_multiplier)
        layers.append(Conv2d(channels, width, kernel_size=3, padding=1,
                             rng=rng))
        layers.append(ReLU())
        channels = width

    hidden = _scaled(_CLASSIFIER_HIDDEN, width_multiplier)
    layers.append(Flatten())  # 32 -> 1 spatial after five poolings
    layers.append(Linear(channels, hidden, rng=rng))
    layers.append(ReLU())
    if dropout > 0:
        layers.append(Dropout(dropout))
    layers.append(Linear(hidden, hidden, rng=rng))
    layers.append(ReLU())
    if dropout > 0:
        layers.append(Dropout(dropout))
    layers.append(Linear(hidden, num_classes, rng=rng))
    return Sequential(layers)

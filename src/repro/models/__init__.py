"""Model zoo: every network topology the paper evaluates."""

from repro.models.fang_cnn import (
    FANG_ARCH_STRING,
    JU_ARCH_STRING,
    build_fang_cnn,
    build_ju_cnn,
)
from repro.models.geometry import (
    performance_network,
    vgg11_performance_network,
)
from repro.models.lenet import LENET5_ARCH_STRING, build_lenet5
from repro.models.vgg import (
    VGG11_CONV_PLAN,
    build_vgg11,
    vgg11_channel_widths,
)

__all__ = [
    "FANG_ARCH_STRING",
    "JU_ARCH_STRING",
    "LENET5_ARCH_STRING",
    "VGG11_CONV_PLAN",
    "build_fang_cnn",
    "build_ju_cnn",
    "build_lenet5",
    "build_vgg11",
    "performance_network",
    "vgg11_channel_widths",
    "vgg11_performance_network",
]

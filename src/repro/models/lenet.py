"""LeNet-5, in the exact variant the paper evaluates.

The paper's architecture string is ``32x32x1 – 6C5 – P2 – 16C5 – P2 – 120C5
– 120 – 84 – 10``: three 5×5 convolutions (the last collapsing the 5×5 maps
to 1×1×120), 2×2 pooling after the first two, then three fully-connected
layers (120, 84, 10).  Pooling is average pooling, matching the adder-only
pooling unit of the accelerator.
"""

from __future__ import annotations

import numpy as np

from repro.nn import AvgPool2d, Conv2d, Flatten, Linear, ReLU, Sequential

__all__ = ["build_lenet5", "LENET5_ARCH_STRING"]

LENET5_ARCH_STRING = "32x32x1 - 6C5 - P2 - 16C5 - P2 - 120C5 - 120 - 84 - 10"


def build_lenet5(seed: int = 0) -> Sequential:
    """LeNet-5 for 32×32 single-channel inputs, 10 classes."""
    rng = np.random.default_rng(seed)
    return Sequential([
        Conv2d(1, 6, kernel_size=5, rng=rng),       # 32 -> 28
        ReLU(),
        AvgPool2d(2),                               # 28 -> 14
        Conv2d(6, 16, kernel_size=5, rng=rng),      # 14 -> 10
        ReLU(),
        AvgPool2d(2),                               # 10 -> 5
        Conv2d(16, 120, kernel_size=5, rng=rng),    # 5 -> 1
        ReLU(),
        Flatten(),                                  # 120
        Linear(120, 120, rng=rng),
        ReLU(),
        Linear(120, 84, rng=rng),
        ReLU(),
        Linear(84, 10, rng=rng),
    ])

"""Command-line interface: regenerate any experiment from the terminal.

Usage::

    python -m repro table1            # accuracy & latency vs T
    python -m repro table2            # units sweep
    python -m repro table3 [--no-vgg] # cross-accelerator comparison
    python -m repro encoding          # radix vs rate ablation
    python -m repro dataflow          # memory-traffic ablation
    python -m repro figures           # Fig. 1 / Fig. 2 diagrams
    python -m repro all               # everything above

Models are trained on first use and cached under ``artifacts/``; set
``REPRO_FAST=1`` for a smoke-scale run.  ``--backend vectorized`` runs
the functional simulations on the batched tensor engine (bit-identical
results, orders of magnitude faster than the unit-level model).
"""

from __future__ import annotations

import argparse
import sys

from repro.core import Accelerator, AcceleratorConfig, available_backends
from repro.harness import (
    ExperimentRunner,
    render_conv_unit,
    render_overview,
)

__all__ = ["main"]


def _print_table1(runner: ExperimentRunner) -> None:
    print(runner.run_table1()["table"].render())


def _print_table2(runner: ExperimentRunner) -> None:
    print(runner.run_table2()["table"].render())


def _print_table3(runner: ExperimentRunner, include_vgg: bool) -> None:
    print(runner.run_table3(include_vgg=include_vgg)["table"].render())


def _print_encoding(runner: ExperimentRunner) -> None:
    result = runner.run_encoding_ablation()
    print(result["table"].render())
    comparison = result["comparison"]
    print(f"\nradix reaches the target at T={comparison.radix_steps}, "
          f"rate at T={comparison.rate_steps}")
    if comparison.efficiency_gain is not None:
        print(f"efficiency gain: {comparison.efficiency_gain * 100:.0f}% "
              "(paper: ~40%)")


def _print_dataflow(runner: ExperimentRunner) -> None:
    print(runner.run_dataflow_ablation()["table"].render())


def _print_figures(runner: ExperimentRunner) -> None:
    snn, _ = runner.lenet_snn(3)
    accelerator = Accelerator(AcceleratorConfig())
    compiled = accelerator.deploy(snn, name="LeNet-5")
    print("Fig. 1 - accelerator overview\n")
    print(render_overview(accelerator.config, compiled))
    print("\nFig. 2 - convolution unit\n")
    print(render_conv_unit(accelerator.config, kernel_rows=5))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument(
        "experiment",
        choices=["table1", "table2", "table3", "encoding", "dataflow",
                 "figures", "all"],
        help="which experiment to run")
    parser.add_argument("--no-vgg", action="store_true",
                        help="skip the VGG-11 row of table3")
    parser.add_argument("--backend", choices=available_backends(),
                        default="reference",
                        help="execution engine for functional simulations")
    args = parser.parse_args(argv)

    runner = ExperimentRunner(backend=args.backend)
    dispatch = {
        "table1": lambda: _print_table1(runner),
        "table2": lambda: _print_table2(runner),
        "table3": lambda: _print_table3(runner, not args.no_vgg),
        "encoding": lambda: _print_encoding(runner),
        "dataflow": lambda: _print_dataflow(runner),
        "figures": lambda: _print_figures(runner),
    }
    if args.experiment == "all":
        for name, fn in dispatch.items():
            print(f"\n===== {name} =====")
            fn()
    else:
        dispatch[args.experiment]()
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Command-line interface: regenerate any experiment from the terminal.

Usage::

    python -m repro table1            # accuracy & latency vs T
    python -m repro table2            # units sweep
    python -m repro table3 [--no-vgg] # cross-accelerator comparison
    python -m repro encoding          # radix vs rate ablation
    python -m repro dataflow          # memory-traffic ablation
    python -m repro figures           # Fig. 1 / Fig. 2 diagrams
    python -m repro sweep             # sharded accuracy sweep (fabric)
    python -m repro calibrate         # measure sparsity crossovers
    python -m repro serve             # async micro-batching server (TCP)
    python -m repro loadgen           # drive a server, report latency SLOs
    python -m repro worker            # TCP engine worker (join a fabric)
    python -m repro deployments       # inspect the deployment registry
    python -m repro rollout           # blue/green alias flip on a server
    python -m repro top               # live stats off a running server
    python -m repro all               # everything above (except daemons)

Models are trained on first use and cached under ``artifacts/``; set
``REPRO_FAST=1`` for a smoke-scale run.  ``--backend vectorized`` runs
the functional simulations on the batched tensor engine (bit-identical
results, orders of magnitude faster than the unit-level model).

``sweep`` scores LeNet T-configs hardware-in-the-loop over the full test
set, sharding (config × image-range) work units across the runtime
worker fabric.  ``--workers`` takes a process count (``--workers 4``) or
an explicit lane mix — ``--workers thread,host:7601,host:7602`` spans
one in-process lane plus two remote TCP engine workers (hosts running
``repro worker --listen host:port``).  ``--accept host:port`` opens the
run to ``repro worker --join`` hosts, which enter as lanes *mid-run*;
``--stream out.jsonl`` emits one JSON line per completed shard
(deployment, image range, cycles, running top-1) for live dashboards.
Results are bit-identical for any lane mix, ``--shard-size`` or lane
churn and are persisted in the artifact store.  ``--saturate`` sizes
shards from measured per-image/per-batch/dispatch costs instead of a
fixed ``--shard-size``, growing them until lanes spend their time
computing rather than dispatching.

``calibrate`` measures a deployment's sparse/dense crossover densities
(per-layer dense fallback, popcount gather, COO wire encoding, backend
routing point, fabric dispatch cost) from probe batches and persists the
:class:`~repro.core.engine.calibrate.CalibrationTable` in the artifact
store keyed by the model's content key.  Engines constructed afterwards
— including ``--backend auto``, which routes each batch to ``sparse`` or
``vectorized`` by observed density — pick the table up automatically;
``--force`` re-measures an existing table.

``worker`` turns this host into a TCP engine worker, two ways:
``--listen host:port`` accepts drivers (sweeps or serving pools on
other machines); ``--join host:port`` dials a driver that is accepting
joiners and serves over its own connection, retrying until the driver
appears.  Only use either on networks you trust — deployments arrive as
pickled payloads; ``--token SECRET`` adds a shared-secret handshake
that rejects unauthenticated payloads before anything is unpickled.

``serve`` starts the asyncio micro-batching inference server over TCP —
on the trained LeNet by default, or on several named deployments at
once: ``--model lenet:3 --model fang:4`` serves both from one engine
pool with per-deployment batching, metrics and admission limits
(requests route with a ``deployment`` field; ``repro deployments``
prints the registry).  ``--replicas N`` runs every request N times on
distinct fabric lanes and runtime-asserts the answers bit-identical
before replying (``--quorum Q`` tolerates ``N - Q`` replica failures
under lane churn).  ``rollout`` flips a serving alias between named
deployments on a *running* server over TCP — the atomic blue/green
step — e.g. ``repro rollout --port 7700 --alias prod --to lenet:4``.
``loadgen`` offers an open-loop request stream
(in-process by default, ``--port`` for a running server; ``--arrival
poisson --seed N`` makes the offered-load trace random yet exactly
reproducible), prints the latency/throughput report, persists it to the
artifact store, and — in-process — asserts every served prediction
against direct ``Accelerator.run_logits`` output.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time

import numpy as np

from repro.core import Accelerator, AcceleratorConfig, available_backends
from repro.errors import SimulationError
from repro.harness import (
    ExperimentRunner,
    Table,
    render_conv_unit,
    render_overview,
)
from repro.serve import (
    LoadGenerator,
    TcpClient,
    available_policies,
    start_tcp_server,
)

__all__ = ["main"]


def _print_table1(runner: ExperimentRunner) -> None:
    print(runner.run_table1()["table"].render())


def _print_table2(runner: ExperimentRunner) -> None:
    print(runner.run_table2()["table"].render())


def _print_table3(runner: ExperimentRunner, include_vgg: bool) -> None:
    print(runner.run_table3(include_vgg=include_vgg)["table"].render())


def _print_encoding(runner: ExperimentRunner) -> None:
    result = runner.run_encoding_ablation()
    print(result["table"].render())
    comparison = result["comparison"]
    print(f"\nradix reaches the target at T={comparison.radix_steps}, "
          f"rate at T={comparison.rate_steps}")
    if comparison.efficiency_gain is not None:
        print(f"efficiency gain: {comparison.efficiency_gain * 100:.0f}% "
              "(paper: ~40%)")


def _print_dataflow(runner: ExperimentRunner) -> None:
    print(runner.run_dataflow_ablation()["table"].render())


def _print_figures(runner: ExperimentRunner) -> None:
    snn, _ = runner.lenet_snn(3)
    accelerator = Accelerator(AcceleratorConfig())
    compiled = accelerator.deploy(snn, name="LeNet-5")
    print("Fig. 1 - accelerator overview\n")
    print(render_overview(accelerator.config, compiled))
    print("\nFig. 2 - convolution unit\n")
    print(render_conv_unit(accelerator.config, kernel_rows=5))


def _print_sweep(runner: ExperimentRunner, steps: tuple) -> None:
    result = runner.run_accuracy_sweep(steps=steps)
    print(result["table"].render())
    summary = result["summary"]
    if summary is None:
        print("\nall sweep cells already scored this session "
              "(in-memory cache)")
    elif summary.num_images:
        print(f"\n{summary.num_images} images through {summary.num_units} "
              f"work units on {summary.workers} worker(s) in "
              f"{summary.wall_s:.2f} s "
              f"({summary.images_per_second:.1f} images/s)")
        if summary.lanes_joined:
            print(f"{summary.lanes_joined} lane(s) joined mid-run; "
                  "merge bit-identical by the fabric contract "
                  "(runtime-asserted against the SNN reference)")
    else:
        print(f"\nall {summary.num_tasks} sweep cells served from the "
              "artifact store")


def _run_calibrate(runner: ExperimentRunner, args) -> None:
    spec = (args.models or [f"lenet:{_parse_steps(args.steps)[0]}"])[0]
    name, _, table, cached = runner.calibrate_model(
        spec, force=args.force, measure_dispatch=True)
    print(f"calibration for {name} "
          f"(content key {table.content_key[:12]})")
    for label in sorted(table.hook_crossovers):
        print(f"  {label:<24} dense fallback at "
              f"{table.hook_crossovers[label]:.3f} active")
    print(f"  {'popcount gather':<24} dense pass above "
          f"{table.popcount_gather:.3f} nonzero")
    print(f"  {'codec COO':<24} raw buffers above "
          f"{table.coo_ratio:.3f} of raw bytes")
    print(f"  {'backend routing':<24} auto picks sparse at <= "
          f"{table.backend_crossover:.3f} input density")
    if table.dispatch_cost_s is not None:
        print(f"  {'fabric dispatch':<24} "
              f"{table.dispatch_cost_s * 1e3:.3f} ms/unit")
    if cached:
        print("calibration table reused from the artifact store "
              "(cache hit); --force re-measures")
    else:
        print("calibration table measured and persisted "
              f"(artifact key calibration_{table.content_key[:12]}...)")


def _serve_images(runner, count: int, unique: int = None) -> np.ndarray:
    """``count`` request images: the MNIST test set, tiled as needed.

    ``unique`` caps the distinct images, so ``--unique 6 --requests 48``
    offers a duplicate-heavy trace (8 byte-identical submissions per
    image) that exercises the content-addressed result cache.
    """
    _, test = runner.mnist()
    pool = test.images if unique is None else test.images[:unique]
    reps = -(-count // len(pool))
    return np.tile(pool, (reps, 1, 1, 1))[:count]


def _serve_kwargs(args) -> dict:
    kwargs = {
        "policy": args.policy,
        "max_batch": args.max_batch,
        "max_wait_ms": args.max_wait_ms,
        "slo_ms": args.slo_ms,
        "queue_depth": args.queue_depth,
        "engines": args.engines,
        "token": args.token,
        "replicas": args.replicas,
        "quorum": args.quorum,
        "result_cache": args.result_cache,
    }
    if isinstance(args.workers, list):
        # An explicit lane mix extends serving onto the fabric too:
        # micro-batches fan out across the named workers.
        kwargs["workers"] = args.workers
    elif args.workers > 1:
        # A count keeps its fabric meaning everywhere: N process lanes
        # (overrides --engines; the pool takes one spec or the other).
        kwargs["workers"] = ["process"] * args.workers
    return kwargs


def _render_serve_report(
    metrics: dict, report=None,
    title: str = "Serving report - latency percentiles and throughput",
) -> Table:
    """One report table for both loadgen paths.

    ``metrics`` is a snapshot payload (``MetricsSnapshot.to_dict()``
    locally, or the same shape straight off the TCP wire), so the
    in-process and remote reports can never drift apart.
    """
    table = Table(title, ["metric", "value"])
    if report is not None:
        table.add_row("offered load (rps)", f"{report.offered_rps:.1f}")
        table.add_row("achieved (rps)", f"{report.achieved_rps:.1f}")
        table.add_row("requests ok/failed",
                      f"{report.completed}/{report.failed}")
        for name in ("p50", "p95", "p99"):
            table.add_row(f"client latency {name} (ms)",
                          f"{report.client_latency_ms[name]:.2f}")
    table.add_row("server throughput (rps)",
                  f"{metrics['throughput_rps']:.1f}")
    table.add_row("mean batch size", f"{metrics['mean_batch_size']:.2f}")
    for name in ("p50", "p95", "p99", "max"):
        table.add_row(f"server latency {name} (ms)",
                      f"{metrics['latency_ms'][name]:.2f}")
    table.add_row("queue wait p99 (ms)",
                  f"{metrics['queue_wait_ms']['p99']:.2f}")
    table.add_row("rejected (backpressure)", metrics["rejected"])
    return table


def _run_serve(runner: ExperimentRunner, args) -> None:
    if args.models:
        server, registry, accuracies = runner.build_multi_server(
            args.models, **_serve_kwargs(args))
        banner = [f"serving {len(registry)} deployment(s) from one pool:"]
        banner += [
            f"  {row['name']:<12} backend={row['backend']} "
            f"fp={row['fingerprint']} "
            f"hw-acc={accuracies[row['name']] * 100:.2f}%"
            for row in registry.describe()]
        banner.append('route requests with {"deployment": "<name>"}')
    else:
        t = _parse_steps(args.steps)[0]
        server, _, accuracy = runner.build_server(num_steps=t,
                                                  **_serve_kwargs(args))
        banner = [f"serving LeNet-5 T={t} "
                  f"(hardware accuracy {accuracy * 100:.2f}%)"]
    if args.replicas > 1:
        banner.append(
            f"replicated serving: {args.replicas} replicas per request "
            f"(quorum {args.quorum or args.replicas}), answers "
            "runtime-asserted bit-identical")

    metrics_server = None
    if args.metrics_port is not None:
        from repro.telemetry import configure
        from repro.telemetry.exposition import MetricsServer

        configure(tracing=True)  # the scrape plane implies tracing
        metrics_server = MetricsServer(
            host=args.host, port=args.metrics_port,
            snapshot_fn=lambda: server.snapshot().to_dict()).start()
        banner.append(f"telemetry: {metrics_server.url}/metrics "
                      "(Prometheus), /metrics.json, /traces; "
                      "tracing enabled")

    async def main() -> None:
        async with server:
            tcp, port = await start_tcp_server(server, args.host,
                                               args.port)
            print(f"{banner[0]} on {args.host}:{port}"
                  if len(banner) == 1 else
                  "\n".join(banner) + f"\nlistening on {args.host}:{port}")
            print(f"policy={args.policy} max_batch={args.max_batch} "
                  f"max_wait_ms={args.max_wait_ms} slo_ms={args.slo_ms}; "
                  "Ctrl-C to stop")
            try:
                await asyncio.Event().wait()
            finally:
                tcp.close()
                await tcp.wait_closed()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("\nserver stopped")
    finally:
        if metrics_server is not None:
            metrics_server.stop()


def _print_deployments(runner: ExperimentRunner, args) -> None:
    """The `repro deployments` command: list/inspect the registry."""
    models = args.models or ["lenet", "fang"]
    registry, accuracies = runner.build_registry(models)
    table = Table(
        "Deployment registry - named models over one worker fabric",
        ["name", "idx", "backend", "fingerprint", "input", "T",
         "layers", "hw acc %"])
    for row in registry.describe():
        table.add_row(
            row["name"], row["index"], row["backend"],
            row["fingerprint"],
            "x".join(str(d) for d in row["input_shape"]),
            row["num_steps"], row["layers"],
            f"{accuracies[row['name']] * 100:.2f}")
    print(table.render())
    print(f"\n{len(registry)} deployment(s), "
          f"{len(registry.table())} distinct model(s) "
          "(content-equal registrations share a warm engine slot)")


def _run_loadgen(runner: ExperimentRunner, args) -> None:
    if args.port:
        _run_loadgen_tcp(runner, args)
    else:
        _run_loadgen_inprocess(runner, args)


def _run_loadgen_inprocess(runner: ExperimentRunner, args) -> None:
    """Offer load to an in-process server and verify every prediction."""
    t = _parse_steps(args.steps)[0]
    server, snn, _ = runner.build_server(num_steps=t,
                                         **_serve_kwargs(args))
    images = _serve_images(runner, args.requests, unique=args.unique)

    async def main():
        async with server:
            report = await LoadGenerator(
                server.submit, rate_rps=args.rate,
                arrival=args.arrival, seed=args.seed,
                latency_out=args.latency_out).run(images)
            return report, server.snapshot()

    report, snapshot = asyncio.run(main())

    # Runtime contract: serving must predict exactly what a direct
    # batched Accelerator run predicts for the same images.
    accelerator = Accelerator(
        AcceleratorConfig.for_network(snn.network),
        backend=runner.score_backend, warm=True)
    accelerator.deploy(snn, name=f"LeNet-5 T={t}")
    direct_logits, _ = accelerator.run_logits(images)
    served = [r.prediction if r is not None else -1
              for r in report.results]
    if report.failed or not np.array_equal(
            served, direct_logits.argmax(axis=1)):
        raise SimulationError(
            f"served predictions diverge from Accelerator.run_logits "
            f"({report.failed} failed of {report.num_requests})")
    print(_render_serve_report(snapshot.to_dict(), report).render())
    print(f"\nall {report.num_requests} served predictions match "
          "direct Accelerator.run_logits output")
    if args.result_cache and snapshot.completed:
        print(f"result cache: {snapshot.cached} of "
              f"{snapshot.completed} requests answered from cache "
              f"({100.0 * snapshot.cached / snapshot.completed:.0f}% "
              "hit rate)")
    payload = runner.save_serve_metrics(
        f"loadgen_{args.policy}", snapshot,
        extra={"load": report.to_dict(), "num_steps": t})
    print(f"p99 latency {payload['snapshot']['latency_ms']['p99']:.2f} ms "
          f"at {report.offered_rps:.0f} rps offered "
          f"(slo_ms={args.slo_ms})")


def _run_loadgen_tcp(runner: ExperimentRunner, args) -> None:
    """Offer load over TCP to an already-running ``repro serve``."""
    images = _serve_images(runner, args.requests, unique=args.unique)

    async def main():
        async with TcpClient(args.host, args.port) as client:
            report = await LoadGenerator(
                client.infer, rate_rps=args.rate,
                arrival=args.arrival, seed=args.seed,
                deployment=args.deployment,
                latency_out=args.latency_out).run(images)
            metrics = await client.metrics(deployment=args.deployment)
            return report, metrics

    report, metrics = asyncio.run(main())
    target = args.deployment or "default deployment"
    print(_render_serve_report(
        metrics, report,
        title=f"Load report - {args.host}:{args.port} ({target})"
    ).render())
    if args.latency_out:
        print(f"per-request latency records appended to "
              f"{args.latency_out}")


def _run_top(args) -> None:
    """The `repro top` command: live stats off a running server."""
    from repro.telemetry.top import run_top

    if not args.port:
        raise SystemExit("top needs --port (a running repro serve)")
    run_top(args.host, args.port, interval_s=args.interval,
            once=args.once, deployment=args.deployment)


def _positive_int(raw: str) -> int:
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {raw!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _parse_workers(raw: str):
    """``--workers``: a count (historical) or a fabric lane mix.

    ``4`` means four local process lanes; anything else is parsed as
    comma-separated lane specs (``thread``, ``process``, ``process:4``,
    ``host:port``) and validated against the fabric's grammar.
    """
    from repro.errors import ConfigurationError
    from repro.runtime import normalize_worker_specs

    raw = raw.strip()
    if raw.lstrip("+-").isdigit():
        return _positive_int(raw)
    specs = [token.strip() for token in raw.split(",") if token.strip()]
    try:
        normalize_worker_specs(specs)
    except ConfigurationError as error:
        raise argparse.ArgumentTypeError(str(error)) from None
    return specs


def _parse_listen(raw: str) -> tuple[str, int]:
    host, _, port = raw.rpartition(":")
    try:
        return (host or "127.0.0.1"), int(port)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {raw!r}") from None


def _run_rollout(args) -> None:
    """The `repro rollout` command: blue/green alias flip over TCP."""
    if not args.port:
        raise SystemExit("rollout needs --port (a running repro serve)")
    if not args.alias or not args.to:
        raise SystemExit("rollout needs --alias NAME and --to NAME")

    async def main() -> dict:
        async with TcpClient(args.host, args.port) as client:
            return await client.rollout(args.alias, args.to,
                                        drain=not args.no_drain)

    outcome = asyncio.run(main())
    previous = outcome.get("from") or "(new alias)"
    print(f"alias {outcome['alias']!r}: {previous} -> {outcome['to']!r} "
          f"(atomic flip; old lane "
          f"{'drained' if outcome.get('drained') else 'not drained'})")


def _run_worker(args) -> None:
    """Join the fabric: serve deploy/execute requests until Ctrl-C."""
    import threading

    from repro.runtime import WorkerServer, join_fabric

    window = args.window if args.window is not None else 8
    if args.join is not None:
        host, port = args.join
        print(f"joining fabric at {host}:{port} "
              f"({'token-authenticated' if args.token else 'no token'}; "
              "trusted networks only); retrying until the driver "
              "accepts; Ctrl-C to stop")
        # Run the join loop on a thread so Ctrl-C lands here and a
        # stop_event exit hands the JoinStats back for the sign-off
        # line (an exception would lose them).
        stop = threading.Event()
        stats_box: list = []
        daemon = threading.Thread(
            target=lambda: stats_box.append(join_fabric(
                host, port, token=args.token, retry_s=args.retry_s,
                frames=args.frames, stop_event=stop, window=window)),
            name="repro-join", daemon=True)
        daemon.start()
        try:
            while daemon.is_alive():
                daemon.join(timeout=0.5)
        except KeyboardInterrupt:
            stop.set()
            daemon.join(timeout=10.0)
        if stats_box:
            stats = stats_box[0]
            print(f"\nworker stopped: {stats.attempts} dial attempt(s), "
                  f"{stats.connects} serve session(s), "
                  f"{stats.disconnects} disconnect(s)")
        else:
            print("\nworker stopped")
        return

    host, port = args.listen
    server = WorkerServer(host, port, token=args.token,
                          frames=args.frames, window=window).start()
    print(f"engine worker listening on {server.host}:{server.port} "
          f"({'token-authenticated' if args.token else 'no token'}; "
          "trusted networks only); Ctrl-C to stop")
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("\nworker stopped")
    finally:
        server.close()


def _parse_steps(raw: str) -> tuple:
    try:
        steps = tuple(int(part) for part in raw.split(",") if part.strip())
    except ValueError:
        raise SystemExit(f"--steps must be comma-separated ints: {raw!r}")
    if not steps:
        raise SystemExit("--steps selected no spike-train lengths")
    if any(t < 1 for t in steps):
        raise SystemExit(
            f"--steps must be positive spike-train lengths: {raw!r}")
    return steps


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument(
        "experiment",
        choices=["table1", "table2", "table3", "encoding", "dataflow",
                 "figures", "sweep", "calibrate", "serve", "loadgen",
                 "worker", "deployments", "rollout", "top", "all"],
        help="which experiment to run")
    parser.add_argument("--no-vgg", action="store_true",
                        help="skip the VGG-11 row of table3")
    parser.add_argument("--model", action="append", dest="models",
                        metavar="NAME[:T]", default=None,
                        help="serve/deployments: a named deployment "
                             "(lenet[:T], fang[:T]); repeat for "
                             "multi-model serving from one pool")
    parser.add_argument("--token", default=None, metavar="SECRET",
                        help="fabric shared secret: workers started "
                             "with --token reject unauthenticated "
                             "payloads; drivers attach it to remote "
                             "lanes and join handshakes")
    parser.add_argument("--backend", choices=available_backends(),
                        default=None,
                        help="execution engine (default: reference for "
                             "trace-level sims, vectorized for accuracy "
                             "scoring and sweeps)")
    parser.add_argument("--workers", type=_parse_workers, default=1,
                        metavar="N|SPEC,...",
                        help="fabric lanes for sweeps/serving: a process "
                             "count, or comma-separated specs mixing "
                             "'thread', 'process', 'process:4' and "
                             "remote 'host:port' TCP workers "
                             "(default: 1)")
    parser.add_argument("--listen", type=_parse_listen,
                        default=("127.0.0.1", 7601), metavar="HOST:PORT",
                        help="worker: bind address for the TCP engine "
                             "worker (default: 127.0.0.1:7601)")
    parser.add_argument("--join", type=_parse_listen, default=None,
                        metavar="HOST:PORT",
                        help="worker: dial a driver accepting joiners "
                             "(sweep --accept) and serve over the "
                             "connection, retrying until it appears")
    parser.add_argument("--retry-s", dest="retry_s", type=float,
                        default=1.0, metavar="S",
                        help="worker --join: reconnect period "
                             "(default: 1.0)")
    parser.add_argument("--frames", choices=["binary", "json"],
                        default="binary",
                        help="worker: wire framing — 'binary' "
                             "negotiates zero-copy array frames with "
                             "capable peers, 'json' pins the v1 "
                             "JSON-lines protocol (default: binary)")
    parser.add_argument("--accept", type=_parse_listen, default=None,
                        metavar="HOST:PORT",
                        help="sweep: accept `repro worker --join` hosts "
                             "as lanes for the duration of the run")
    parser.add_argument("--stream", default=None, metavar="PATH",
                        help="sweep: append one JSON line per completed "
                             "shard (deployment, range, cycles, top-1 "
                             "so far) to PATH for live dashboards")
    parser.add_argument("--shard-size", type=_positive_int, default=64,
                        metavar="M",
                        help="images per sweep work unit (default: 64)")
    parser.add_argument("--saturate", action="store_true",
                        help="sweep: size shards from measured "
                             "per-image, per-batch and calibrated "
                             "dispatch costs, growing them until lanes "
                             "saturate (overrides --shard-size)")
    parser.add_argument("--window", type=_positive_int, default=None,
                        metavar="W",
                        help="sweep: in-flight dispatch chunks per "
                             "pipelined lane (default: credit-based "
                             "from calibrated dispatch cost vs. "
                             "measured service time; 1 forces "
                             "stop-and-wait); worker: cap advertised "
                             "to dispatchers (default: 8)")
    parser.add_argument("--force", action="store_true",
                        help="calibrate: re-measure even when a table "
                             "for this deployment already exists")
    parser.add_argument("--steps", default="3,4", metavar="T,T,...",
                        help="spike-train lengths for the sweep command "
                             "(default: 3,4; serve/loadgen deploy the "
                             "first)")
    serving = parser.add_argument_group(
        "serving options (serve / loadgen)")
    serving.add_argument("--host", default="127.0.0.1",
                         help="bind/connect address (default: 127.0.0.1)")
    serving.add_argument("--port", type=int, default=0, metavar="P",
                         help="serve: TCP port (default: ephemeral); "
                              "loadgen: target a running server instead "
                              "of the in-process one")
    serving.add_argument("--policy", choices=available_policies(),
                         default="greedy",
                         help="micro-batch flush policy (default: greedy)")
    serving.add_argument("--max-batch", type=_positive_int, default=32,
                         metavar="B",
                         help="micro-batch size cap (default: 32)")
    serving.add_argument("--max-wait-ms", type=float, default=2.0,
                         metavar="MS",
                         help="greedy policy: max coalescing wait "
                              "(default: 2.0)")
    serving.add_argument("--slo-ms", type=float, default=50.0,
                         metavar="MS",
                         help="deadline policy: p99 latency target "
                              "(default: 50.0)")
    serving.add_argument("--queue-depth", type=_positive_int,
                         default=1024, metavar="N",
                         help="bounded request queue (default: 1024)")
    serving.add_argument("--engines", type=_positive_int, default=1,
                         metavar="N",
                         help="warm thread-lane engines in the serving "
                              "pool (default: 1; --workers overrides "
                              "with explicit fabric lanes)")
    serving.add_argument("--replicas", type=_positive_int, default=1,
                         metavar="N",
                         help="serve: execute every request N times on "
                              "distinct lanes and runtime-assert the "
                              "answers bit-identical (default: 1)")
    serving.add_argument("--quorum", type=_positive_int, default=None,
                         metavar="Q",
                         help="serve --replicas: how many replicas must "
                              "answer; tolerates N-Q replica failures "
                              "(default: all N)")
    serving.add_argument("--result-cache", dest="result_cache",
                         type=int, default=128, metavar="N",
                         help="serve/loadgen: content-addressed result "
                              "cache capacity — byte-identical images "
                              "answer from an LRU at admission instead "
                              "of executing again (default: 128; 0 "
                              "disables)")
    serving.add_argument("--alias", default=None, metavar="NAME",
                         help="rollout: the serving alias to flip")
    serving.add_argument("--to", dest="to", default=None, metavar="NAME",
                         help="rollout: the deployment the alias should "
                              "point at (must already be serving)")
    serving.add_argument("--no-drain", action="store_true",
                         help="rollout: return right after the atomic "
                              "flip instead of waiting for the old "
                              "lane's queue to empty")
    serving.add_argument("--requests", type=_positive_int, default=256,
                         metavar="N",
                         help="loadgen: requests to offer (default: 256)")
    serving.add_argument("--unique", type=_positive_int, default=None,
                         metavar="N",
                         help="loadgen: cap distinct request images — "
                              "the trace tiles N images across "
                              "--requests submissions, so duplicates "
                              "exercise the result cache (default: all "
                              "distinct)")
    serving.add_argument("--rate", type=float, default=500.0,
                         metavar="RPS",
                         help="loadgen: offered load in requests/s "
                              "(default: 500)")
    serving.add_argument("--arrival", choices=["even", "poisson"],
                         default="even",
                         help="loadgen: arrival discipline — evenly "
                              "spaced, or seeded-Poisson gaps "
                              "(default: even)")
    serving.add_argument("--seed", type=int, default=0, metavar="N",
                         help="loadgen: RNG seed for --arrival poisson; "
                              "the same seed reproduces the identical "
                              "offered-load trace (default: 0)")
    serving.add_argument("--deployment", default=None, metavar="NAME",
                         help="loadgen over TCP: route every request to "
                              "this named deployment of a multi-model "
                              "server")
    serving.add_argument("--metrics-port", dest="metrics_port",
                         type=int, default=None, metavar="P",
                         help="serve: expose Prometheus /metrics, "
                              "/metrics.json and /traces over HTTP on "
                              "this port (0 = ephemeral) and enable "
                              "request tracing")
    serving.add_argument("--latency-out", dest="latency_out",
                         default=None, metavar="PATH",
                         help="loadgen: append one JSON line per "
                              "request (index, latency_ms, deployment, "
                              "trace_id) to PATH")
    serving.add_argument("--once", action="store_true",
                         help="top: print a single frame and exit "
                              "(scripting / CI smoke)")
    serving.add_argument("--interval", type=float, default=2.0,
                         metavar="S",
                         help="top: refresh period in seconds "
                              "(default: 2.0)")
    args = parser.parse_args(argv)

    # --backend drives the trace-level sims; accuracy scoring stays on
    # the vectorized engine (full test sets are intractable on the
    # reference model) — except for the fabric commands (sweep, serve,
    # loadgen), where the flag explicitly names the lane engine: every
    # backend is bit-identical, so `--backend sparse` or `--backend
    # auto` only changes speed, never a score or a served prediction.
    score_backend = "vectorized"
    if args.backend and args.experiment in ("sweep", "serve", "loadgen"):
        score_backend = args.backend
    stream_fh = None
    sweep_stream = None
    if args.experiment == "sweep" and args.stream:
        import json

        stream_fh = open(args.stream, "w", encoding="utf-8")

        def sweep_stream(record: dict) -> None:
            stream_fh.write(json.dumps(record) + "\n")
            stream_fh.flush()  # a dashboard tails this file live

    runner = ExperimentRunner(
        backend=args.backend or "reference",
        score_backend=score_backend,
        sweep_workers=args.workers,
        sweep_shard_size=args.shard_size,
        sweep_saturate=args.saturate,
        sweep_stream=sweep_stream,
        sweep_accept=args.accept,
        sweep_window=args.window,
        fabric_token=args.token,
    )
    if args.accept is not None and args.experiment == "sweep":
        print(f"sweep accepting `repro worker --join "
              f"{args.accept[0]}:{args.accept[1]}` hosts mid-run")
    dispatch = {
        "table1": lambda: _print_table1(runner),
        "table2": lambda: _print_table2(runner),
        "table3": lambda: _print_table3(runner, not args.no_vgg),
        "encoding": lambda: _print_encoding(runner),
        "dataflow": lambda: _print_dataflow(runner),
        "figures": lambda: _print_figures(runner),
        "sweep": lambda: _print_sweep(runner, _parse_steps(args.steps)),
        "calibrate": lambda: _run_calibrate(runner, args),
        "serve": lambda: _run_serve(runner, args),
        "loadgen": lambda: _run_loadgen(runner, args),
        "worker": lambda: _run_worker(args),
        "deployments": lambda: _print_deployments(runner, args),
        "rollout": lambda: _run_rollout(args),
        "top": lambda: _run_top(args),
    }
    try:
        if args.experiment == "all":
            for name, fn in dispatch.items():
                if name in ("sweep", "calibrate", "serve", "loadgen",
                            "worker", "deployments", "rollout", "top"):
                    continue  # sweep covered by table1; deployments
                    # re-trains serving models; the rest are daemons
                print(f"\n===== {name} =====")
                fn()
        else:
            dispatch[args.experiment]()
    finally:
        if stream_fh is not None:
            stream_fh.close()
            print(f"per-shard stream written to {args.stream}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

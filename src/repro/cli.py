"""Command-line interface: regenerate any experiment from the terminal.

Usage::

    python -m repro table1            # accuracy & latency vs T
    python -m repro table2            # units sweep
    python -m repro table3 [--no-vgg] # cross-accelerator comparison
    python -m repro encoding          # radix vs rate ablation
    python -m repro dataflow          # memory-traffic ablation
    python -m repro figures           # Fig. 1 / Fig. 2 diagrams
    python -m repro sweep             # sharded multi-process accuracy sweep
    python -m repro all               # everything above (except sweep)

Models are trained on first use and cached under ``artifacts/``; set
``REPRO_FAST=1`` for a smoke-scale run.  ``--backend vectorized`` runs
the functional simulations on the batched tensor engine (bit-identical
results, orders of magnitude faster than the unit-level model).

``sweep`` scores LeNet T-configs hardware-in-the-loop over the full test
set, sharding (config × image-range) work units across ``--workers``
processes; results are bit-identical for any worker count or
``--shard-size`` and are persisted in the artifact store.
"""

from __future__ import annotations

import argparse
import sys

from repro.core import Accelerator, AcceleratorConfig, available_backends
from repro.harness import (
    ExperimentRunner,
    render_conv_unit,
    render_overview,
)

__all__ = ["main"]


def _print_table1(runner: ExperimentRunner) -> None:
    print(runner.run_table1()["table"].render())


def _print_table2(runner: ExperimentRunner) -> None:
    print(runner.run_table2()["table"].render())


def _print_table3(runner: ExperimentRunner, include_vgg: bool) -> None:
    print(runner.run_table3(include_vgg=include_vgg)["table"].render())


def _print_encoding(runner: ExperimentRunner) -> None:
    result = runner.run_encoding_ablation()
    print(result["table"].render())
    comparison = result["comparison"]
    print(f"\nradix reaches the target at T={comparison.radix_steps}, "
          f"rate at T={comparison.rate_steps}")
    if comparison.efficiency_gain is not None:
        print(f"efficiency gain: {comparison.efficiency_gain * 100:.0f}% "
              "(paper: ~40%)")


def _print_dataflow(runner: ExperimentRunner) -> None:
    print(runner.run_dataflow_ablation()["table"].render())


def _print_figures(runner: ExperimentRunner) -> None:
    snn, _ = runner.lenet_snn(3)
    accelerator = Accelerator(AcceleratorConfig())
    compiled = accelerator.deploy(snn, name="LeNet-5")
    print("Fig. 1 - accelerator overview\n")
    print(render_overview(accelerator.config, compiled))
    print("\nFig. 2 - convolution unit\n")
    print(render_conv_unit(accelerator.config, kernel_rows=5))


def _print_sweep(runner: ExperimentRunner, steps: tuple) -> None:
    result = runner.run_accuracy_sweep(steps=steps)
    print(result["table"].render())
    summary = result["summary"]
    if summary is None:
        print("\nall sweep cells already scored this session "
              "(in-memory cache)")
    elif summary.num_images:
        print(f"\n{summary.num_images} images through {summary.num_units} "
              f"work units on {summary.workers} worker(s) in "
              f"{summary.wall_s:.2f} s "
              f"({summary.images_per_second:.1f} images/s)")
    else:
        print(f"\nall {summary.num_tasks} sweep cells served from the "
              "artifact store")


def _positive_int(raw: str) -> int:
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {raw!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _parse_steps(raw: str) -> tuple:
    try:
        steps = tuple(int(part) for part in raw.split(",") if part.strip())
    except ValueError:
        raise SystemExit(f"--steps must be comma-separated ints: {raw!r}")
    if not steps:
        raise SystemExit("--steps selected no spike-train lengths")
    if any(t < 1 for t in steps):
        raise SystemExit(
            f"--steps must be positive spike-train lengths: {raw!r}")
    return steps


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument(
        "experiment",
        choices=["table1", "table2", "table3", "encoding", "dataflow",
                 "figures", "sweep", "all"],
        help="which experiment to run")
    parser.add_argument("--no-vgg", action="store_true",
                        help="skip the VGG-11 row of table3")
    parser.add_argument("--backend", choices=available_backends(),
                        default=None,
                        help="execution engine (default: reference for "
                             "trace-level sims, vectorized for accuracy "
                             "scoring and sweeps)")
    parser.add_argument("--workers", type=_positive_int, default=1,
                        metavar="N",
                        help="worker processes for sharded sweeps "
                             "(default: 1)")
    parser.add_argument("--shard-size", type=_positive_int, default=64,
                        metavar="M",
                        help="images per sweep work unit (default: 64)")
    parser.add_argument("--steps", default="3,4", metavar="T,T,...",
                        help="spike-train lengths for the sweep command "
                             "(default: 3,4)")
    args = parser.parse_args(argv)

    # --backend drives the trace-level sims; accuracy scoring stays on
    # the vectorized engine (full test sets are intractable on the
    # reference model) — except for the sweep command itself, where the
    # flag explicitly names the engine the sweep runs.
    score_backend = "vectorized"
    if args.experiment == "sweep" and args.backend:
        score_backend = args.backend
    runner = ExperimentRunner(
        backend=args.backend or "reference",
        score_backend=score_backend,
        sweep_workers=args.workers,
        sweep_shard_size=args.shard_size,
    )
    dispatch = {
        "table1": lambda: _print_table1(runner),
        "table2": lambda: _print_table2(runner),
        "table3": lambda: _print_table3(runner, not args.no_vgg),
        "encoding": lambda: _print_encoding(runner),
        "dataflow": lambda: _print_dataflow(runner),
        "figures": lambda: _print_figures(runner),
        "sweep": lambda: _print_sweep(runner, _parse_steps(args.steps)),
    }
    if args.experiment == "all":
        for name, fn in dispatch.items():
            if name == "sweep":
                continue  # covered by table1/encoding scoring
            print(f"\n===== {name} =====")
            fn()
    else:
        dispatch[args.experiment]()
    return 0


if __name__ == "__main__":
    sys.exit(main())

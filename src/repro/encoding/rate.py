"""Rate (frequency) encoding — the traditional scheme radix encoding replaces.

Rate encoding represents a real activation by the *number* of spikes in the
train; spike order carries no information.  It is implemented here as the
baseline for the paper's Section IV-B claim: radix encoding reaches peak
accuracy with T≈6 steps where rate-coded designs (e.g. Fang et al. [11])
need ≈10, a ~40% efficiency gap.

Two encoders are provided:

* :class:`DeterministicRateEncoder` — emits ``round(a * T)`` evenly spaced
  spikes.  This is the low-variance encoder used for accuracy sweeps.
* :class:`PoissonRateEncoder` — classic Bernoulli-per-step encoding with
  spike probability ``a``; stochastic, needs a seed.
"""

from __future__ import annotations

import numpy as np

from repro.encoding.spike_train import SpikeTrain
from repro.errors import EncodingError

__all__ = ["DeterministicRateEncoder", "PoissonRateEncoder", "decode_rate"]


def _validate(values: np.ndarray) -> np.ndarray:
    values = np.asarray(values, dtype=np.float64)
    return np.clip(values, 0.0, 1.0)


class DeterministicRateEncoder:
    """Emit ``round(a * T)`` spikes, spread as evenly as possible.

    The spike for count ``k`` (1-based) of ``n`` is placed at step
    ``floor((k - 0.5) * T / n)``, which distributes spikes uniformly and is
    deterministic, so accuracy sweeps are reproducible.
    """

    def __init__(self, num_steps: int) -> None:
        if num_steps < 1:
            raise EncodingError("rate encoder needs at least one time step")
        self.num_steps = int(num_steps)

    def encode(self, values: np.ndarray) -> SpikeTrain:
        values = _validate(values)
        counts = np.rint(values * self.num_steps).astype(np.int64)
        flat = counts.reshape(-1)
        bits = np.zeros((self.num_steps, flat.size), dtype=np.uint8)
        for idx, n in enumerate(flat):
            if n <= 0:
                continue
            ks = np.arange(1, n + 1, dtype=np.float64)
            steps = np.floor((ks - 0.5) * self.num_steps / n).astype(np.int64)
            bits[np.minimum(steps, self.num_steps - 1), idx] = 1
        return SpikeTrain(bits.reshape((self.num_steps,) + counts.shape))


class PoissonRateEncoder:
    """Bernoulli-per-step encoding with spike probability equal to the value."""

    def __init__(self, num_steps: int, seed: int = 0) -> None:
        if num_steps < 1:
            raise EncodingError("rate encoder needs at least one time step")
        self.num_steps = int(num_steps)
        self._rng = np.random.default_rng(seed)

    def encode(self, values: np.ndarray) -> SpikeTrain:
        values = _validate(values)
        draws = self._rng.random((self.num_steps,) + values.shape)
        return SpikeTrain((draws < values).astype(np.uint8))


def decode_rate(train: SpikeTrain) -> np.ndarray:
    """Decode a rate-coded train to reals: spike count divided by length."""
    return train.bits.astype(np.float64).sum(axis=0) / train.num_steps

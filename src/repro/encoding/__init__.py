"""Neural encoding schemes: radix (the paper's emerging encoding) and rate.

The radix functions are the reference semantics that the SNN simulator and
the hardware model must reproduce bit-exactly.
"""

from repro.encoding.quantize import (
    ActivationCalibrator,
    QuantizedWeights,
    quantize_weights,
    weight_int_range,
)
from repro.encoding.radix import (
    decode_ints,
    decode_real,
    encode_ints,
    encode_real,
    max_int,
    quantize_real,
    step_weight,
)
from repro.encoding.rate import (
    DeterministicRateEncoder,
    PoissonRateEncoder,
    decode_rate,
)
from repro.encoding.spike_train import SpikeTrain

__all__ = [
    "ActivationCalibrator",
    "DeterministicRateEncoder",
    "PoissonRateEncoder",
    "QuantizedWeights",
    "SpikeTrain",
    "decode_ints",
    "decode_rate",
    "decode_real",
    "encode_ints",
    "encode_real",
    "max_int",
    "quantize_real",
    "quantize_weights",
    "step_weight",
    "weight_int_range",
]

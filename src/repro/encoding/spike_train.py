"""Spike-train container shared by encoders, the SNN simulator and the
hardware model.

A spike train is a binary tensor with a leading time axis: ``bits[t]`` holds
the spikes emitted at time step ``t`` for every element of the encoded
tensor.  Time step 0 is the *first* step transmitted; under radix encoding it
carries the most significant bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EncodingError, ShapeError

__all__ = ["SpikeTrain"]


@dataclass(frozen=True)
class SpikeTrain:
    """An immutable binary spike train.

    Attributes
    ----------
    bits:
        ``uint8`` array of shape ``(T, *payload_shape)`` containing only
        0/1 values.  ``bits[t]`` is the spike plane for time step ``t``.
    """

    bits: np.ndarray

    def __post_init__(self) -> None:
        bits = np.asarray(self.bits)
        if bits.ndim < 2:
            raise ShapeError(
                "spike train needs a time axis plus at least one payload "
                f"axis, got shape {bits.shape}"
            )
        if bits.dtype != np.uint8:
            bits = bits.astype(np.uint8)
        if bits.size and int(bits.max(initial=0)) > 1:
            raise EncodingError("spike train bits must be 0 or 1")
        object.__setattr__(self, "bits", bits)

    @property
    def num_steps(self) -> int:
        """Length ``T`` of the spike train."""
        return int(self.bits.shape[0])

    @property
    def payload_shape(self) -> tuple[int, ...]:
        """Shape of the encoded tensor (time axis removed)."""
        return tuple(self.bits.shape[1:])

    @property
    def num_spikes(self) -> int:
        """Total number of spikes across all time steps."""
        return int(self.bits.sum())

    def spike_rate(self) -> float:
        """Fraction of (element, step) slots that carry a spike."""
        if self.bits.size == 0:
            return 0.0
        return float(self.bits.mean())

    def step(self, t: int) -> np.ndarray:
        """Return the spike plane for time step ``t``."""
        if not 0 <= t < self.num_steps:
            raise EncodingError(
                f"time step {t} out of range for train of length "
                f"{self.num_steps}"
            )
        return self.bits[t]

    def __iter__(self):
        return iter(self.bits)

    def __len__(self) -> int:
        return self.num_steps

    def concatenate_channels(self, other: "SpikeTrain") -> "SpikeTrain":
        """Concatenate two trains along the first payload axis.

        Both trains must have the same length and agree on the remaining
        payload axes.  Used to merge feature maps produced by different
        processing units.
        """
        if self.num_steps != other.num_steps:
            raise ShapeError(
                "cannot concatenate spike trains of different lengths "
                f"({self.num_steps} vs {other.num_steps})"
            )
        if self.payload_shape[1:] != other.payload_shape[1:]:
            raise ShapeError(
                "payload shapes beyond the channel axis must match, got "
                f"{self.payload_shape} vs {other.payload_shape}"
            )
        return SpikeTrain(np.concatenate([self.bits, other.bits], axis=1))

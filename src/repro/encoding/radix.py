"""Radix (binary, MSB-first) neural encoding.

This is the *emerging neural encoding* the accelerator is built around
(Wang et al., arXiv:2105.06943).  A real activation ``a`` in ``[0, 1)`` is
quantized to a ``T``-bit integer

    ``q = clip(floor(a * 2**T), 0, 2**T - 1)``

and transmitted as a spike train of length ``T`` whose step ``t`` carries bit
``T - 1 - t`` of ``q`` — i.e. the most significant bit first.  A downstream
neuron reconstructs the weighted sum exactly by left-shifting its
accumulator between time steps (see ``repro.core.output_logic``), which is
why the spike *order* matters and rate-coding hardware cannot run these
models.

The functions here are the single source of truth for the encoding; the SNN
simulator and the hardware model are tested bit-exactly against them.
"""

from __future__ import annotations

import numpy as np

from repro.encoding.spike_train import SpikeTrain
from repro.errors import EncodingError

__all__ = [
    "encode_ints",
    "decode_ints",
    "encode_real",
    "decode_real",
    "quantize_real",
    "step_weight",
    "max_int",
]


def _check_num_steps(num_steps: int) -> None:
    if not isinstance(num_steps, (int, np.integer)) or num_steps < 1:
        raise EncodingError(
            f"spike train length must be a positive integer, got {num_steps!r}"
        )
    if num_steps > 30:
        raise EncodingError(
            f"spike train length {num_steps} exceeds the supported maximum "
            "of 30 (accumulators are modelled as int64)"
        )


def max_int(num_steps: int) -> int:
    """Largest integer representable by a radix train of length ``num_steps``."""
    _check_num_steps(num_steps)
    return (1 << num_steps) - 1


def step_weight(t: int, num_steps: int) -> int:
    """Weight ``2**(T-1-t)`` of a spike at time step ``t``."""
    _check_num_steps(num_steps)
    if not 0 <= t < num_steps:
        raise EncodingError(f"time step {t} out of range for T={num_steps}")
    return 1 << (num_steps - 1 - t)


def encode_ints(values: np.ndarray, num_steps: int) -> SpikeTrain:
    """Encode non-negative integers into an MSB-first radix spike train.

    Parameters
    ----------
    values:
        Integer array; every element must lie in ``[0, 2**num_steps)``.
    num_steps:
        Spike train length ``T``.
    """
    _check_num_steps(num_steps)
    values = np.asarray(values)
    if values.ndim == 0:
        values = values.reshape(1)
    if not np.issubdtype(values.dtype, np.integer):
        raise EncodingError(
            f"encode_ints expects integer input, got dtype {values.dtype}"
        )
    top = max_int(num_steps)
    if values.size and (int(values.min()) < 0 or int(values.max()) > top):
        raise EncodingError(
            f"values must lie in [0, {top}] for a train of length {num_steps}"
        )
    shifts = np.arange(num_steps - 1, -1, -1, dtype=np.int64)
    planes = (values[np.newaxis, ...].astype(np.int64)
              >> shifts.reshape((-1,) + (1,) * values.ndim)) & 1
    return SpikeTrain(planes.astype(np.uint8))


def decode_ints(train: SpikeTrain) -> np.ndarray:
    """Invert :func:`encode_ints`; returns the integer tensor."""
    num_steps = train.num_steps
    _check_num_steps(num_steps)
    weights = np.array(
        [step_weight(t, num_steps) for t in range(num_steps)], dtype=np.int64
    )
    shaped = weights.reshape((-1,) + (1,) * (train.bits.ndim - 1))
    return (train.bits.astype(np.int64) * shaped).sum(axis=0)


def quantize_real(values: np.ndarray, num_steps: int) -> np.ndarray:
    """Quantize reals in ``[0, 1)`` to the ``T``-bit grid used by the encoder.

    Values outside ``[0, 1)`` are clipped — this mirrors the saturating
    behaviour of the hardware requantization stage.
    """
    _check_num_steps(num_steps)
    values = np.asarray(values, dtype=np.float64)
    scaled = np.floor(values * (1 << num_steps))
    return np.clip(scaled, 0, max_int(num_steps)).astype(np.int64)


def encode_real(values: np.ndarray, num_steps: int) -> SpikeTrain:
    """Quantize reals in ``[0, 1)`` and radix-encode them in one step."""
    return encode_ints(quantize_real(values, num_steps), num_steps)


def decode_real(train: SpikeTrain) -> np.ndarray:
    """Decode a radix train back to reals on the ``T``-bit grid in ``[0, 1)``."""
    return decode_ints(train).astype(np.float64) / (1 << train.num_steps)

"""Quantization primitives used by the ANN-to-SNN conversion.

The accelerator stores network parameters at very low resolution (3 bits in
the paper's experiments) and activations as ``T``-bit radix spike trains.
This module provides:

* :func:`quantize_weights` — symmetric signed quantization with per-output-
  channel scales (scales fold into the requantization stage, so per-channel
  granularity is free in hardware).
* :class:`ActivationCalibrator` — collects activation statistics on a
  calibration set and produces the per-layer normalization scale ``λ``
  (a high percentile of the observed activations, the standard
  threshold-balancing recipe for ANN-to-SNN conversion).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QuantizationError

__all__ = [
    "QuantizedWeights",
    "quantize_weights",
    "weight_int_range",
    "ActivationCalibrator",
]


def weight_int_range(num_bits: int) -> tuple[int, int]:
    """Symmetric integer range for ``num_bits``-bit signed weights.

    3 bits gives ``[-3, 3]``: symmetric ranges avoid a bias toward negative
    values and keep the zero point exactly at integer 0.
    """
    if num_bits < 2:
        raise QuantizationError(
            f"weights need at least 2 bits (sign + magnitude), got {num_bits}"
        )
    top = (1 << (num_bits - 1)) - 1
    return -top, top


@dataclass(frozen=True)
class QuantizedWeights:
    """Integer weights plus the per-output-channel scales that undo them.

    ``values`` has the original weight shape with ``int64`` entries;
    ``scales`` has one entry per output channel (axis 0) such that
    ``values * scales`` approximates the original real weights.
    """

    values: np.ndarray
    scales: np.ndarray
    num_bits: int

    @property
    def num_output_channels(self) -> int:
        return int(self.values.shape[0])

    def dequantize(self) -> np.ndarray:
        shape = (-1,) + (1,) * (self.values.ndim - 1)
        return self.values.astype(np.float64) * self.scales.reshape(shape)


def quantize_weights(
    weights: np.ndarray, num_bits: int, per_channel: bool = True
) -> QuantizedWeights:
    """Symmetric quantization of real weights to ``num_bits``-bit integers.

    Axis 0 of ``weights`` is the output-channel axis (matching both
    ``Conv2d`` kernels ``(C_out, C_in, Kr, Kc)`` and ``Linear`` matrices
    ``(N_out, N_in)``).

    With ``per_channel=True`` each output channel gets its own scale, chosen
    so the channel's largest-magnitude weight maps to the largest integer.
    All-zero channels get a scale of 1 to keep dequantization well defined.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim < 2:
        raise QuantizationError(
            f"weights must have an output-channel axis, got shape {weights.shape}"
        )
    lo, hi = weight_int_range(num_bits)
    if per_channel:
        flat = np.abs(weights).reshape(weights.shape[0], -1)
        max_abs = flat.max(axis=1)
    else:
        max_abs = np.full(weights.shape[0], float(np.abs(weights).max()))
    scales = np.where(max_abs > 0, max_abs / hi, 1.0)
    shape = (-1,) + (1,) * (weights.ndim - 1)
    ints = np.rint(weights / scales.reshape(shape)).astype(np.int64)
    ints = np.clip(ints, lo, hi)
    return QuantizedWeights(values=ints, scales=scales, num_bits=int(num_bits))


class ActivationCalibrator:
    """Accumulates activation samples and yields the layer scale ``λ``.

    ``λ`` is a high percentile (not the max) of observed post-ReLU
    activations: clipping a tiny tail of outliers costs little accuracy but
    greatly improves the resolution of the surviving range — the standard
    robust variant of threshold balancing used by ANN-to-SNN pipelines.
    """

    def __init__(self, percentile: float = 99.9) -> None:
        if not 0.0 < percentile <= 100.0:
            raise QuantizationError(
                f"percentile must be in (0, 100], got {percentile}"
            )
        self.percentile = float(percentile)
        self._samples: list[np.ndarray] = []

    def observe(self, activations: np.ndarray) -> None:
        """Record one batch of (post-ReLU) activations."""
        data = np.asarray(activations, dtype=np.float64).reshape(-1)
        if data.size == 0:
            return
        # Keep a bounded reservoir per batch so calibration memory stays flat.
        if data.size > 65536:
            stride = data.size // 65536 + 1
            data = data[::stride]
        self._samples.append(data)

    @property
    def num_observed(self) -> int:
        return sum(s.size for s in self._samples)

    def scale(self) -> float:
        """Percentile-based normalization scale; at least a tiny epsilon."""
        if not self._samples:
            raise QuantizationError(
                "calibrator has seen no activations; call observe() first"
            )
        merged = np.concatenate(self._samples)
        lam = float(np.percentile(merged, self.percentile))
        return max(lam, 1e-9)

"""Published comparison points (Table III of the paper).

The paper compares against the *published* numbers of Ju et al. [12] and
Fang et al. [11]; it does not re-implement their hardware.  This module
records those rows verbatim, together with the paper's own three rows, so
the benchmark harness can print the full table and compute the claimed
ratios (18× latency vs [11], 15× throughput vs [12], 25% power saving...)
against our measured results.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PublishedResult", "JU_2020", "FANG_2020", "PAPER_ROWS",
           "TABLE_III"]


@dataclass(frozen=True)
class PublishedResult:
    """One row of Table III as printed in the paper."""

    label: str
    platform: str
    dataset: str
    network: str
    accuracy_pct: float
    frequency_mhz: float
    latency_us: float
    throughput_fps: float
    power_w: float
    luts: int
    ffs: int

    @property
    def energy_per_frame_mj(self) -> float:
        return self.power_w * self.latency_us * 1e-3


JU_2020 = PublishedResult(
    label="Ju et al. [12]",
    platform="Zynq FPGA",
    dataset="MNIST",
    network="CNN 1 (28x28-64C5-P2-64C5-P2-128-10)",
    accuracy_pct=98.9,
    frequency_mhz=150.0,
    latency_us=6110.0,
    throughput_fps=164.0,
    power_w=4.6,
    luts=107_000,
    ffs=67_000,
)

FANG_2020 = PublishedResult(
    label="Fang et al. [11]",
    platform="FPGA (HLS flow)",
    dataset="MNIST",
    network="CNN 2 (28x28-32C3-P2-32C3-P2-256-10)",
    accuracy_pct=99.2,
    frequency_mhz=125.0,
    latency_us=7530.0,
    throughput_fps=2124.0,
    power_w=4.5,
    luts=156_000,
    ffs=233_000,
)

# The paper's own rows, kept for paper-vs-measured reporting.
PAPER_ROWS = (
    PublishedResult(
        label="This work (paper), CNN 2",
        platform="XCVU13P", dataset="MNIST",
        network="CNN 2", accuracy_pct=99.3, frequency_mhz=200.0,
        latency_us=409.0, throughput_fps=2445.0, power_w=3.6,
        luts=41_000, ffs=36_000,
    ),
    PublishedResult(
        label="This work (paper), LeNet-5",
        platform="XCVU13P", dataset="MNIST",
        network="LeNet-5", accuracy_pct=99.1, frequency_mhz=200.0,
        latency_us=294.0, throughput_fps=3380.0, power_w=3.4,
        luts=27_000, ffs=24_000,
    ),
    PublishedResult(
        label="This work (paper), VGG-11",
        platform="XCVU13P", dataset="CIFAR-100",
        network="VGG-11", accuracy_pct=60.1, frequency_mhz=115.0,
        latency_us=210_000.0, throughput_fps=4.7, power_w=4.9,
        luts=88_000, ffs=84_000,
    ),
)

TABLE_III = (JU_2020, FANG_2020) + PAPER_ROWS

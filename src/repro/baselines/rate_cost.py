"""Encoding-efficiency cost model (the Section IV-B comparison).

On this architecture, latency and energy scale ~linearly with the spike-
train length T ("almost all computations are replicated for each time
step").  The efficiency of an encoding is therefore governed by the
*smallest T* at which it reaches a target accuracy: the paper observes
radix encoding saturating at T=6 where Fang et al.'s rate-coded design
needs about ten steps, "hence a potential efficiency improvement of around
40%".

:func:`encoding_advantage` formalizes exactly that computation from two
measured accuracy-vs-T curves.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AccuracyCurve", "EncodingComparison", "encoding_advantage"]


@dataclass(frozen=True)
class AccuracyCurve:
    """Accuracy as a function of spike-train length for one encoding."""

    encoding: str
    num_steps: tuple
    accuracies: tuple

    def __post_init__(self) -> None:
        if len(self.num_steps) != len(self.accuracies):
            raise ValueError("num_steps and accuracies must align")

    def min_steps_reaching(self, target: float) -> int | None:
        """Smallest T whose accuracy is at least ``target`` (None if never)."""
        for t, acc in sorted(zip(self.num_steps, self.accuracies)):
            if acc >= target:
                return t
        return None

    def best_accuracy(self) -> float:
        return max(self.accuracies)


@dataclass(frozen=True)
class EncodingComparison:
    """Outcome of the radix-vs-rate efficiency comparison."""

    target_accuracy: float
    radix_steps: int | None
    rate_steps: int | None

    @property
    def step_ratio(self) -> float | None:
        """rate T / radix T; > 1 means radix needs a shorter train."""
        if not self.radix_steps or not self.rate_steps:
            return None
        return self.rate_steps / self.radix_steps

    @property
    def efficiency_gain(self) -> float | None:
        """Fractional latency/energy saving of radix at equal accuracy.

        1 − T_radix/T_rate: the paper's "~40%" with T=6 vs T=10.
        """
        if not self.radix_steps or not self.rate_steps:
            return None
        return 1.0 - self.radix_steps / self.rate_steps


def encoding_advantage(
    radix: AccuracyCurve,
    rate: AccuracyCurve,
    target_accuracy: float | None = None,
) -> EncodingComparison:
    """Compare the two encodings at a common accuracy target.

    The default target is the radix curve's saturation accuracy minus a
    small tolerance (the paper compares at "the same accuracy" reached by
    its T=6 radix model).
    """
    if target_accuracy is None:
        target_accuracy = radix.best_accuracy() - 0.002
    return EncodingComparison(
        target_accuracy=target_accuracy,
        radix_steps=radix.min_steps_reaching(target_accuracy),
        rate_steps=rate.min_steps_reaching(target_accuracy),
    )

"""Cost model of an event-driven SNN accelerator (Minitaur family).

Related work the paper positions against (refs [9], [10]): event-driven
FPGA designs update neuron state only when an input spike arrives.  That
is very efficient for *sparse, linear-layer-only* networks but scales
poorly to convolutional workloads with rate coding: every spike triggers
``fan_out`` state updates through a serial event queue, and rate-coded
inputs fire orders of magnitude more events than radix trains.

The model prices an inference as events × fan-out / parallelism and is
used by the ablation study to show where the paper's dataflow design wins
(dense conv layers, short radix trains) and where event-driven designs
hold up (very sparse linear networks).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.snn.spec import QuantizedNetwork

__all__ = ["EventDrivenConfig", "EventDrivenEstimate",
           "estimate_event_driven"]


@dataclass(frozen=True)
class EventDrivenConfig:
    """Parameters of the modelled event-driven engine."""

    clock_mhz: float = 75.0        # Minitaur-class designs
    updates_per_cycle: int = 32    # parallel neuron updates per event
    queue_overhead_cycles: int = 4  # per-event dequeue/dispatch


@dataclass(frozen=True)
class EventDrivenEstimate:
    """Predicted cost of one inference on the event-driven engine."""

    total_events: int
    total_updates: int
    cycles: int
    latency_us: float


def _layer_fanout(spec) -> int:
    """State updates one input spike triggers in a layer."""
    if spec.kind == "conv":
        kr, kc = spec.kernel_size
        return spec.out_shape[0] * kr * kc  # every kernel position/channel
    if spec.kind == "linear":
        return spec.out_features
    return 1  # pool/flatten: bookkeeping only


def estimate_event_driven(
    network: QuantizedNetwork,
    spikes_per_layer: list[int],
    config: EventDrivenConfig | None = None,
) -> EventDrivenEstimate:
    """Price one inference from measured per-layer spike counts.

    ``spikes_per_layer`` is the list collected by
    ``SNNModel.forward_spikes(collect_stats=True)`` — entry 0 is the input
    train, entry ``i`` feeds layer ``i``.
    """
    config = config or EventDrivenConfig()
    events = 0
    updates = 0
    compute_layers = [s for s in network.layers
                      if s.kind in ("conv", "pool", "linear", "flatten")]
    for spec, spikes in zip(compute_layers, spikes_per_layer):
        events += spikes
        updates += spikes * _layer_fanout(spec)
    cycles = (updates // config.updates_per_cycle
              + events * config.queue_overhead_cycles)
    return EventDrivenEstimate(
        total_events=events,
        total_updates=updates,
        cycles=cycles,
        latency_us=cycles / config.clock_mhz,
    )

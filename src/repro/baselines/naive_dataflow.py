"""Memory-traffic model of a *naive* sliding-window dataflow.

The paper's central dataflow claim (Section III-A) is that the row-based
execution "minimizes the number of memory accesses": one fetched input row
feeds all ``Y`` kernel rows, and keeping ``X`` ≥ the output width avoids
re-fetching kernels per tile.  This module prices the obvious alternative
— a sliding-window engine that gathers its ``Kr × Kc`` receptive field
from the activation memory for every output pixel and re-reads kernel
values per window — so the dataflow-ablation benchmark can compare both
against the traffic the functional simulator actually measured.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.stats import MemoryTraffic
from repro.snn.spec import QuantizedNetwork

__all__ = ["naive_conv_traffic", "naive_network_traffic", "DataflowSummary"]


def naive_conv_traffic(spec, num_steps: int) -> MemoryTraffic:
    """Sliding-window traffic for one conv layer (per inference)."""
    c_out, h_out, w_out = spec.out_shape
    c_in = spec.in_shape[0]
    kr, kc = spec.kernel_size
    windows = c_out * h_out * w_out * c_in * num_steps
    return MemoryTraffic(
        activation_read_bits=windows * kr * kc,
        activation_write_bits=c_out * h_out * w_out * num_steps,
        kernel_read_values=windows * kr * kc,
    )


def naive_network_traffic(network: QuantizedNetwork) -> MemoryTraffic:
    """Sliding-window traffic for all conv layers of a network."""
    total = MemoryTraffic()
    for spec in network.conv_layers():
        total.merge(naive_conv_traffic(spec, network.num_steps))
    return total


@dataclass(frozen=True)
class DataflowSummary:
    """Side-by-side traffic comparison for the ablation report."""

    rowwise: MemoryTraffic
    naive: MemoryTraffic

    @property
    def activation_read_reduction(self) -> float:
        """How many times fewer activation bits the row dataflow reads."""
        if self.rowwise.activation_read_bits == 0:
            return float("inf")
        return (self.naive.activation_read_bits
                / self.rowwise.activation_read_bits)

    @property
    def kernel_read_reduction(self) -> float:
        """How many times fewer kernel values the row dataflow reads."""
        if self.rowwise.kernel_read_values == 0:
            return float("inf")
        return (self.naive.kernel_read_values
                / self.rowwise.kernel_read_values)

"""Baselines: published comparison rows and ablation cost models."""

from repro.baselines.event_driven import (
    EventDrivenConfig,
    EventDrivenEstimate,
    estimate_event_driven,
)
from repro.baselines.naive_dataflow import (
    DataflowSummary,
    naive_conv_traffic,
    naive_network_traffic,
)
from repro.baselines.published import (
    FANG_2020,
    JU_2020,
    PAPER_ROWS,
    PublishedResult,
    TABLE_III,
)
from repro.baselines.rate_cost import (
    AccuracyCurve,
    EncodingComparison,
    encoding_advantage,
)

__all__ = [
    "AccuracyCurve",
    "DataflowSummary",
    "EncodingComparison",
    "EventDrivenConfig",
    "EventDrivenEstimate",
    "FANG_2020",
    "estimate_event_driven",
    "JU_2020",
    "PAPER_ROWS",
    "PublishedResult",
    "TABLE_III",
    "encoding_advantage",
    "naive_conv_traffic",
    "naive_network_traffic",
]

"""SNN functional simulation: radix conversion/executors and the rate baseline."""

from repro.snn.convert import ann_to_snn, fold_batch_norm, group_layers
from repro.snn.model import SNNModel, SpikeStats
from repro.snn.neuron import RadixIFNeuron, RateIFNeuron
from repro.snn.rate_model import RateSNN, ann_to_rate_snn
from repro.snn.spec import (
    FlattenSpec,
    QuantConvSpec,
    QuantLinearSpec,
    QuantPoolSpec,
    QuantizedNetwork,
    requantize,
)

__all__ = [
    "FlattenSpec",
    "QuantConvSpec",
    "QuantLinearSpec",
    "QuantPoolSpec",
    "QuantizedNetwork",
    "RadixIFNeuron",
    "RateIFNeuron",
    "RateSNN",
    "SNNModel",
    "SpikeStats",
    "ann_to_rate_snn",
    "ann_to_snn",
    "fold_batch_norm",
    "group_layers",
    "requantize",
]

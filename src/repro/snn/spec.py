"""Quantized-network specification shared by the SNN simulator and the
hardware model.

``ann_to_snn`` (see ``repro.snn.convert``) lowers a trained float ANN into a
:class:`QuantizedNetwork`: a list of integer-weight layer specs plus the
per-layer requantization scales.  Three independent executors consume this
single specification —

* ``SNNModel.forward_ints``   — whole-tensor integer reference semantics,
* ``SNNModel.forward_spikes`` — step-by-step radix spike-train simulation,
* ``repro.core.Accelerator``  — the hardware functional model,

and the test suite asserts all three agree bit-exactly (DESIGN.md §4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConversionError, ShapeError

__all__ = [
    "QuantConvSpec",
    "QuantPoolSpec",
    "QuantLinearSpec",
    "FlattenSpec",
    "QuantizedNetwork",
    "requantize",
]


def requantize(
    acc: np.ndarray, scales: np.ndarray, num_steps: int, channel_axis: int
) -> np.ndarray:
    """The hardware requantization stage: ReLU + rescale + saturate.

    ``a_out = clip(floor(acc * M + 1/2), 0, 2**T - 1)`` with a per-channel
    scale ``M`` broadcast along ``channel_axis``.  The ``+1/2`` makes the
    truncating datapath round to nearest; in hardware it is free — a
    per-channel constant of ``1/(2M)`` folded into the bias that is added
    to the accumulator anyway.  At T=3 (eight activation levels) this
    half-LSB recovers several accuracy points, so every executor must use
    exactly this function.
    """
    scales = np.asarray(scales, dtype=np.float64)
    shape = [1] * acc.ndim
    shape[channel_axis] = -1
    scaled = np.floor(acc.astype(np.float64) * scales.reshape(shape) + 0.5)
    top = (1 << num_steps) - 1
    return np.clip(scaled, 0, top).astype(np.int64)


@dataclass(frozen=True)
class QuantConvSpec:
    """An integer convolution layer (weights, bias, requantization).

    ``weights`` has shape ``(C_out, C_in, Kr, Kc)`` with small signed
    integers; ``bias`` is pre-scaled into accumulator units; ``scales`` is
    the per-output-channel requantization factor ``M``.
    """

    weights: np.ndarray
    bias: np.ndarray
    scales: np.ndarray
    stride: int
    padding: int
    in_shape: tuple[int, int, int]   # (C_in, H, W)
    out_shape: tuple[int, int, int]  # (C_out, H_out, W_out)

    kind: str = field(default="conv", init=False)

    def __post_init__(self) -> None:
        if self.weights.ndim != 4:
            raise ShapeError(
                f"conv weights must be 4-D, got {self.weights.shape}"
            )
        c_out = self.weights.shape[0]
        if self.bias.shape != (c_out,) or self.scales.shape != (c_out,):
            raise ShapeError("bias/scales must have one entry per channel")

    @property
    def kernel_size(self) -> tuple[int, int]:
        return self.weights.shape[2], self.weights.shape[3]

    @property
    def num_weights(self) -> int:
        return int(self.weights.size)

    @property
    def macs(self) -> int:
        """Accumulate operations per time step (for energy accounting)."""
        _, h_out, w_out = self.out_shape
        return int(self.weights.size * h_out * w_out
                   // (self.weights.shape[2] * self.weights.shape[3])
                   * self.weights.shape[2] * self.weights.shape[3])


@dataclass(frozen=True)
class QuantPoolSpec:
    """2×2 (or general) sum pooling with an exact right-shift divide.

    ``a_out = (sum of window) >> shift`` where ``2**shift == size**2``; the
    window size must therefore be a power of two, which every evaluated
    network satisfies (all use 2×2).
    """

    size: int
    stride: int
    in_shape: tuple[int, int, int]
    out_shape: tuple[int, int, int]

    kind: str = field(default="pool", init=False)

    def __post_init__(self) -> None:
        count = self.size * self.size
        if count & (count - 1):
            raise ConversionError(
                f"pool window {self.size}x{self.size} is not a power of two; "
                "the hardware divides by right-shift"
            )

    @property
    def shift(self) -> int:
        """Right-shift amount implementing the divide by ``size**2``."""
        return int(np.log2(self.size * self.size))


@dataclass(frozen=True)
class QuantLinearSpec:
    """An integer fully-connected layer.

    ``is_output`` marks the classifier head: its accumulator is the logit
    vector and is *not* requantized (argmax happens at full precision, as
    in the accelerator's output stage).
    """

    weights: np.ndarray  # (N_out, N_in)
    bias: np.ndarray
    scales: np.ndarray
    is_output: bool
    in_features: int
    out_features: int

    kind: str = field(default="linear", init=False)

    def __post_init__(self) -> None:
        if self.weights.shape != (self.out_features, self.in_features):
            raise ShapeError(
                f"linear weights {self.weights.shape} do not match "
                f"({self.out_features}, {self.in_features})"
            )

    @property
    def num_weights(self) -> int:
        return int(self.weights.size)


@dataclass(frozen=True)
class FlattenSpec:
    """The 2-D → 1-D handoff (feature maps move to the 1-D ping-pong pair)."""

    in_shape: tuple[int, int, int]
    out_features: int

    kind: str = field(default="flatten", init=False)


LayerSpec = QuantConvSpec | QuantPoolSpec | QuantLinearSpec | FlattenSpec


@dataclass(frozen=True)
class QuantizedNetwork:
    """A fully lowered network: ordered layer specs + global parameters."""

    layers: tuple
    num_steps: int
    weight_bits: int
    input_shape: tuple[int, int, int]
    num_classes: int

    def __post_init__(self) -> None:
        if not self.layers:
            raise ConversionError("quantized network has no layers")
        if not isinstance(self.layers, tuple):
            object.__setattr__(self, "layers", tuple(self.layers))

    def conv_layers(self) -> list[QuantConvSpec]:
        return [l for l in self.layers if l.kind == "conv"]

    def linear_layers(self) -> list[QuantLinearSpec]:
        return [l for l in self.layers if l.kind == "linear"]

    def pool_layers(self) -> list[QuantPoolSpec]:
        return [l for l in self.layers if l.kind == "pool"]

    @property
    def num_parameters(self) -> int:
        """Total weight count (the paper quotes 28.5M for VGG-11)."""
        return sum(
            l.num_weights for l in self.layers
            if l.kind in ("conv", "linear")
        )

    @property
    def parameter_bytes(self) -> int:
        """Parameter storage at ``weight_bits`` resolution, in bytes."""
        return (self.num_parameters * self.weight_bits + 7) // 8

"""ANN-to-SNN conversion for radix-encoded networks.

This reproduces the conversion contract of the paper's toolchain (E3NE,
ref. [14]): train a float ANN, calibrate per-layer activation scales on a
small calibration set, quantize weights to ``weight_bits`` (3 in the
paper), fold everything into integer layers, and obtain an SNN whose radix
simulation is bit-exact to the quantized ANN.

The scale algebra (DESIGN.md §4): with input activations ``a ≈ λ_in·q/2^T``
and weights ``w ≈ s_w·w_int``, the integer accumulator ``acc = Σ w_int·q``
represents ``z = λ_in·s_w/2^T · acc``.  Bias enters as
``round(b·2^T/(λ_in·s_w))`` and the requantization scale to the next
layer's grid is ``M = λ_in·s_w/λ_out``.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.encoding.quantize import ActivationCalibrator, quantize_weights
from repro.errors import ConversionError
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.network import Sequential
from repro.snn.model import SNNModel
from repro.snn.spec import (
    FlattenSpec,
    QuantConvSpec,
    QuantLinearSpec,
    QuantPoolSpec,
    QuantizedNetwork,
)

__all__ = ["ann_to_snn", "fold_batch_norm", "group_layers"]


def fold_batch_norm(model: Sequential) -> Sequential:
    """Fold each ``Conv2d → BatchNorm2d`` pair into a single convolution.

    Standard inference-time folding: the BN affine (using running
    statistics) is absorbed into the conv's weights and bias, leaving a
    network of only conv/pool/linear/ReLU that conversion can handle.
    """
    folded: list = []
    layers = list(model.layers)
    i = 0
    while i < len(layers):
        layer = layers[i]
        nxt = layers[i + 1] if i + 1 < len(layers) else None
        if isinstance(layer, Conv2d) and isinstance(nxt, BatchNorm2d):
            conv = Conv2d(
                layer.in_channels, layer.out_channels, layer.kernel_size,
                stride=layer.stride, padding=layer.padding, bias=True,
            )
            gamma, beta = nxt.gamma, nxt.beta
            mean, var = nxt.running_mean, nxt.running_var
            factor = gamma / np.sqrt(var + nxt.eps)
            conv.weight = layer.weight * factor.reshape(-1, 1, 1, 1)
            old_bias = layer.bias if layer.bias is not None else 0.0
            conv.bias = (old_bias - mean) * factor + beta
            folded.append(conv)
            i += 2
            continue
        folded.append(layer)
        i += 1
    return Sequential(folded)


def group_layers(model: Sequential) -> list[tuple]:
    """Group a Sequential into conversion units.

    Returns tuples ``('conv', conv, fq)``, ``('linear', linear, has_relu,
    fq)``, ``('pool', pool)``, ``('flatten',)`` where ``fq`` is the
    :class:`~repro.nn.qat.FakeQuantActivation` attached after the group's
    ReLU during quantization-aware training, or ``None``.  Every hidden
    conv/linear must be followed by a ReLU (possibly with Dropout in
    between); the final linear is the classifier head and must not be.
    """
    from repro.nn.qat import FakeQuantActivation

    layers = [l for l in model.layers if not isinstance(l, Dropout)]
    if any(isinstance(l, BatchNorm2d) for l in layers):
        raise ConversionError(
            "fold batch norm before conversion (fold_batch_norm)"
        )
    if any(isinstance(l, MaxPool2d) for l in layers):
        raise ConversionError(
            "max pooling is not supported by the adder-based pooling unit; "
            "train with AvgPool2d"
        )

    def fq_at(index: int):
        if index < len(layers) and isinstance(layers[index],
                                              FakeQuantActivation):
            return layers[index]
        return None

    groups: list[tuple] = []
    i = 0
    while i < len(layers):
        layer = layers[i]
        if isinstance(layer, Conv2d):
            if i + 1 >= len(layers) or not isinstance(layers[i + 1], ReLU):
                raise ConversionError(
                    "every convolution must be followed by ReLU"
                )
            fq = fq_at(i + 2)
            groups.append(("conv", layer, fq))
            i += 3 if fq is not None else 2
        elif isinstance(layer, Linear):
            has_relu = i + 1 < len(layers) and isinstance(layers[i + 1], ReLU)
            fq = fq_at(i + 2) if has_relu else None
            groups.append(("linear", layer, has_relu, fq))
            i += 1 + (1 if has_relu else 0) + (1 if fq is not None else 0)
        elif isinstance(layer, AvgPool2d):
            groups.append(("pool", layer))
            i += 1
        elif isinstance(layer, Flatten):
            groups.append(("flatten",))
            i += 1
        elif isinstance(layer, ReLU):
            raise ConversionError("unexpected ReLU without preceding layer")
        else:
            raise ConversionError(
                f"layer {type(layer).__name__} is not convertible"
            )
    if not groups or groups[-1][0] != "linear" or groups[-1][2]:
        raise ConversionError(
            "network must end in a linear classifier head without ReLU"
        )
    return groups


def _calibrate_scales(
    model: Sequential,
    groups: list[tuple],
    images: np.ndarray,
    percentile: float,
    batch_size: int = 128,
) -> list[float]:
    """Per-group output activation scale λ via a forward calibration pass.

    The input scale is fixed at 1.0 (images live in ``[0, 1]``); pooling
    and flatten preserve scale; the classifier head needs none.  Groups
    trained with quantization-aware training carry a
    ``FakeQuantActivation`` whose learned scale is used directly (and its
    quantization is applied while propagating, so downstream statistics
    match training exactly).
    """
    model.eval()
    calibrators = [
        ActivationCalibrator(percentile) for _ in groups
    ]

    def group_fq(group):
        if group[0] == "conv":
            return group[2]
        if group[0] == "linear":
            return group[3]
        return None

    for start in range(0, len(images), batch_size):
        x = images[start:start + batch_size]
        for gi, group in enumerate(groups):
            fq = group_fq(group)
            if group[0] == "conv":
                x = np.maximum(group[1].forward(x), 0.0)
                if fq is None:
                    calibrators[gi].observe(x)
                else:
                    x = fq.forward(x)
            elif group[0] == "linear":
                x = group[1].forward(x)
                if group[2]:
                    x = np.maximum(x, 0.0)
                    if fq is None:
                        calibrators[gi].observe(x)
                    else:
                        x = fq.forward(x)
            elif group[0] == "pool":
                x = group[1].forward(x)
            else:
                x = x.reshape(x.shape[0], -1)
    scales: list[float] = []
    for gi, group in enumerate(groups):
        fq = group_fq(group)
        if fq is not None:
            scales.append(fq.scale)
        elif group[0] == "conv" or (group[0] == "linear" and group[2]):
            scales.append(calibrators[gi].scale())
        else:
            scales.append(1.0)
    return scales


def ann_to_snn(
    model: Sequential,
    calibration: Dataset | np.ndarray,
    num_steps: int,
    weight_bits: int = 3,
    percentile: float = 99.9,
) -> SNNModel:
    """Convert a trained float ANN into a radix-encoded SNN.

    Parameters
    ----------
    model:
        Trained ``Sequential`` of conv/avg-pool/linear/ReLU layers (fold
        batch norm first if present).
    calibration:
        A small dataset (or raw image tensor) for activation-scale
        calibration; a few hundred samples suffice.
    num_steps:
        Radix spike-train length ``T`` (the paper sweeps 3–6).
    weight_bits:
        Parameter resolution (3 in all paper experiments).
    """
    images = (calibration.images if isinstance(calibration, Dataset)
              else np.asarray(calibration))
    if images.ndim != 4:
        raise ConversionError(
            f"calibration images must be NCHW, got shape {images.shape}"
        )
    groups = group_layers(model)
    lambdas = _calibrate_scales(model, groups, images, percentile)

    input_shape = tuple(images.shape[1:])
    specs: list = []
    lam_in = 1.0
    shape = input_shape  # (C, H, W) tracked through the network
    flat_features: int | None = None
    two_pow_t = float(1 << num_steps)

    for gi, group in enumerate(groups):
        if group[0] == "conv":
            conv = group[1]
            lam_out = lambdas[gi]
            qw = quantize_weights(conv.weight, weight_bits, per_channel=True)
            bias = conv.bias if conv.bias is not None else np.zeros(
                conv.out_channels)
            bias_int = np.rint(
                bias * two_pow_t / (lam_in * qw.scales)).astype(np.int64)
            m_scales = lam_in * qw.scales / lam_out
            c, h, w = shape
            h_out = (h + 2 * conv.padding - conv.kernel_size) // conv.stride + 1
            w_out = (w + 2 * conv.padding - conv.kernel_size) // conv.stride + 1
            out_shape = (conv.out_channels, h_out, w_out)
            specs.append(QuantConvSpec(
                weights=qw.values, bias=bias_int, scales=m_scales,
                stride=conv.stride, padding=conv.padding,
                in_shape=shape, out_shape=out_shape,
            ))
            shape = out_shape
            lam_in = lam_out
        elif group[0] == "pool":
            pool = group[1]
            c, h, w = shape
            h_out = (h - pool.size) // pool.stride + 1
            w_out = (w - pool.size) // pool.stride + 1
            out_shape = (c, h_out, w_out)
            specs.append(QuantPoolSpec(
                size=pool.size, stride=pool.stride,
                in_shape=shape, out_shape=out_shape,
            ))
            shape = out_shape
        elif group[0] == "flatten":
            flat_features = int(np.prod(shape))
            specs.append(FlattenSpec(in_shape=shape,
                                     out_features=flat_features))
        else:  # linear
            linear, has_relu = group[1], group[2]
            if flat_features is None:
                flat_features = int(np.prod(shape))
            is_output = gi == len(groups) - 1
            lam_out = lambdas[gi]
            qw = quantize_weights(
                linear.weight, weight_bits, per_channel=not is_output
            )
            bias = (linear.bias if linear.bias is not None
                    else np.zeros(linear.out_features))
            bias_int = np.rint(
                bias * two_pow_t / (lam_in * qw.scales)).astype(np.int64)
            m_scales = lam_in * qw.scales / lam_out
            specs.append(QuantLinearSpec(
                weights=qw.values, bias=bias_int, scales=m_scales,
                is_output=is_output,
                in_features=flat_features, out_features=linear.out_features,
            ))
            flat_features = linear.out_features
            lam_in = lam_out

    num_classes = specs[-1].out_features
    network = QuantizedNetwork(
        layers=tuple(specs), num_steps=num_steps, weight_bits=weight_bits,
        input_shape=input_shape, num_classes=num_classes,
    )
    return SNNModel(network)

"""Functional simulation of a radix-encoded SNN.

:class:`SNNModel` executes a :class:`~repro.snn.spec.QuantizedNetwork` in
two equivalent ways:

* :meth:`forward_ints` — the integer *reference semantics*: whole-tensor
  integer convolutions/matmuls with the requantization contract of
  DESIGN.md §4.  Fast; used for accuracy sweeps.
* :meth:`forward_spikes` — the true step-by-step spike-train simulation:
  each layer integrates ``T`` binary spike planes with a left-shifting
  accumulator (``RadixIFNeuron``) and emits a new radix train.  Slower, but
  demonstrates the temporal behaviour the hardware implements and is
  asserted bit-exact to :meth:`forward_ints`.

Integer arithmetic note: intermediate products are far below ``2**53``, so
matmuls run in float64 (exact for these magnitudes, and BLAS-fast) and are
cast back to int64.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import Dataset
from repro.encoding import radix
from repro.encoding.spike_train import SpikeTrain
from repro.errors import ShapeError
from repro.nn import functional as F
from repro.snn.neuron import RadixIFNeuron
from repro.snn.spec import (
    QuantConvSpec,
    QuantLinearSpec,
    QuantPoolSpec,
    QuantizedNetwork,
    requantize,
)

__all__ = ["SNNModel", "SpikeStats"]


@dataclass
class SpikeStats:
    """Per-layer spike counts from a temporal simulation (energy proxy)."""

    spikes_per_layer: list[int] = field(default_factory=list)
    neurons_per_layer: list[int] = field(default_factory=list)

    @property
    def total_spikes(self) -> int:
        return sum(self.spikes_per_layer)

    def mean_rate(self, num_steps: int) -> float:
        """Average spikes per neuron per time step across the network."""
        slots = sum(self.neurons_per_layer) * num_steps
        return self.total_spikes / slots if slots else 0.0


def _int_conv(x: np.ndarray, spec: QuantConvSpec) -> np.ndarray:
    """Exact integer convolution via float64 im2col GEMM."""
    out, _ = F.conv2d(
        x.astype(np.float64),
        spec.weights.astype(np.float64),
        None,
        spec.stride,
        spec.padding,
    )
    return np.rint(out).astype(np.int64)


def _int_pool(x: np.ndarray, spec: QuantPoolSpec) -> np.ndarray:
    """Sum pooling followed by the exact right-shift divide."""
    window_sum = F.avg_pool2d(x.astype(np.float64), spec.size, spec.stride)
    window_sum = np.rint(window_sum * spec.size * spec.size).astype(np.int64)
    return window_sum >> spec.shift


def _int_linear(x: np.ndarray, spec: QuantLinearSpec) -> np.ndarray:
    out = x.astype(np.float64) @ spec.weights.T.astype(np.float64)
    return np.rint(out).astype(np.int64)


#: Spike planes per fused layer call in :meth:`SNNModel.forward_spikes`.
#: The T per-step planes are folded into the batch axis and processed in
#: chunks of at least one original step-batch, bounding im2col memory
#: while collapsing the per-step Python loop into a few whole-plane calls.
_PLANE_CHUNK = 256


def _over_steps(fn, bits: np.ndarray, out_shape: tuple) -> np.ndarray:
    """Apply a per-plane integer op to all ``T`` spike planes at once.

    ``bits`` is ``(T, N, ...)``; the time axis folds into the batch axis
    so one (or a few, memory-bounded) vectorized calls replace the
    ``T``-iteration Python loop.  Returns ``(T, N) + out_shape`` step
    currents, ready for sequential MSB-first integration.
    """
    t, n = bits.shape[:2]
    planes = bits.reshape((t * n,) + bits.shape[2:])
    chunk = max(n, _PLANE_CHUNK)
    outs = [fn(planes[lo:lo + chunk])
            for lo in range(0, t * n, chunk)]
    return np.concatenate(outs).reshape((t, n) + out_shape)


class SNNModel:
    """A lowered, radix-encoded spiking network ready for simulation."""

    def __init__(self, network: QuantizedNetwork) -> None:
        self.network = network

    @property
    def num_steps(self) -> int:
        return self.network.num_steps

    def quantize_input(self, images: np.ndarray) -> np.ndarray:
        """Map ``[0, 1]`` images to the input integer grid."""
        if images.ndim != 4 or images.shape[1:] != self.network.input_shape:
            raise ShapeError(
                f"expected images of shape (N, "
                f"{', '.join(map(str, self.network.input_shape))}), "
                f"got {images.shape}"
            )
        return radix.quantize_real(images, self.num_steps)

    # ------------------------------------------------------------------
    # Reference integer semantics
    # ------------------------------------------------------------------
    def forward_ints(self, images: np.ndarray) -> np.ndarray:
        """Integer forward pass; returns the logit accumulators (N, classes)."""
        x = self.quantize_input(images)
        t = self.num_steps
        for spec in self.network.layers:
            if spec.kind == "conv":
                acc = _int_conv(x, spec) + spec.bias.reshape(1, -1, 1, 1)
                x = requantize(acc, spec.scales, t, channel_axis=1)
            elif spec.kind == "pool":
                x = _int_pool(x, spec)
            elif spec.kind == "flatten":
                x = x.reshape(x.shape[0], -1)
            else:  # linear
                acc = _int_linear(x, spec) + spec.bias.reshape(1, -1)
                if spec.is_output:
                    x = acc
                else:
                    x = requantize(acc, spec.scales, t, channel_axis=1)
        return x

    # ------------------------------------------------------------------
    # Temporal spike-train simulation
    # ------------------------------------------------------------------
    def forward_spikes(
        self, images: np.ndarray, collect_stats: bool = False
    ) -> tuple[np.ndarray, SpikeStats | None]:
        """Step-by-step radix simulation; returns (logits, spike stats).

        Layers execute in sequence (as on the accelerator); within a layer
        the ``T`` input spike planes are integrated MSB-first with a
        left-shifting membrane potential.  The per-step synaptic currents
        are computed for all planes in one fused call (``_over_steps``)
        and only the order-sensitive shift-and-integrate remains a loop —
        same semantics, ~``T``x fewer convolution/matmul dispatches.
        """
        t = self.num_steps
        train = radix.encode_ints(self.quantize_input(images), t)
        stats = SpikeStats() if collect_stats else None
        if stats is not None:
            stats.spikes_per_layer.append(train.num_spikes)
            stats.neurons_per_layer.append(
                int(np.prod(train.payload_shape)))
        logits: np.ndarray | None = None
        for spec in self.network.layers:
            if spec.kind == "flatten":
                train = SpikeTrain(train.bits.reshape(t, train.bits.shape[1],
                                                      -1))
                continue
            if spec.kind == "pool":
                # Pooling is linear, so it commutes with the radix
                # weighting: pool each spike plane's window sum, keep full
                # precision across steps, shift-divide at the end.
                neuron = RadixIFNeuron(
                    (train.bits.shape[1],) + spec.out_shape, t)
                currents = _over_steps(
                    lambda planes: np.rint(
                        F.avg_pool2d(planes.astype(np.float64), spec.size,
                                     spec.stride)
                        * spec.size * spec.size
                    ).astype(np.int64),
                    train.bits, spec.out_shape)
                for step in range(t):
                    neuron.integrate(currents[step])
                out_ints = neuron.potential >> spec.shift
                out_ints = np.minimum(out_ints, radix.max_int(t))
                train = radix.encode_ints(out_ints, t)
            elif spec.kind == "conv":
                neuron = RadixIFNeuron(
                    (train.bits.shape[1],) + spec.out_shape, t)
                currents = _over_steps(
                    lambda planes: _int_conv(planes, spec),
                    train.bits, spec.out_shape)
                for step in range(t):
                    neuron.integrate(currents[step])
                acc = neuron.potential + spec.bias.reshape(1, -1, 1, 1)
                out_ints = requantize(acc, spec.scales, t, channel_axis=1)
                train = radix.encode_ints(out_ints, t)
            else:  # linear
                neuron = RadixIFNeuron(
                    (train.bits.shape[1], spec.out_features), t)
                currents = _over_steps(
                    lambda planes: _int_linear(planes, spec),
                    train.bits, (spec.out_features,))
                for step in range(t):
                    neuron.integrate(currents[step])
                acc = neuron.potential + spec.bias.reshape(1, -1)
                if spec.is_output:
                    logits = acc
                    break
                out_ints = requantize(acc, spec.scales, t, channel_axis=1)
                train = radix.encode_ints(out_ints, t)
            if stats is not None:
                stats.spikes_per_layer.append(train.num_spikes)
                stats.neurons_per_layer.append(
                    int(np.prod(train.payload_shape)))
        if logits is None:
            raise ShapeError("network did not end in an output linear layer")
        return logits, stats

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def predict(self, images: np.ndarray) -> np.ndarray:
        """Class predictions via the reference integer semantics."""
        return self.forward_ints(images).argmax(axis=1)

    def accuracy(self, dataset: Dataset, batch_size: int = 256) -> float:
        """Top-1 accuracy over a dataset."""
        correct = 0
        for images, labels in dataset.batches(batch_size):
            correct += int((self.predict(images) == labels).sum())
        return correct / max(len(dataset), 1)

"""Neuron models for the two encoding schemes.

* :class:`RadixIFNeuron` — the paper's neuron: an integrate unit whose
  membrane potential doubles (left-shifts) between time steps, so a spike
  arriving at step ``t`` is implicitly weighted ``2**(T-1-t)``.  After the
  last step the potential holds the exact integer dot product.
* :class:`RateIFNeuron` — the classic integrate-and-fire neuron with
  reset-by-subtraction used by rate-coded baselines (Fang et al. style).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError

__all__ = ["RadixIFNeuron", "RateIFNeuron"]


class RadixIFNeuron:
    """Vectorized radix integrate unit over an arbitrary tensor shape.

    Usage: call :meth:`integrate` once per time step (steps 0..T-1 in
    order), then read :attr:`potential`.  The left shift happens *before*
    adding each step's current, which makes step 0 the most significant —
    exactly the MSB-first radix convention.
    """

    def __init__(self, shape: tuple[int, ...], num_steps: int) -> None:
        self.shape = tuple(shape)
        self.num_steps = int(num_steps)
        self.potential = np.zeros(self.shape, dtype=np.int64)
        self._steps_done = 0

    def integrate(self, current: np.ndarray) -> None:
        """Fold in one time step's synaptic current (integer tensor)."""
        if self._steps_done >= self.num_steps:
            raise SimulationError(
                f"neuron already integrated {self.num_steps} steps"
            )
        current = np.asarray(current)
        if current.shape != self.shape:
            raise SimulationError(
                f"current shape {current.shape} does not match neuron "
                f"shape {self.shape}"
            )
        self.potential = (self.potential << 1) + current.astype(np.int64)
        self._steps_done += 1

    @property
    def complete(self) -> bool:
        return self._steps_done == self.num_steps

    def reset(self) -> None:
        self.potential = np.zeros(self.shape, dtype=np.int64)
        self._steps_done = 0


class RateIFNeuron:
    """Vectorized IF neuron with reset-by-subtraction (rate-coded baseline).

    Works in normalized float units: threshold 1.0, weights pre-scaled by
    the usual ANN-to-SNN layer normalization.  Reset-by-subtraction keeps
    the residual potential, which is what lets spike counts approximate the
    underlying activation as T grows.
    """

    def __init__(self, shape: tuple[int, ...], threshold: float = 1.0) -> None:
        if threshold <= 0:
            raise SimulationError(f"threshold must be positive: {threshold}")
        self.shape = tuple(shape)
        self.threshold = float(threshold)
        self.potential = np.zeros(self.shape, dtype=np.float64)
        self.spike_count = np.zeros(self.shape, dtype=np.int64)

    def step(self, current: np.ndarray) -> np.ndarray:
        """Integrate one step of current; return the binary spike plane."""
        current = np.asarray(current, dtype=np.float64)
        if current.shape != self.shape:
            raise SimulationError(
                f"current shape {current.shape} does not match neuron "
                f"shape {self.shape}"
            )
        self.potential += current
        spikes = self.potential >= self.threshold
        self.potential -= spikes * self.threshold
        self.spike_count += spikes
        return spikes.astype(np.uint8)

    def reset(self) -> None:
        self.potential.fill(0.0)
        self.spike_count.fill(0)

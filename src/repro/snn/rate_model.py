"""Rate-coded SNN baseline (the *traditional* encoding the paper improves on).

Implements the classic ANN-to-SNN conversion with threshold balancing
(Diehl et al. / Rueckauer et al., the family Fang et al. [11] and
Sengupta et al. [5] build on): integrate-and-fire neurons with
reset-by-subtraction, per-layer weight normalization by activation
percentiles, analog input currents, and classification by the output
layer's accumulated potential.

Its role in this reproduction is the Section IV-B comparison: rate coding
needs roughly 10+ time steps to reach the accuracy radix encoding achieves
at T=6, which is the paper's ~40% efficiency argument.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.encoding.quantize import quantize_weights
from repro.errors import ConversionError
from repro.nn import functional as F
from repro.nn.network import Sequential
from repro.snn.convert import _calibrate_scales, group_layers
from repro.snn.neuron import RateIFNeuron

__all__ = ["RateSNN", "ann_to_rate_snn"]


class _RateLayer:
    """One normalized layer of the rate-coded network."""

    def __init__(self, kind: str, weight=None, bias=None, stride=1,
                 padding=0, size=None, is_output=False) -> None:
        self.kind = kind
        self.weight = weight
        self.bias = bias
        self.stride = stride
        self.padding = padding
        self.size = size
        self.is_output = is_output

    def current(self, spikes: np.ndarray) -> np.ndarray:
        """Synaptic current produced by one incoming spike/value plane."""
        if self.kind == "conv":
            out, _ = F.conv2d(spikes, self.weight, None, self.stride,
                              self.padding)
            return out + self.bias.reshape(1, -1, 1, 1)
        if self.kind == "pool":
            return F.avg_pool2d(spikes, self.size, self.size)
        if self.kind == "flatten":
            return spikes.reshape(spikes.shape[0], -1)
        out = spikes @ self.weight.T
        return out + self.bias


class RateSNN:
    """A rate-coded IF network produced by :func:`ann_to_rate_snn`."""

    def __init__(self, layers: list[_RateLayer],
                 input_shape: tuple[int, int, int]) -> None:
        self.layers = layers
        self.input_shape = input_shape

    def forward(self, images: np.ndarray, num_steps: int) -> np.ndarray:
        """Simulate ``num_steps`` steps; returns output potentials."""
        if num_steps < 1:
            raise ConversionError("rate simulation needs >= 1 step")
        neurons: dict[int, RateIFNeuron] = {}
        output_potential: np.ndarray | None = None
        spike_planes: dict[int, np.ndarray] = {}
        for _ in range(num_steps):
            x = images  # analog input current, constant across steps
            for li, layer in enumerate(self.layers):
                if layer.kind in ("pool", "flatten"):
                    x = layer.current(x)
                    continue
                current = layer.current(x)
                if layer.is_output:
                    if output_potential is None:
                        output_potential = np.zeros_like(current)
                    output_potential += current
                    break
                if li not in neurons:
                    neurons[li] = RateIFNeuron(current.shape)
                x = neurons[li].step(current).astype(np.float64)
                spike_planes[li] = x
        if output_potential is None:
            raise ConversionError("rate network has no output layer")
        return output_potential

    def predict(self, images: np.ndarray, num_steps: int) -> np.ndarray:
        return self.forward(images, num_steps).argmax(axis=1)

    def accuracy(self, dataset: Dataset, num_steps: int,
                 batch_size: int = 256) -> float:
        correct = 0
        for images, labels in dataset.batches(batch_size):
            correct += int(
                (self.predict(images, num_steps) == labels).sum())
        return correct / max(len(dataset), 1)


def ann_to_rate_snn(
    model: Sequential,
    calibration: Dataset | np.ndarray,
    weight_bits: int | None = 3,
    percentile: float = 99.9,
) -> RateSNN:
    """Convert a trained ANN to a rate-coded SNN with threshold balancing.

    ``weight_bits`` applies the same parameter quantization as the radix
    flow (3 bits) so the encoding comparison isolates the encoding itself;
    pass ``None`` for full-precision weights.
    """
    images = (calibration.images if isinstance(calibration, Dataset)
              else np.asarray(calibration))
    groups = group_layers(model)
    lambdas = _calibrate_scales(model, groups, images, percentile)

    layers: list[_RateLayer] = []
    lam_in = 1.0
    for gi, group in enumerate(groups):
        if group[0] == "pool":
            layers.append(_RateLayer("pool", size=group[1].size))
            continue
        if group[0] == "flatten":
            layers.append(_RateLayer("flatten"))
            continue
        layer = group[1]
        is_output = gi == len(groups) - 1
        lam_out = lambdas[gi] if not is_output else 1.0
        weight = layer.weight
        if weight_bits is not None:
            qw = quantize_weights(weight, weight_bits,
                                  per_channel=not is_output)
            weight = qw.dequantize()
        bias = (layer.bias if layer.bias is not None
                else np.zeros(weight.shape[0]))
        w_norm = weight * (lam_in / lam_out)
        b_norm = bias / lam_out
        if group[0] == "conv":
            layers.append(_RateLayer(
                "conv", weight=w_norm, bias=b_norm,
                stride=layer.stride, padding=layer.padding,
            ))
        else:
            layers.append(_RateLayer(
                "linear", weight=w_norm, bias=b_norm, is_output=is_output,
            ))
        lam_in = lam_out
    input_shape = tuple(images.shape[1:])
    return RateSNN(layers, input_shape)

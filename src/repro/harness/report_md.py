"""Markdown report generation.

Turns the structured results of the experiment runners into a single
markdown document (the same shape as EXPERIMENTS.md), so a full
reproduction run can refresh the paper-vs-measured record with one call::

    from repro.harness import ExperimentRunner, write_report
    write_report(ExperimentRunner(), "report.md")
"""

from __future__ import annotations

from pathlib import Path

from repro.harness.experiments import ExperimentRunner

__all__ = ["build_report", "write_report"]


def _md_table(columns: list[str], rows: list[list[str]]) -> str:
    header = "| " + " | ".join(columns) + " |"
    divider = "|" + "|".join("---" for _ in columns) + "|"
    body = ["| " + " | ".join(str(c) for c in row) + " |" for row in rows]
    return "\n".join([header, divider] + body)


def build_report(runner: ExperimentRunner, include_vgg: bool = True) -> str:
    """Run every experiment and render the combined markdown report."""
    sections: list[str] = ["# Reproduction report\n"]

    t1 = runner.run_table1()
    sections.append("## Table I — accuracy & latency vs. time steps\n")
    sections.append(_md_table(
        ["T", "acc % (paper)", "acc % (ours)", "lat us (paper)",
         "lat us (ours)"],
        [[r["num_steps"], f"{r['paper_accuracy_pct']:.2f}",
          f"{r['accuracy_pct']:.2f}", f"{r['paper_latency_us']:.0f}",
          f"{r['latency_us']:.0f}"] for r in t1["rows"]]))

    t2 = runner.run_table2()
    sections.append("\n## Table II — scaling with convolution units\n")
    sections.append(_md_table(
        ["units", "lat us (paper/ours)", "power W (paper/ours)",
         "LUTs (paper/ours)", "FFs (paper/ours)"],
        [[r["units"],
          f"{r['paper_latency_us']:.0f} / {r['latency_us']:.0f}",
          f"{r['paper_power_w']:.2f} / {r['power_w']:.2f}",
          f"{r['paper_luts']:,} / {r['luts']:,}",
          f"{r['paper_ffs']:,} / {r['ffs']:,}"] for r in t2["rows"]]))

    t3 = runner.run_table3(include_vgg=include_vgg)
    sections.append("\n## Table III — accelerator comparison\n")
    sections.append(_md_table(
        ["platform", "dataset", "acc %", "MHz", "lat us", "fps", "W",
         "LUTs", "FFs"],
        [[r["label"], r["dataset"], f"{r['accuracy_pct']:.1f}",
          f"{r['frequency_mhz']:.0f}", f"{r['latency_us']:,.0f}",
          f"{r['throughput_fps']:,.1f}", f"{r['power_w']:.2f}",
          f"{r['luts']:,}", f"{r['ffs']:,}"] for r in t3["rows"]]))

    enc = runner.run_encoding_ablation()
    comparison = enc["comparison"]
    sections.append("\n## Encoding ablation — radix vs. rate\n")
    radix, rate = enc["radix"], enc["rate"]
    all_t = sorted(set(radix.num_steps) | set(rate.num_steps))

    def cell(curve, t):
        if t in curve.num_steps:
            return f"{curve.accuracies[curve.num_steps.index(t)]*100:.2f}"
        return "—"

    sections.append(_md_table(
        ["T", "radix acc %", "rate acc %"],
        [[t, cell(radix, t), cell(rate, t)] for t in all_t]))
    gain = (f"{comparison.efficiency_gain * 100:.0f}%"
            if comparison.efficiency_gain is not None else "n/a")
    sections.append(
        f"\nRadix reaches the target at T={comparison.radix_steps}, rate "
        f"at T={comparison.rate_steps}; efficiency gain {gain} "
        "(paper: ~40%).")

    flow = runner.run_dataflow_ablation()
    summary = flow["summary"]
    sections.append("\n## Dataflow ablation — memory traffic\n")
    sections.append(_md_table(
        ["dataflow", "activation reads (bits)", "kernel reads (values)"],
        [["row-based (ours)",
          f"{summary.rowwise.activation_read_bits:,}",
          f"{summary.rowwise.kernel_read_values:,}"],
         ["naive sliding window",
          f"{summary.naive.activation_read_bits:,}",
          f"{summary.naive.kernel_read_values:,}"],
         ["reduction",
          f"{summary.activation_read_reduction:.1f}x",
          f"{summary.kernel_read_reduction:.1f}x"]]))

    return "\n".join(sections) + "\n"


def write_report(runner: ExperimentRunner, path: str | Path,
                 include_vgg: bool = True) -> Path:
    """Build the report and write it to ``path``; returns the path."""
    path = Path(path)
    path.write_text(build_report(runner, include_vgg=include_vgg))
    return path

"""Sweep work lists: tasks, shards and merged outcomes.

A *task* is one (network, accelerator config, dataset, backend) cell of a
sweep — a Table II unit-count point, an encoding-ablation T point, or a
whole test set to score.  The driver shards each task's image range into
:class:`WorkUnit` slices, fans the units out over worker processes, and
merges the per-shard results back into one :class:`TaskOutcome` per task.

Everything that crosses a process boundary here is plain picklable state:
frozen dataclasses of numpy arrays (``QuantizedNetwork``,
``AcceleratorConfig``, ``LatencyCalibration``) and integer counters
(:class:`~repro.core.engine.trace.TraceMerge`).  Merging is deterministic
by construction — predictions concatenate in shard order and trace
counters are commutative integer sums — so any worker count and any shard
size reproduce the single-process result bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.calibration import DEFAULT_LATENCY, LatencyCalibration
from repro.core.config import AcceleratorConfig
from repro.core.engine.trace import TraceMerge
from repro.errors import ConfigurationError, ShapeError
from repro.snn.spec import QuantizedNetwork

__all__ = ["ShardResult", "SweepTask", "TaskOutcome", "WorkUnit",
           "shard_tasks", "sweep_store_key"]


def sweep_store_key(task_key: str, backend: str) -> str:
    """Persistent-store key for one sweep cell.

    The single definition of the format — the driver persists under it
    and callers short-circuit on it; including the engine name is the
    contract that keeps results computed under different backends apart.
    """
    return f"sweep_{task_key}_{backend}"


@dataclass(frozen=True)
class SweepTask:
    """One cell of a sweep: a deployment plus the images it must score.

    ``key`` identifies the cell in outcomes and in the persistent result
    store; it should name everything that determines the result (model,
    T, config, dataset) — the driver appends the backend name itself so
    results computed under different engines can never be confused.
    """

    key: str
    network: QuantizedNetwork
    config: AcceleratorConfig
    images: np.ndarray            # (N, C, H, W) floats in [0, 1]
    labels: np.ndarray            # (N,) int class labels
    backend: str = "vectorized"
    calibration: LatencyCalibration = DEFAULT_LATENCY

    def __post_init__(self) -> None:
        if self.images.ndim != 4:
            raise ShapeError(
                f"task {self.key!r}: images must be (N, C, H, W), got "
                f"shape {self.images.shape}")
        if self.labels.shape != (self.images.shape[0],):
            raise ShapeError(
                f"task {self.key!r}: {self.images.shape[0]} images but "
                f"labels shaped {self.labels.shape}")
        if len(self.images) == 0:
            raise ConfigurationError(
                f"task {self.key!r} has no images to run")

    @property
    def num_images(self) -> int:
        return int(self.images.shape[0])

    @classmethod
    def from_dataset(cls, key: str, network: QuantizedNetwork,
                     config: AcceleratorConfig, dataset,
                     backend: str = "vectorized",
                     calibration: LatencyCalibration = DEFAULT_LATENCY,
                     ) -> "SweepTask":
        """Build a task covering a whole :class:`~repro.data.Dataset`."""
        return cls(key=key, network=network, config=config,
                   images=dataset.images, labels=dataset.labels,
                   backend=backend, calibration=calibration)


@dataclass(frozen=True)
class WorkUnit:
    """One shard of one task: the half-open image range [start, stop)."""

    task_index: int
    task_key: str
    shard_index: int
    start: int
    stop: int

    @property
    def num_images(self) -> int:
        return self.stop - self.start


@dataclass
class ShardResult:
    """What a worker sends back for one completed :class:`WorkUnit`."""

    task_index: int
    task_key: str
    shard_index: int
    start: int
    stop: int
    predictions: np.ndarray       # (stop - start,) int64 argmax classes
    correct: int
    trace: TraceMerge
    elapsed_s: float
    worker_pid: int

    @property
    def num_images(self) -> int:
        return self.stop - self.start


@dataclass
class TaskOutcome:
    """A task's merged result: predictions in image order plus aggregates."""

    key: str
    backend: str
    predictions: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64))
    correct: int = 0
    num_images: int = 0
    trace: TraceMerge = field(default_factory=TraceMerge)
    elapsed_s: float = 0.0        # summed worker wall time (CPU-seconds)
    num_shards: int = 0
    cached: bool = False          # served from the persistent store

    @property
    def accuracy(self) -> float:
        return self.correct / self.num_images if self.num_images else 0.0

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "backend": self.backend,
            "predictions": self.predictions.tolist(),
            "correct": self.correct,
            "num_images": self.num_images,
            "trace": self.trace.to_dict(),
            "elapsed_s": self.elapsed_s,
            "num_shards": self.num_shards,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TaskOutcome":
        return cls(
            key=payload["key"],
            backend=payload["backend"],
            predictions=np.asarray(payload["predictions"], dtype=np.int64),
            correct=int(payload["correct"]),
            num_images=int(payload["num_images"]),
            trace=TraceMerge.from_dict(payload["trace"]),
            elapsed_s=float(payload["elapsed_s"]),
            num_shards=int(payload["num_shards"]),
            cached=True,
        )


def shard_tasks(tasks, shard_size) -> list[WorkUnit]:
    """Slice every task's image range into work units.

    ``shard_size`` is one images-per-unit count applied to every task, or
    a sequence of per-task counts (the adaptive driver sizes shards from
    measured per-image cost, so heterogeneous tasks get different
    sizes).  Units are emitted task-major in ascending image order; the
    merge re-sorts by ``(task_index, start)`` anyway, so neither
    scheduling order nor the shard sizes affect results.
    """
    tasks = list(tasks)
    if isinstance(shard_size, int):
        sizes = [shard_size] * len(tasks)
    else:
        sizes = [int(s) for s in shard_size]
        if len(sizes) != len(tasks):
            raise ConfigurationError(
                f"{len(tasks)} tasks but {len(sizes)} shard sizes")
    if any(size < 1 for size in sizes):
        raise ConfigurationError(
            f"shard_size must be >= 1, got {sizes}")
    units: list[WorkUnit] = []
    for task_index, (task, size) in enumerate(zip(tasks, sizes)):
        for shard_index, start in enumerate(
                range(0, task.num_images, size)):
            stop = min(start + size, task.num_images)
            units.append(WorkUnit(
                task_index=task_index, task_key=task.key,
                shard_index=shard_index, start=start, stop=stop))
    return units

"""The sweep driver: sharded execution over the runtime worker fabric.

:class:`SweepDriver` takes a work list of :class:`SweepTask` cells
(configs × datasets), shards each cell's image range, and runs the
shards across a :class:`~repro.runtime.WorkerGroup` — any mix of
``thread`` lanes (in-process), ``process`` lanes (forked children) and
``host:port`` remote TCP engine workers (hosts running ``repro worker
--listen``).  The driver owns only sweep *policy* — sharding, adaptive
sizing, the persistent result store, progress reporting — while the
fabric owns worker lifecycle: scheduling, work stealing between idle
lanes, heartbeat liveness and crash requeueing.

Multi-model and elastic, since the deployment-registry refactor:

* A heterogeneous work list (LeNet cells next to Fang or VGG cells, any
  encoding) builds its deployment table **deduplicated by content
  fingerprint** — tasks sharing a model share one warm engine slot on
  every lane.
* ``run(tasks, group=...)`` schedules onto an *external* live
  :class:`~repro.runtime.WorkerGroup` (appending its deployments via
  ``add_deployments``) instead of owning one — the same group can serve
  inference traffic and sweep shards concurrently.
* ``accept=(host, port)`` opens a
  :class:`~repro.runtime.GroupListener` for the duration of the run, so
  hosts running ``repro worker --join host:port`` enter the sweep
  **mid-run** as new lanes.
* ``stream=callable`` receives one JSON-ready record per completed
  shard (deployment, image range, cycles, running top-1) — the live
  feed ``repro sweep --stream out.jsonl`` writes for dashboards.

Determinism contract: for any lane mix, any shard size **and any lane
churn mid-run** (joins, removals, evictions, re-admissions) the merged
predictions, accuracies and trace counters are bit-identical to a
single-process run (``tests/test_sweep.py``, ``tests/test_runtime.py``
and ``tests/test_multimodel.py`` pin this; ``benchmarks/bench_runtime.py``
asserts it across a live TCP fabric).  Store keys include the backend
name, so results computed under one engine can never be served to a run
requesting another.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.core.engine import warm_engine
from repro.core.engine.cache import content_key
from repro.core.engine.calibrate import (
    DEFAULT_DISPATCH_COST_S,
    lookup_table,
)
from repro.errors import ConfigurationError
from repro.harness.artifacts import ArtifactStore
from repro.harness.sweep.work import (
    ShardResult,
    SweepTask,
    TaskOutcome,
    WorkUnit,
    shard_tasks,
    sweep_store_key,
)
from repro.runtime import (
    Deployment,
    DeploymentRegistry,
    GroupListener,
    WorkItem,
    WorkerGroup,
    create_workers,
    normalize_worker_specs,
)

__all__ = ["SweepDriver", "SweepProgress", "SweepSummary"]

#: Adaptive sizing aims for this many units per worker: enough
#: granularity that a straggling shard cannot tail-block the pool, few
#: enough that per-unit overhead stays negligible.
_ADAPTIVE_UNITS_PER_WORKER = 8

#: Saturation-aware sizing grows shards until per-unit overhead (batch
#: setup + fabric dispatch) drops below this fraction of the unit's
#: compute time — the lane spends >= 95 % of its wall clock computing.
_SATURATE_OVERHEAD_FRACTION = 0.05


@dataclass(frozen=True)
class SweepProgress:
    """One progress tick, emitted after every completed work unit."""

    done_units: int
    total_units: int
    done_images: int
    total_images: int
    elapsed_s: float
    task_key: str

    @property
    def images_per_second(self) -> float:
        return self.done_images / self.elapsed_s if self.elapsed_s else 0.0


@dataclass
class SweepSummary:
    """Wall-clock totals of one ``SweepDriver.run`` call."""

    workers: int
    shard_size: int
    num_tasks: int
    num_units: int
    num_images: int
    cached_tasks: int
    wall_s: float
    adaptive: bool = False
    #: True when shard sizes came from the saturation-aware sizer.
    saturate: bool = False
    #: Per-task shard sizes chosen by the adaptive/saturating probe
    #: (key -> images per unit); ``None`` for fixed-size runs.
    task_shard_sizes: dict | None = None
    #: The lane specs the fabric ran on (("thread",), ("process", ...)).
    executors: tuple = ()
    #: Lanes evicted mid-run (dead processes / dropped hosts) — their
    #: work was requeued, so results are unaffected.
    worker_crashes: int = 0
    #: Units an idle lane stole from a busy peer's queue.
    stolen_units: int = 0
    #: Distinct deployment-table slots the task list deduplicated to.
    num_deployments: int = 0
    #: Lanes that joined the group mid-run (``repro worker --join`` or
    #: ``add_lane``); their work merges identically by contract.
    lanes_joined: int = 0
    #: Evicted lanes re-admitted after a successful probation probe.
    lanes_readmitted: int = 0

    @property
    def images_per_second(self) -> float:
        return self.num_images / self.wall_s if self.wall_s else 0.0


class SweepDriver:
    """Runs sweep work lists over the runtime worker fabric.

    Parameters
    ----------
    workers:
        Lane request for the :class:`~repro.runtime.WorkerGroup`.  An
        integer keeps its historical meaning — ``1`` is one in-process
        lane (the determinism baseline every other mix is compared
        against), ``N`` is ``N`` forked process lanes.  A list of spec
        strings names an explicit mix: ``"thread"``, ``"process"``,
        multipliers like ``"process:4"``, or ``"host:port"`` for remote
        TCP engine workers (``repro sweep --workers host:7601,thread``).
    shard_size:
        Images per work unit.  Smaller shards balance better across
        lanes; the merged result is invariant to this choice.
    adaptive:
        Size shards from a measured per-image cost probe instead of
        using ``shard_size`` uniformly: each pending task runs a few
        probe images inline (on its warm engine — the work is not
        wasted, the compile is reused), and shard sizes are chosen so
        every unit costs roughly the same wall time.  Heterogeneous work
        lists (a VGG cell next to LeNet cells) then finish together
        instead of the expensive task tail-blocking the pool.  Results
        remain bit-identical — shard boundaries never affect the merge.
    saturate:
        Saturation-aware shard sizing (mutually exclusive with
        ``adaptive``): probe each task's per-image *and* per-batch cost
        inline, add the deployment's calibrated fabric dispatch cost
        (from its :class:`~repro.core.engine.calibrate.CalibrationTable`
        when one exists), and grow shards until per-unit overhead falls
        below 5 % of unit compute — lanes then spend their wall clock
        computing, not dispatching.  Matters most for cheap-per-image
        work (sparse/event workloads) where a fixed shard size leaves
        lanes dominated by dispatch.  Results remain bit-identical —
        shard boundaries never affect the merge.
    probe_images:
        Images per adaptive/saturating cost probe (clamped to the task
        size).
    steal:
        Let idle lanes steal queued units from busy peers (default).
        Turning it off pins units to their initially assigned lane —
        useful only as the static baseline stealing is measured against.
    store:
        Optional :class:`ArtifactStore`; merged outcomes are persisted
        under ``sweep_<task key>_<backend>`` and served from disk on
        re-runs of the same cell.
    progress:
        Optional callable receiving a :class:`SweepProgress` after every
        completed unit (throughput reporting).
    stream:
        Optional callable receiving one JSON-ready dict per completed
        shard (task key, deployment fingerprint, image range, cycles,
        running top-1) — fired live from the fabric's dispatcher
        threads, serialized under a lock.
    accept:
        Optional ``(host, port)``: open a group listener for the run so
        ``repro worker --join host:port`` hosts enter as lanes mid-run
        (``port=0`` binds ephemeral; the bound port lands in
        ``self.listener.port`` once the run is live).
    token:
        Fabric shared secret for remote lanes and joining hosts.
    """

    def __init__(
        self,
        workers=1,
        shard_size: int = 64,
        store: ArtifactStore | None = None,
        progress=None,
        adaptive: bool = False,
        saturate: bool = False,
        probe_images: int = 4,
        steal: bool = True,
        heartbeat_s: float = 2.0,
        stream=None,
        accept: tuple[str, int] | None = None,
        token: str | None = None,
        window: int | None = None,
    ) -> None:
        if probe_images < 1:
            raise ConfigurationError(
                f"probe_images must be >= 1, got {probe_images}")
        if adaptive and saturate:
            raise ConfigurationError(
                "adaptive and saturate shard sizing are mutually "
                "exclusive — pick one")
        self.worker_specs = normalize_worker_specs(workers)
        self.workers = workers
        self.shard_size = shard_size
        self.adaptive = adaptive
        self.saturate = saturate
        self.probe_images = probe_images
        self.steal = steal
        self.heartbeat_s = heartbeat_s
        self.store = store
        self.progress = progress
        self.stream = stream
        self.accept = accept
        self.token = token
        if window is not None and window < 1:
            raise ConfigurationError(
                f"window must be >= 1, got {window}")
        #: In-flight chunk window per pipelined lane (None = derived per
        #: lane from calibrated dispatch cost vs. measured service time).
        self.window = window
        self.listener: GroupListener | None = None  # live during a run
        self.last_summary: SweepSummary | None = None

    # ------------------------------------------------------------------
    @staticmethod
    def store_key(task: SweepTask) -> str:
        """Persistent-store key; includes the engine name by contract."""
        return sweep_store_key(task.key, task.backend)

    def run(self, tasks, group: WorkerGroup | None = None
            ) -> dict[str, TaskOutcome]:
        """Execute a work list; returns ``{task key: merged outcome}``.

        With ``group`` given (a *started* :class:`WorkerGroup`), the
        sweep schedules onto that shared fabric instead of owning one:
        its deployments are appended to the group's table (content-equal
        entries reuse existing slots) and the group is left running —
        serving traffic and other sweeps continue uninterrupted.
        """
        tasks = list(tasks)
        if not tasks:
            raise ConfigurationError("sweep work list is empty")
        keys = [task.key for task in tasks]
        if len(set(keys)) != len(keys):
            raise ConfigurationError(
                f"sweep task keys must be unique, got {keys}")

        started = time.perf_counter()
        outcomes: dict[str, TaskOutcome] = {}
        pending: list[SweepTask] = []
        for task in tasks:
            if self.store is not None and self.store.has_result(
                    self.store_key(task)):
                outcomes[task.key] = TaskOutcome.from_dict(
                    self.store.load_result(self.store_key(task)))
            else:
                pending.append(task)

        units: list[WorkUnit] = []
        task_shard_sizes: dict | None = None
        fabric = {"crashes": 0, "stolen": 0, "deployments": 0,
                  "joined": 0, "readmitted": 0}
        if pending:
            sizes: int | list[int] = self.shard_size
            if self.adaptive:
                sizes = self._adaptive_shard_sizes(pending)
                task_shard_sizes = {task.key: size for task, size
                                    in zip(pending, sizes)}
            elif self.saturate:
                sizes = self._saturating_shard_sizes(pending)
                task_shard_sizes = {task.key: size for task, size
                                    in zip(pending, sizes)}
            units = shard_tasks(pending, sizes)
            results = self._run_fabric(pending, units, fabric, group)
            for task, outcome in zip(pending,
                                     self._merge(pending, results)):
                outcomes[task.key] = outcome
                if self.store is not None:
                    self.store.save_result(self.store_key(task),
                                           outcome.to_dict())

        self.last_summary = SweepSummary(
            workers=len(self.worker_specs), shard_size=self.shard_size,
            num_tasks=len(tasks),
            num_units=len(units),
            num_images=sum(t.num_images for t in pending),
            cached_tasks=len(tasks) - len(pending),
            wall_s=time.perf_counter() - started,
            adaptive=self.adaptive,
            saturate=self.saturate,
            task_shard_sizes=task_shard_sizes,
            executors=tuple(self.worker_specs),
            worker_crashes=fabric["crashes"],
            stolen_units=fabric["stolen"],
            num_deployments=fabric["deployments"],
            lanes_joined=fabric["joined"],
            lanes_readmitted=fabric["readmitted"])
        return {key: outcomes[key] for key in keys}

    # ------------------------------------------------------------------
    # Adaptive shard sizing
    # ------------------------------------------------------------------
    def _adaptive_shard_sizes(self, tasks) -> list[int]:
        """Equal-cost shard sizes from a measured per-image probe.

        Runs ``probe_images`` of each task through its warm engine (the
        compile this triggers is exactly the one the run needs, so the
        probe's dominant cost is paid anyway) and sizes shards so each
        unit costs about ``total cost / (lanes x
        _ADAPTIVE_UNITS_PER_WORKER)`` seconds: cheap tasks get wide
        shards, expensive ones narrow shards, and the fabric drains
        units of comparable wall time.  Only scheduling changes — the
        merged outcome is bit-identical to any fixed shard size.
        """
        costs = []
        for task in tasks:
            engine = warm_engine(task.network, task.config, task.backend,
                                 task.calibration)
            probe = task.images[:min(self.probe_images, task.num_images)]
            start_time = time.perf_counter()
            engine.run_batch(probe)
            elapsed = time.perf_counter() - start_time
            # Guard against timer quantization on very fast probes.
            costs.append(max(elapsed / len(probe), 1e-9))
        total_cost = sum(cost * task.num_images
                         for cost, task in zip(costs, tasks))
        target = total_cost / (len(self.worker_specs)
                               * _ADAPTIVE_UNITS_PER_WORKER)
        sizes = []
        for cost, task in zip(costs, tasks):
            size = int(target / cost) if cost else task.num_images
            sizes.append(max(1, min(size, task.num_images,
                                    4 * self.shard_size)))
        return sizes

    def _saturating_shard_sizes(self, tasks) -> list[int]:
        """Grow shards until per-unit overhead stops mattering.

        Every work unit pays a fixed tax — the engine's per-batch setup
        plus the fabric's dispatch cost (submit, transfer, result
        shipping).  The adaptive sizer ignores that tax; on cheap
        sparse/event workloads it dominates, and lanes spend their time
        dispatching instead of computing.  This sizer measures each
        task's per-image and per-batch cost inline (batch-of-1 vs
        batch-of-K on the warm engine, best of three so a stray
        scheduler hiccup cannot skew the split; the K probe images are
        strided across the whole stream, since event workloads bunch
        silent and live frames and the head alone misleads), takes the
        dispatch cost from the
        deployment's calibration table when ``repro calibrate`` has
        measured one (:data:`DEFAULT_DISPATCH_COST_S` otherwise), and
        picks the smallest shard where overhead is under
        :data:`_SATURATE_OVERHEAD_FRACTION` of unit compute — capped so
        every lane still gets at least two units to balance across.
        Only scheduling changes; the merge is bit-identical regardless.
        """
        lanes = max(len(self.worker_specs), 1)
        sizes = []
        for task in tasks:
            engine = warm_engine(task.network, task.config, task.backend,
                                 task.calibration)
            k = min(max(self.probe_images * 4, 16), task.num_images)
            stride = max(task.num_images // k, 1)
            sample = task.images[::stride][:k]
            t1 = min(self._timed(engine, sample[:1])
                     for _ in range(5))
            per_image = max(t1, 1e-9)
            per_batch = 0.0
            if k > 1:
                tk = min(self._timed(engine, sample)
                         for _ in range(5))
                # The marginal estimate subtracts two noisy timings, so
                # pin it to its physical bounds: one image can never
                # cost more than a whole batch-of-1 run (t1, which also
                # pays the batch setup) nor less than half the naive
                # per-image average — a scheduler spike in tk or t1
                # otherwise poisons the split and the shard size with it.
                per_image = (tk - t1) / (k - 1)
                per_image = max(min(per_image, t1), tk / (2 * k), 1e-9)
                per_batch = max(t1 - per_image, 0.0)
            table = lookup_table(content_key(
                task.network, task.config, task.calibration))
            dispatch = DEFAULT_DISPATCH_COST_S
            if table is not None and table.dispatch_cost_s:
                dispatch = table.dispatch_cost_s
            overhead = per_batch + dispatch
            amortized = math.ceil(
                overhead / (_SATURATE_OVERHEAD_FRACTION * per_image))
            balance_cap = math.ceil(task.num_images / (lanes * 2))
            sizes.append(max(1, min(amortized, balance_cap,
                                    task.num_images)))
        return sizes

    @staticmethod
    def _calibrated_dispatch_cost(tasks) -> float | None:
        """The measured per-chunk dispatch cost to credit windows with.

        The sweep's lanes serve every task, so the *largest* calibrated
        cost across the work list is the one worth hiding — a bigger
        cost credits a deeper window, which degrades to harmless extra
        overlap for the cheaper tasks.  None (no task calibrated with
        ``measure_dispatch``) lets the group fall back to its default.
        """
        costs = []
        for task in tasks:
            table = lookup_table(content_key(
                task.network, task.config, task.calibration))
            if table is not None and table.dispatch_cost_s:
                costs.append(float(table.dispatch_cost_s))
        return max(costs) if costs else None

    @staticmethod
    def _timed(engine, images) -> float:
        start = time.perf_counter()
        engine.run_batch(images)
        return time.perf_counter() - start

    # ------------------------------------------------------------------
    # Execution: hand the units to the worker fabric
    # ------------------------------------------------------------------
    @staticmethod
    def _deployment_table(tasks) -> tuple[list[Deployment], list[int]]:
        """Content-deduplicated deployments plus one index per task.

        Two cells scoring the same model under the same config and
        backend (a rate vs radix ablation re-using one network, a
        dataset split) share a table slot — every lane then warms one
        engine for both, and a joining host deploys the minimal table.
        Dedup is the registry's (one definition of "same content");
        task keys, unique by `run`'s validation, are the entry names.
        """
        registry = DeploymentRegistry()
        task_indices = [
            registry.register(task.key, Deployment(
                network=task.network, config=task.config,
                backend=task.backend,
                calibration=task.calibration)).index
            for task in tasks]
        return registry.table(), task_indices

    def _run_fabric(self, tasks, units, fabric: dict,
                    group: WorkerGroup | None = None
                    ) -> list[ShardResult]:
        """Run every unit through a WorkerGroup; returns shard results
        in unit order and records the fabric's counters in ``fabric``."""
        deployments, task_indices = self._deployment_table(tasks)
        fabric["deployments"] = len(deployments)
        tracker = _ProgressTracker(
            self, tasks, units,
            fingerprints=[deployments[i].fingerprint.split(":", 1)[1][:12]
                          for i in task_indices])
        own_group = group is None
        if own_group:
            group = WorkerGroup(
                create_workers(self.worker_specs, token=self.token),
                deployments=deployments, steal=self.steal,
                heartbeat_s=self.heartbeat_s, window=self.window,
                dispatch_cost_s=self._calibrated_dispatch_cost(tasks))
            indices = task_indices
        else:
            if not group.started:
                raise ConfigurationError(
                    "external worker group must be started before "
                    "run(tasks, group=...)")
            slots = group.add_deployments(deployments)
            indices = [slots[i] for i in task_indices]
        items = [WorkItem(item_id=index,
                          deployment=indices[unit.task_index],
                          images=tasks[unit.task_index]
                          .images[unit.start:unit.stop])
                 for index, unit in enumerate(units)]
        metrics_before = group.metrics.to_dict() if not own_group else None
        try:
            if own_group:
                group.start()
            if self.accept is not None:
                # Joiners are admitted whichever group runs the sweep.
                # On an external (shared) group the lanes outlive the
                # run — only the listener closes with it.
                self.listener = GroupListener(
                    group, self.accept[0], self.accept[1],
                    token=self.token).start()
            work_results = group.run(
                items,
                result_callback=lambda result: tracker.tick(
                    units[result.item_id], result))
            after = group.metrics.to_dict()
            before = metrics_before or {}
            for key, field_name in (("crashes", "worker_crashes"),
                                    ("stolen", "stolen"),
                                    ("joined", "lanes_added"),
                                    ("readmitted", "readmitted")):
                fabric[key] = (after[field_name]
                               - before.get(field_name, 0))
        finally:
            if self.listener is not None:
                self.listener.close()
                self.listener = None
            if own_group:
                group.stop()
        shard_results = []
        for unit, result in zip(units, work_results):
            task = tasks[unit.task_index]
            predictions = result.predictions
            shard_results.append(ShardResult(
                task_index=unit.task_index, task_key=unit.task_key,
                shard_index=unit.shard_index, start=unit.start,
                stop=unit.stop, predictions=predictions,
                correct=int((predictions
                             == task.labels[unit.start:unit.stop]).sum()),
                trace=result.merged_trace(),
                elapsed_s=result.elapsed_s,
                worker_pid=result.pid))
        return shard_results

    # ------------------------------------------------------------------
    def _merge(self, tasks, results) -> list[TaskOutcome]:
        """Deterministic merge: shards sorted by image range, per task."""
        by_task: dict[int, list[ShardResult]] = {
            i: [] for i in range(len(tasks))}
        for result in results:
            by_task[result.task_index].append(result)
        outcomes = []
        for index, task in enumerate(tasks):
            shards = sorted(by_task[index], key=lambda r: r.start)
            outcome = TaskOutcome(key=task.key, backend=task.backend)
            outcome.predictions = np.concatenate(
                [shard.predictions for shard in shards])
            outcome.num_shards = len(shards)
            for shard in shards:
                outcome.correct += shard.correct
                outcome.num_images += shard.num_images
                outcome.trace.merge(shard.trace)
                outcome.elapsed_s += shard.elapsed_s
            outcomes.append(outcome)
        return outcomes


class _ProgressTracker:
    """Counts completed units/images; fires progress and stream hooks.

    Ticks arrive from the fabric's dispatcher threads, so the counters
    are guarded by a lock and callbacks are serialized.  The stream
    record is the live per-shard feed (``repro sweep --stream``): one
    JSON-ready dict per completed unit carrying the shard's identity,
    its cycle cost and the task's running top-1 — everything a dashboard
    needs without waiting for the merge.
    """

    def __init__(self, driver: SweepDriver, tasks, units,
                 fingerprints: list[str] | None = None) -> None:
        self.driver = driver
        self.tasks = list(tasks)
        self.fingerprints = fingerprints or [""] * len(self.tasks)
        self.total_units = len(units)
        self.total_images = sum(task.num_images for task in tasks)
        self.done_units = 0
        self.done_images = 0
        # Running per-task tallies for the stream's "top-1 so far".
        self._task_correct = [0] * len(self.tasks)
        self._task_images = [0] * len(self.tasks)
        self.started = time.perf_counter()
        self._lock = threading.Lock()

    def tick(self, unit: WorkUnit, result) -> None:
        with self._lock:
            self.done_units += 1
            self.done_images += unit.stop - unit.start
            elapsed = time.perf_counter() - self.started
            if self.driver.stream is not None:
                task = self.tasks[unit.task_index]
                correct = int((result.predictions
                               == task.labels[unit.start:unit.stop]).sum())
                self._task_correct[unit.task_index] += correct
                self._task_images[unit.task_index] += unit.num_images
                merged = result.merged_trace()
                self.driver.stream({
                    "task_key": unit.task_key,
                    "deployment": self.fingerprints[unit.task_index],
                    "backend": task.backend,
                    "shard_index": unit.shard_index,
                    "start": unit.start,
                    "stop": unit.stop,
                    "images": unit.num_images,
                    "correct": correct,
                    "cycles": merged.total_cycles,
                    "top1_so_far": (self._task_correct[unit.task_index]
                                    / self._task_images[unit.task_index]),
                    "worker": result.worker,
                    "elapsed_s": result.elapsed_s,
                    "done_units": self.done_units,
                    "total_units": self.total_units,
                    "wall_s": elapsed,
                })
            if self.driver.progress is not None:
                self.driver.progress(SweepProgress(
                    done_units=self.done_units,
                    total_units=self.total_units,
                    done_images=self.done_images,
                    total_images=self.total_images,
                    elapsed_s=elapsed,
                    task_key=unit.task_key))

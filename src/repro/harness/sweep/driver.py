"""The sweep driver: sharded multi-process execution with merged results.

:class:`SweepDriver` takes a work list of :class:`SweepTask` cells
(configs × datasets), shards each cell's image range, and runs the shards
across ``workers`` processes — each worker holds one lazily-built
execution engine per task (the vectorized engine, unless a task says
otherwise) and streams back per-shard predictions plus a
:class:`~repro.core.engine.trace.TraceMerge`.  The driver merges shards
deterministically, reports progress/throughput as units complete, and
persists merged outcomes to an :class:`~repro.harness.artifacts.
ArtifactStore` so re-running a sweep re-executes nothing.

Determinism contract: for any worker count and any shard size the merged
predictions, accuracies and trace counters are bit-identical to a
single-process run (``tests/test_sweep.py`` pins this).  Store keys
include the backend name, so results computed under one engine can never
be served to a run requesting another.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass

import multiprocessing as mp

import numpy as np

from repro.core.engine import warm_engine
from repro.core.engine.trace import TraceMerge
from repro.errors import ConfigurationError
from repro.harness.artifacts import ArtifactStore
from repro.harness.sweep.work import (
    ShardResult,
    SweepTask,
    TaskOutcome,
    WorkUnit,
    shard_tasks,
    sweep_store_key,
)

__all__ = ["SweepDriver", "SweepProgress", "SweepSummary"]

#: Upper bound on queued futures per worker; keeps memory flat on huge
#: work lists without ever idling a worker.
_INFLIGHT_PER_WORKER = 4

#: Adaptive sizing aims for this many units per worker: enough
#: granularity that a straggling shard cannot tail-block the pool, few
#: enough that per-unit overhead stays negligible.
_ADAPTIVE_UNITS_PER_WORKER = 8


@dataclass(frozen=True)
class SweepProgress:
    """One progress tick, emitted after every completed work unit."""

    done_units: int
    total_units: int
    done_images: int
    total_images: int
    elapsed_s: float
    task_key: str

    @property
    def images_per_second(self) -> float:
        return self.done_images / self.elapsed_s if self.elapsed_s else 0.0


@dataclass
class SweepSummary:
    """Wall-clock totals of one ``SweepDriver.run`` call."""

    workers: int
    shard_size: int
    num_tasks: int
    num_units: int
    num_images: int
    cached_tasks: int
    wall_s: float
    adaptive: bool = False
    #: Per-task shard sizes chosen by the adaptive probe (key -> images
    #: per unit); ``None`` for fixed-size runs.
    task_shard_sizes: dict | None = None

    @property
    def images_per_second(self) -> float:
        return self.num_images / self.wall_s if self.wall_s else 0.0


# ----------------------------------------------------------------------
# Worker side: one engine per task, built lazily, cached per process
# ----------------------------------------------------------------------
_WORKER_TASKS: list[SweepTask] | None = None
_WORKER_ENGINES: dict[int, object] = {}


def _init_worker(tasks: list[SweepTask]) -> None:
    """Process-pool initializer: receive the task list once per worker."""
    global _WORKER_TASKS
    _WORKER_TASKS = tasks
    _WORKER_ENGINES.clear()


def _engine_for(task_index: int):
    """The worker's engine for one task, from the warm-instance cache.

    The per-task dict keeps repeat lookups O(1); behind it,
    :func:`~repro.core.engine.warm_engine` dedupes by content — so a
    task re-run in a later ``SweepDriver.run`` (or probed by the
    adaptive sizer, or already compiled before a fork) reuses the
    compiled model instead of recompiling.  Reuse is bit-identical by
    the warm-cache contract.
    """
    engine = _WORKER_ENGINES.get(task_index)
    if engine is None:
        task = _WORKER_TASKS[task_index]
        engine = warm_engine(task.network, task.config, task.backend,
                             task.calibration)
        _WORKER_ENGINES[task_index] = engine
    return engine


def _run_unit(unit: WorkUnit) -> ShardResult:
    """Execute one shard; runs in a worker process (or inline)."""
    task = _WORKER_TASKS[unit.task_index]
    engine = _engine_for(unit.task_index)
    start_time = time.perf_counter()
    logits, traces = engine.run_batch(task.images[unit.start:unit.stop])
    predictions = logits.argmax(axis=1).astype(np.int64)
    correct = int(
        (predictions == task.labels[unit.start:unit.stop]).sum())
    return ShardResult(
        task_index=unit.task_index, task_key=unit.task_key,
        shard_index=unit.shard_index, start=unit.start, stop=unit.stop,
        predictions=predictions, correct=correct,
        trace=TraceMerge.from_traces(traces),
        elapsed_s=time.perf_counter() - start_time,
        worker_pid=os.getpid())


class SweepDriver:
    """Runs sweep work lists, optionally across worker processes.

    Parameters
    ----------
    workers:
        Process count.  ``1`` executes inline (no subprocesses) through
        the *same* shard/merge code path, so it is the determinism
        baseline the multi-process runs are compared against.
    shard_size:
        Images per work unit.  Smaller shards balance better across
        workers; the merged result is invariant to this choice.
    adaptive:
        Size shards from a measured per-image cost probe instead of
        using ``shard_size`` uniformly: each pending task runs a few
        probe images inline (on its warm engine — the work is not
        wasted, the compile is reused), and shard sizes are chosen so
        every unit costs roughly the same wall time.  Heterogeneous work
        lists (a VGG cell next to LeNet cells) then finish together
        instead of the expensive task tail-blocking the pool.  Results
        remain bit-identical — shard boundaries never affect the merge.
    probe_images:
        Images per adaptive cost probe (clamped to the task size).
    store:
        Optional :class:`ArtifactStore`; merged outcomes are persisted
        under ``sweep_<task key>_<backend>`` and served from disk on
        re-runs of the same cell.
    progress:
        Optional callable receiving a :class:`SweepProgress` after every
        completed unit (throughput reporting).
    """

    def __init__(
        self,
        workers: int = 1,
        shard_size: int = 64,
        store: ArtifactStore | None = None,
        progress=None,
        adaptive: bool = False,
        probe_images: int = 4,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {workers}")
        if probe_images < 1:
            raise ConfigurationError(
                f"probe_images must be >= 1, got {probe_images}")
        self.workers = workers
        self.shard_size = shard_size
        self.adaptive = adaptive
        self.probe_images = probe_images
        self.store = store
        self.progress = progress
        self.last_summary: SweepSummary | None = None

    # ------------------------------------------------------------------
    @staticmethod
    def store_key(task: SweepTask) -> str:
        """Persistent-store key; includes the engine name by contract."""
        return sweep_store_key(task.key, task.backend)

    def run(self, tasks) -> dict[str, TaskOutcome]:
        """Execute a work list; returns ``{task key: merged outcome}``."""
        tasks = list(tasks)
        if not tasks:
            raise ConfigurationError("sweep work list is empty")
        keys = [task.key for task in tasks]
        if len(set(keys)) != len(keys):
            raise ConfigurationError(
                f"sweep task keys must be unique, got {keys}")

        started = time.perf_counter()
        outcomes: dict[str, TaskOutcome] = {}
        pending: list[SweepTask] = []
        for task in tasks:
            if self.store is not None and self.store.has_result(
                    self.store_key(task)):
                outcomes[task.key] = TaskOutcome.from_dict(
                    self.store.load_result(self.store_key(task)))
            else:
                pending.append(task)

        units: list[WorkUnit] = []
        task_shard_sizes: dict | None = None
        if pending:
            sizes: int | list[int] = self.shard_size
            if self.adaptive:
                sizes = self._adaptive_shard_sizes(pending)
                task_shard_sizes = {task.key: size for task, size
                                    in zip(pending, sizes)}
            units = shard_tasks(pending, sizes)
            if self.workers == 1:
                results = self._run_inline(pending, units)
            else:
                results = self._run_pool(pending, units)
            for task, outcome in zip(pending,
                                     self._merge(pending, results)):
                outcomes[task.key] = outcome
                if self.store is not None:
                    self.store.save_result(self.store_key(task),
                                           outcome.to_dict())

        self.last_summary = SweepSummary(
            workers=self.workers, shard_size=self.shard_size,
            num_tasks=len(tasks),
            num_units=len(units),
            num_images=sum(t.num_images for t in pending),
            cached_tasks=len(tasks) - len(pending),
            wall_s=time.perf_counter() - started,
            adaptive=self.adaptive,
            task_shard_sizes=task_shard_sizes)
        return {key: outcomes[key] for key in keys}

    # ------------------------------------------------------------------
    # Adaptive shard sizing
    # ------------------------------------------------------------------
    def _adaptive_shard_sizes(self, tasks) -> list[int]:
        """Equal-cost shard sizes from a measured per-image probe.

        Runs ``probe_images`` of each task through its warm engine (the
        compile this triggers is exactly the one the run needs, so the
        probe's dominant cost is paid anyway) and sizes shards so each
        unit costs about ``total cost / (workers x
        _ADAPTIVE_UNITS_PER_WORKER)`` seconds: cheap tasks get wide
        shards, expensive ones narrow shards, and the pool drains units
        of comparable wall time.  Only scheduling changes — the merged
        outcome is bit-identical to any fixed shard size.
        """
        costs = []
        for task in tasks:
            engine = warm_engine(task.network, task.config, task.backend,
                                 task.calibration)
            probe = task.images[:min(self.probe_images, task.num_images)]
            start_time = time.perf_counter()
            engine.run_batch(probe)
            elapsed = time.perf_counter() - start_time
            # Guard against timer quantization on very fast probes.
            costs.append(max(elapsed / len(probe), 1e-9))
        total_cost = sum(cost * task.num_images
                         for cost, task in zip(costs, tasks))
        target = total_cost / (self.workers * _ADAPTIVE_UNITS_PER_WORKER)
        sizes = []
        for cost, task in zip(costs, tasks):
            size = int(target / cost) if cost else task.num_images
            sizes.append(max(1, min(size, task.num_images,
                                    4 * self.shard_size)))
        return sizes

    # ------------------------------------------------------------------
    # Execution strategies
    # ------------------------------------------------------------------
    def _run_inline(self, tasks, units) -> list[ShardResult]:
        """workers=1: same shard/merge path, current process, no pickling
        of results — but tasks still round-trip through the worker-state
        globals so the code path matches the pool exactly."""
        _init_worker(tasks)
        try:
            results = []
            tracker = _ProgressTracker(self, tasks, units)
            for unit in units:
                result = _run_unit(unit)
                results.append(result)
                tracker.tick(result)
            return results
        finally:
            _init_worker(None)

    def _run_pool(self, tasks, units) -> list[ShardResult]:
        """Fan units out over a process pool with bounded in-flight work."""
        methods = mp.get_all_start_methods()
        context = mp.get_context("fork" if "fork" in methods else None)
        results: list[ShardResult] = []
        tracker = _ProgressTracker(self, tasks, units)
        queue = list(units)
        with ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context,
                initializer=_init_worker, initargs=(tasks,)) as pool:
            in_flight = set()
            limit = self.workers * _INFLIGHT_PER_WORKER
            while queue or in_flight:
                while queue and len(in_flight) < limit:
                    in_flight.add(pool.submit(_run_unit, queue.pop(0)))
                done, in_flight = wait(in_flight,
                                       return_when=FIRST_COMPLETED)
                for future in done:
                    result = future.result()  # re-raises worker errors
                    results.append(result)
                    tracker.tick(result)
        return results

    # ------------------------------------------------------------------
    def _merge(self, tasks, results) -> list[TaskOutcome]:
        """Deterministic merge: shards sorted by image range, per task."""
        by_task: dict[int, list[ShardResult]] = {
            i: [] for i in range(len(tasks))}
        for result in results:
            by_task[result.task_index].append(result)
        outcomes = []
        for index, task in enumerate(tasks):
            shards = sorted(by_task[index], key=lambda r: r.start)
            outcome = TaskOutcome(key=task.key, backend=task.backend)
            outcome.predictions = np.concatenate(
                [shard.predictions for shard in shards])
            outcome.num_shards = len(shards)
            for shard in shards:
                outcome.correct += shard.correct
                outcome.num_images += shard.num_images
                outcome.trace.merge(shard.trace)
                outcome.elapsed_s += shard.elapsed_s
            outcomes.append(outcome)
        return outcomes


class _ProgressTracker:
    """Counts completed units/images and invokes the progress callback."""

    def __init__(self, driver: SweepDriver, tasks, units) -> None:
        self.driver = driver
        self.total_units = len(units)
        self.total_images = sum(task.num_images for task in tasks)
        self.done_units = 0
        self.done_images = 0
        self.started = time.perf_counter()

    def tick(self, result: ShardResult) -> None:
        self.done_units += 1
        self.done_images += result.stop - result.start
        if self.driver.progress is not None:
            self.driver.progress(SweepProgress(
                done_units=self.done_units, total_units=self.total_units,
                done_images=self.done_images,
                total_images=self.total_images,
                elapsed_s=time.perf_counter() - self.started,
                task_key=result.task_key))

"""Sharded multi-process sweeps over the functional hardware model.

Build a work list of :class:`SweepTask` cells (configs × datasets), hand
it to a :class:`SweepDriver`, and get back merged, bit-deterministic
:class:`TaskOutcome` records — hardware-in-the-loop accuracies plus
aggregated cycle/traffic/energy counters — however many worker processes
and whatever shard size you chose.
"""

from repro.harness.sweep.driver import SweepDriver, SweepProgress, SweepSummary
from repro.harness.sweep.work import (
    ShardResult,
    SweepTask,
    TaskOutcome,
    WorkUnit,
    shard_tasks,
    sweep_store_key,
)

__all__ = [
    "ShardResult",
    "SweepDriver",
    "SweepProgress",
    "SweepSummary",
    "SweepTask",
    "TaskOutcome",
    "WorkUnit",
    "shard_tasks",
    "sweep_store_key",
]

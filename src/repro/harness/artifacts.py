"""Artifact cache: trained models and experiment results on disk.

Training the workload models takes minutes; every experiment that needs a
trained LeNet/Fang-CNN/VGG first consults this cache (keyed by model name,
spike-train length, weight bits, dataset size and seed), so re-running a
benchmark re-trains nothing.  Results are stored as JSON next to the
weights for the EXPERIMENTS.md record.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.nn.network import Sequential

__all__ = ["ArtifactStore", "default_store"]

_DEFAULT_DIR = Path(
    os.environ.get("REPRO_ARTIFACTS", Path(__file__).resolve()
                   .parents[3] / "artifacts"))


class ArtifactStore:
    """Directory-backed cache for trained weights and result records."""

    def __init__(self, root: str | Path = _DEFAULT_DIR) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Trained weights
    # ------------------------------------------------------------------
    def _weights_path(self, key: str) -> Path:
        return self.root / f"{key}.npz"

    def _scales_path(self, key: str) -> Path:
        return self.root / f"{key}.scales.json"

    def has_model(self, key: str) -> bool:
        return self._weights_path(key).exists()

    def save_model(self, key: str, model: Sequential) -> None:
        """Persist model parameters plus any QAT activation scales."""
        model.save(self._weights_path(key))
        scales = {}
        for i, layer in enumerate(model.layers):
            scale = getattr(layer, "scale", None)
            if scale is not None and hasattr(layer, "num_steps"):
                scales[str(i)] = float(scale)
        self._scales_path(key).write_text(json.dumps(scales))

    def load_model(self, key: str, model: Sequential) -> Sequential:
        """Restore parameters (and QAT scales) into a fresh ``model``."""
        model.load(self._weights_path(key))
        scales_file = self._scales_path(key)
        if scales_file.exists():
            scales = json.loads(scales_file.read_text())
            for idx, value in scales.items():
                model.layers[int(idx)].scale = value
        return model

    # ------------------------------------------------------------------
    # Result records
    # ------------------------------------------------------------------
    def _result_path(self, key: str) -> Path:
        return self.root / f"{key}.result.json"

    def has_result(self, key: str) -> bool:
        return self._result_path(key).exists()

    def save_result(self, key: str, payload: dict) -> None:
        self._result_path(key).write_text(
            json.dumps(payload, indent=2, default=_jsonify))

    def load_result(self, key: str) -> dict:
        return json.loads(self._result_path(key).read_text())

    def drop_result(self, key: str) -> None:
        """Remove a persisted result (e.g. one that failed validation)."""
        self._result_path(key).unlink(missing_ok=True)


def _jsonify(value):
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"cannot serialize {type(value)!r}")


def default_store() -> ArtifactStore:
    """The shared store under ``<repo>/artifacts`` (or $REPRO_ARTIFACTS)."""
    return ArtifactStore()

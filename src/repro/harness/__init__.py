"""Experiment harness: table runners, figure renderers, artifact cache."""

from repro.harness.artifacts import ArtifactStore, default_store
from repro.harness.diagrams import render_conv_unit, render_overview
from repro.harness.experiments import ExperimentRunner, ExperimentSettings
from repro.harness.report_md import build_report, write_report
from repro.harness.sweep import (
    SweepDriver,
    SweepProgress,
    SweepSummary,
    SweepTask,
    TaskOutcome,
)
from repro.harness.tables import Table

__all__ = [
    "ArtifactStore",
    "ExperimentRunner",
    "ExperimentSettings",
    "SweepDriver",
    "SweepProgress",
    "SweepSummary",
    "SweepTask",
    "Table",
    "TaskOutcome",
    "build_report",
    "default_store",
    "render_conv_unit",
    "render_overview",
    "write_report",
]

"""ASCII renderings of the paper's two figures, generated from live
configuration objects.

Fig. 1 (architecture overview) and Fig. 2 (convolution unit datapath) are
structural diagrams, not data plots; this module reproduces them from the
actual ``AcceleratorConfig`` / ``CompiledModel``, so the rendered structure
always reflects what the simulator would execute.
"""

from __future__ import annotations

from repro.core.compiler import CompiledModel
from repro.core.config import AcceleratorConfig

__all__ = ["render_overview", "render_conv_unit"]


def render_overview(config: AcceleratorConfig,
                    compiled: CompiledModel | None = None) -> str:
    """Fig. 1: processing units, weight memory and ping-pong buffers."""
    u = config.num_conv_units
    conv_boxes = "\n".join(
        f"  | conv unit {i}  ({config.conv_unit.columns}x"
        f"{config.conv_unit.rows} adders) |" for i in range(u)
    )
    if compiled is not None:
        n_conv = len([p for p in compiled.programs if p.kind == "conv"])
        n_lin = len([p for p in compiled.programs if p.kind == "linear"])
        storage = ("internal BRAM" if compiled.weights_on_chip
                   else "external DRAM (streamed per layer)")
        weights = (f"  weights: {n_conv} conv + {n_lin} linear layers "
                   f"in {storage}")
    else:
        weights = "  weights: no network deployed"
    lines = [
        "+--------------------- accelerator ----------------------+",
        "|                      controller                         |",
        "+---------------------------------------------------------+",
        conv_boxes,
        f"  | pool unit    ({config.pool_unit.columns}x"
        f"{config.pool_unit.rows} adders) |",
        f"  | linear unit  ({config.linear_unit.parallel_outputs}"
        " parallel outputs) |",
        "+---------------------------------------------------------+",
        weights,
        "  activations: 2-D ping/pong buffers  <->  1-D ping/pong buffers",
        f"  clock: {config.clock_mhz:.0f} MHz   spike weighting: radix "
        "(MSB first, accumulator << 1 per step)",
    ]
    return "\n".join(lines)


def render_conv_unit(config: AcceleratorConfig, kernel_rows: int = 0,
                     stride: int = 1) -> str:
    """Fig. 2: shift register, stride taps and the adder array."""
    x = config.conv_unit.columns
    y = kernel_rows or config.conv_unit.rows
    shown = min(x, 6)
    ellipsis = " ..." if x > shown else ""
    register = "[" + "|".join("b" for _ in range(shown)) + ellipsis + "]"
    taps = " ".join(f"^x{i}" for i in range(min(3, shown)))
    rows = []
    for row in range(y):
        adders = " ".join(f"+K({row},j)" for _ in range(min(3, shown)))
        rows.append(f"  adder row {row}:  {adders} ...   (kernel row {row})")
        if row < y - 1:
            rows.append("        | partial sums stream down |")
    lines = [
        f"input row shift register ({x + 0} wide, shifts left once per "
        "kernel column):",
        f"  {register}   taps every stride={stride} position: {taps} ...",
        "",
        f"adder array  X={x} columns x Y={y} rows "
        "(mux feeds 0 when no spike):",
        *rows,
        "",
        "output logic: acc = (acc << 1 per time step) + partial sums;",
        "              bias add -> ReLU -> requantize to T-bit activations",
    ]
    return "\n".join(lines)

"""Experiment runners: one function per table/figure/claim of the paper.

Each runner returns a structured result dictionary *and* a rendered
:class:`~repro.harness.tables.Table` whose rows place the paper's
published values next to our measurements.  Trained models are cached in
the artifact store, so repeated benchmark runs re-train nothing.

Experiment map (see DESIGN.md §6):

* :meth:`ExperimentRunner.run_table1` — accuracy & latency vs spike-train
  length (LeNet-5, U=2, 100 MHz).
* :meth:`ExperimentRunner.run_table2` — latency/power/resources vs number
  of convolution units (LeNet-5, T=3, 100 MHz).
* :meth:`ExperimentRunner.run_table3` — the cross-accelerator comparison
  (published Ju/Fang rows; our CNN-2, LeNet-5 and VGG-11 deployments).
* :meth:`ExperimentRunner.run_encoding_ablation` — radix vs rate accuracy
  over T (the Section IV-B ~40% efficiency claim).
* :meth:`ExperimentRunner.run_dataflow_ablation` — measured memory traffic
  of the row-based dataflow vs a naive sliding-window engine.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.baselines import (
    FANG_2020,
    JU_2020,
    AccuracyCurve,
    DataflowSummary,
    encoding_advantage,
    naive_network_traffic,
)
from repro.core import (
    Accelerator,
    AcceleratorConfig,
    LatencyModel,
    PowerModel,
    ResourceModel,
    plan_bram,
)
from repro.data import generate_cifar100, generate_mnist
from repro.data.dataset import Dataset
from repro.errors import ConfigurationError, SimulationError
from repro.harness.artifacts import ArtifactStore, default_store
from repro.harness.sweep import (
    SweepDriver,
    SweepTask,
    TaskOutcome,
    sweep_store_key,
)
from repro.harness.tables import Table
from repro.models import (
    build_fang_cnn,
    build_lenet5,
    build_vgg11,
    vgg11_performance_network,
)
from repro.nn import Adam, CosineSchedule, Sequential, Trainer
from repro.nn.qat import QATTrainer, add_activation_quantization
from repro.snn import SNNModel, ann_to_rate_snn, ann_to_snn

__all__ = ["ExperimentSettings", "ExperimentRunner"]

# Paper-reported values, used in side-by-side columns.
PAPER_TABLE1 = {3: (98.57, 648), 4: (99.09, 856), 5: (99.21, 1063),
                6: (99.26, 1271)}
PAPER_TABLE2 = {1: (1063, 3.07, 11_000, 10_000),
                2: (648, 3.09, 15_000, 14_000),
                4: (450, 3.17, 24_000, 23_000),
                8: (370, 3.28, 42_000, 39_000)}


@dataclass(frozen=True)
class ExperimentSettings:
    """Dataset/training budget for the experiments.

    ``fast`` shrinks everything to smoke-test scale (used by integration
    tests); default scale reaches the paper's accuracy regime in a few
    minutes per model on a laptop-class CPU.
    """

    train_count: int = 5000
    test_count: int = 1000
    calibration_count: int = 256
    base_epochs: int = 6
    t3_epochs: int = 10
    vgg_width: float = 0.125
    vgg_train_count: int = 6000
    vgg_test_count: int = 1200
    vgg_epochs: int = 8
    cifar_noise: float = 1.0
    seed: int = 7
    fast: bool = False

    @classmethod
    def from_env(cls) -> "ExperimentSettings":
        if os.environ.get("REPRO_FAST"):
            return cls(
                train_count=700, test_count=200, calibration_count=64,
                base_epochs=2, t3_epochs=3, vgg_width=0.0625,
                vgg_train_count=600, vgg_test_count=150, vgg_epochs=2,
                fast=True,
            )
        return cls()

    def key_suffix(self) -> str:
        """Cache-key component so fast/full artifacts never collide."""
        return (f"n{self.train_count}e{self.base_epochs}s{self.seed}"
                + ("f" if self.fast else ""))


class ExperimentRunner:
    """Shared state (datasets, caches) for all experiment functions.

    ``backend`` selects the execution engine for the trace-level
    simulations (dataflow ablation and friends); ``score_backend`` is the
    engine that scores accuracies — the hardware model runs every test
    image through :meth:`~repro.core.Accelerator.evaluate` semantics via
    the sweep driver, so paper tables are hardware-in-the-loop rather
    than the SNN shortcut.  It defaults to ``vectorized`` because the
    reference engine cannot traverse full test sets in reasonable time;
    both engines are pinned bit-identical by the equivalence suite, and
    every fresh score is additionally asserted equal to
    ``SNNModel.accuracy`` at runtime.

    All accuracy cache and result-store keys include the engine name
    that produced them, so switching backends can never serve a result
    computed under a different engine.  ``sweep_workers`` names the
    runtime-fabric lanes scoring shards across: an integer process
    count, or a list of lane specs (``"thread"``, ``"process"``,
    ``"host:port"`` remote TCP engine workers) — see ``repro.runtime``
    and ``repro.harness.sweep``.
    """

    def __init__(
        self,
        settings: ExperimentSettings | None = None,
        store: ArtifactStore | None = None,
        backend: str = "reference",
        score_backend: str = "vectorized",
        sweep_workers: int | list = 1,
        sweep_shard_size: int = 64,
        sweep_saturate: bool = False,
        sweep_stream=None,
        sweep_accept: tuple[str, int] | None = None,
        sweep_window: int | None = None,
        fabric_token: str | None = None,
    ) -> None:
        self.settings = settings or ExperimentSettings.from_env()
        self.store = store or default_store()
        self.backend = backend
        self.score_backend = score_backend
        self.sweep_workers = sweep_workers
        self.sweep_shard_size = sweep_shard_size
        self.sweep_saturate = sweep_saturate
        self.sweep_stream = sweep_stream
        self.sweep_accept = sweep_accept
        self.sweep_window = sweep_window
        self.fabric_token = fabric_token
        self._mnist: tuple[Dataset, Dataset] | None = None
        self._cifar: tuple[Dataset, Dataset] | None = None
        self._snn_cache: dict[str, tuple[SNNModel, float]] = {}
        self._outcome_cache: dict[str, TaskOutcome] = {}
        self.last_sweep_summary = None  # SweepSummary of the latest run

    # ------------------------------------------------------------------
    # Hardware-in-the-loop scoring (sweep driver)
    # ------------------------------------------------------------------
    def _score_key(self, base: str) -> str:
        """Accuracy cache key; names the engine that scores it."""
        return f"{base}_hw-{self.score_backend}"

    def sweep_driver(self) -> SweepDriver:
        """A driver wired to this runner's store and worker settings."""
        return SweepDriver(workers=self.sweep_workers,
                           shard_size=self.sweep_shard_size,
                           saturate=self.sweep_saturate,
                           store=self.store,
                           stream=self.sweep_stream,
                           accept=self.sweep_accept,
                           window=self.sweep_window,
                           token=self.fabric_token)

    def calibrate_model(self, spec: str = "lenet:3", *,
                        force: bool = False,
                        measure_dispatch: bool = False, **kwargs):
        """Measure (or reload) a model's sparsity calibration table.

        Resolves ``spec`` like every other deployment entry point, then
        runs :func:`~repro.core.engine.calibrate.calibrate_deployment`
        against this runner's artifact store under the exact
        ``AcceleratorConfig.for_network`` config the sweeps and servers
        deploy — so the persisted table's ``content_key`` is the one
        their warm engines look up.  Returns ``(canonical name, snn,
        table, cached)``.
        """
        from repro.core.engine.calibrate import calibrate_deployment

        name, snn, _ = self.resolve_model(spec)
        config = AcceleratorConfig.for_network(snn.network)
        table, cached = calibrate_deployment(
            snn.network, config, store=self.store, force=force,
            measure_dispatch=measure_dispatch, **kwargs)
        return name, snn, table, cached

    def _score_entries(
        self, entries: list[tuple[str, SNNModel, Dataset]]
    ) -> dict[str, TaskOutcome]:
        """Score (key, snn, test set) cells on the hardware model.

        One sweep run covers all cells — sharded across
        ``sweep_workers`` processes on the ``score_backend`` engine.
        Freshly computed outcomes are asserted equal to the SNN
        reference accuracy (the engine-equivalence contract, enforced
        end to end); cached outcomes were asserted when first computed.
        """
        todo = [e for e in entries
                if self._score_key(e[0]) not in self._outcome_cache]
        self.last_sweep_summary = None  # no driver ran (all cached)
        if todo:
            tasks = [
                SweepTask.from_dataset(
                    key, snn.network,
                    AcceleratorConfig.for_network(snn.network),
                    test, backend=self.score_backend)
                for key, snn, test in todo
            ]
            driver = self.sweep_driver()
            outcomes = driver.run(tasks)
            self.last_sweep_summary = driver.last_summary
            fresh = [(key, snn, test) for key, snn, test in todo
                     if not outcomes[key].cached]
            divergent = None
            for key, snn, test in fresh:
                reference = snn.accuracy(test)
                if outcomes[key].accuracy != reference:
                    divergent = (key, outcomes[key].accuracy, reference)
                    break
            if divergent is not None:
                # The engine is broken: scrub every record this run
                # persisted so no divergent score — raising cell or
                # sibling — can be served as validated cache later.
                for key, _, _ in fresh:
                    self.store.drop_result(
                        sweep_store_key(key, self.score_backend))
                key, got, reference = divergent
                raise SimulationError(
                    f"hardware accuracy {got:.6f} for {key!r} diverges "
                    f"from the SNN reference {reference:.6f}; the "
                    f"{self.score_backend!r} engine violates the "
                    "equivalence contract")
            for key, snn, test in todo:
                self._outcome_cache[self._score_key(key)] = outcomes[key]
        return {key: self._outcome_cache[self._score_key(key)]
                for key, _, _ in entries}

    # ------------------------------------------------------------------
    # Datasets
    # ------------------------------------------------------------------
    def mnist(self) -> tuple[Dataset, Dataset]:
        if self._mnist is None:
            self._mnist = generate_mnist(
                train_count=self.settings.train_count,
                test_count=self.settings.test_count,
                seed=self.settings.seed,
            )
        return self._mnist

    def mnist28(self) -> tuple[Dataset, Dataset]:
        """28×28 variant for the Fang/Ju topologies."""
        return generate_mnist(
            train_count=self.settings.train_count,
            test_count=self.settings.test_count,
            image_size=28,
            seed=self.settings.seed + 1,
        )

    def cifar(self) -> tuple[Dataset, Dataset]:
        if self._cifar is None:
            self._cifar = generate_cifar100(
                train_count=self.settings.vgg_train_count,
                test_count=self.settings.vgg_test_count,
                seed=self.settings.seed + 2,
                noise_level=self.settings.cifar_noise,
            )
        return self._cifar

    # ------------------------------------------------------------------
    # Model training (QAT), cached
    # ------------------------------------------------------------------
    def _train_qat(
        self,
        key: str,
        builder,
        train: Dataset,
        num_steps: int,
        epochs: int,
        lr: float = 1.5e-3,
    ) -> Sequential:
        """Train (or load) a QAT model and return it."""
        model = add_activation_quantization(builder(), num_steps)
        if self.store.has_model(key):
            return self.store.load_model(key, model)
        steps = (len(train) // 64 + 1) * epochs
        trainer = QATTrainer(
            model, Adam(model.params(), lr=lr), weight_bits=3,
            input_steps=num_steps, batch_size=64, seed=self.settings.seed,
            schedule=CosineSchedule(lr, steps, 1e-5),
        )
        trainer.fit(train.images, train.labels, epochs=epochs)
        self.store.save_model(key, model)
        return model

    def _lenet_convert(self, num_steps: int) -> tuple[str, SNNModel]:
        """Train (or load) and convert LeNet-5 at ``T=num_steps``."""
        cache_key = f"lenet_t{num_steps}_{self.settings.key_suffix()}"
        train, _ = self.mnist()
        epochs = (self.settings.t3_epochs if num_steps <= 3
                  else self.settings.base_epochs)
        model = self._train_qat(
            cache_key, lambda: build_lenet5(seed=num_steps), train,
            num_steps, epochs)
        snn = ann_to_snn(model, train.subset(self.settings.calibration_count),
                         num_steps=num_steps, weight_bits=3)
        return cache_key, snn

    def lenet_snn(self, num_steps: int) -> tuple[SNNModel, float]:
        """Trained+converted LeNet-5 at ``T=num_steps`` and its accuracy.

        Accuracy is hardware-in-the-loop: the full test set runs through
        the functional accelerator model (``score_backend`` engine) via
        the sweep driver, not the SNN shortcut.
        """
        return self.lenet_sweep((num_steps,))[num_steps][:2]

    def lenet_sweep(
        self, steps: tuple
    ) -> dict[int, tuple[SNNModel, float, TaskOutcome]]:
        """Score several LeNet T-configs in one sharded sweep.

        Trains/loads every model first (cached), then runs one
        multi-config sweep over the whole test set — all (config, shard)
        cells share the worker pool, so a T-sweep saturates
        ``sweep_workers`` processes instead of running serially.
        """
        _, test = self.mnist()
        converted: dict[int, tuple[str, SNNModel]] = {}
        entries = []
        for t in dict.fromkeys(steps):  # dedup, order preserved
            base = f"lenet_t{t}_{self.settings.key_suffix()}"
            cached = self._snn_cache.get(self._score_key(base))
            if cached is not None:
                snn = cached[0]
            else:
                base, snn = self._lenet_convert(t)
            converted[t] = (base, snn)
            entries.append((base, snn, test))
        outcomes = self._score_entries(entries)
        results = {}
        for t, (base, snn) in converted.items():
            outcome = outcomes[base]
            self._snn_cache[self._score_key(base)] = (snn, outcome.accuracy)
            results[t] = (snn, outcome.accuracy, outcome)
        return results

    def fang_snn(self, num_steps: int = 4) -> tuple[SNNModel, float]:
        """Fang et al.'s CNN-2 deployed on our flow (Table III row 3)."""
        cache_key = f"fang_t{num_steps}_{self.settings.key_suffix()}"
        score_key = self._score_key(cache_key)
        if score_key in self._snn_cache:
            return self._snn_cache[score_key]
        train, test = self.mnist28()
        model = self._train_qat(
            cache_key, lambda: build_fang_cnn(seed=num_steps), train,
            num_steps, self.settings.base_epochs)
        snn = ann_to_snn(model, train.subset(self.settings.calibration_count),
                         num_steps=num_steps, weight_bits=3)
        accuracy = self._score_entries([(cache_key, snn, test)])[
            cache_key].accuracy
        self._snn_cache[score_key] = (snn, accuracy)
        return snn, accuracy

    def vgg_accuracy(self, num_steps: int = 6) -> float:
        """Accuracy of the width-reduced VGG-11 on synthetic CIFAR-100.

        The hardware row uses the *full* VGG-11 geometry; training 28.5M
        parameters in numpy is infeasible, so accuracy comes from the
        reduced-width twin (DESIGN.md §2 records this substitution) —
        scored, like every accuracy, by the hardware model over the full
        test set.  The sweep store short-circuits training when this
        cell was already scored under the same engine.
        """
        cache_key = (f"vgg_t{num_steps}_w{self.settings.vgg_width}"
                     f"_{self.settings.key_suffix()}")
        stored = sweep_store_key(cache_key, self.score_backend)
        if self.store.has_result(stored):
            return TaskOutcome.from_dict(
                self.store.load_result(stored)).accuracy
        train, test = self.cifar()
        model = self._train_qat(
            cache_key,
            lambda: build_vgg11(width_multiplier=self.settings.vgg_width,
                                seed=num_steps),
            train, num_steps, self.settings.vgg_epochs, lr=1e-3)
        snn = ann_to_snn(model, train.subset(self.settings.calibration_count),
                         num_steps=num_steps, weight_bits=3)
        return self._score_entries([(cache_key, snn, test)])[
            cache_key].accuracy

    # ------------------------------------------------------------------
    # Table I — accuracy & latency vs time steps
    # ------------------------------------------------------------------
    def run_table1(self, steps: tuple = (3, 4, 5, 6)) -> dict:
        config = AcceleratorConfig()  # U=2, (30,5), 100 MHz — the paper's
        latency = LatencyModel(config)
        # One sharded sweep scores every T on the hardware model.
        sweep = self.lenet_sweep(steps)
        rows = []
        for t in steps:
            snn, accuracy, _ = sweep[t]
            lat_us = latency.latency_us(snn.network)
            paper_acc, paper_lat = PAPER_TABLE1.get(t, (float("nan"),) * 2)
            rows.append({
                "num_steps": t,
                "accuracy_pct": accuracy * 100,
                "latency_us": lat_us,
                "paper_accuracy_pct": paper_acc,
                "paper_latency_us": paper_lat,
            })
        table = Table(
            "Table I - accuracy & latency versus time steps "
            "(LeNet-5, 2 conv units, 100 MHz)",
            ["T", "acc % (paper)", "acc % (ours)", "lat us (paper)",
             "lat us (ours)"])
        for row in rows:
            table.add_row(row["num_steps"], row["paper_accuracy_pct"],
                          row["accuracy_pct"], row["paper_latency_us"],
                          row["latency_us"])
        return {"rows": rows, "table": table}

    # ------------------------------------------------------------------
    # Table II — latency, power & resources vs convolution units
    # ------------------------------------------------------------------
    def run_table2(self, unit_counts: tuple = (1, 2, 4, 8)) -> dict:
        snn, _ = self.lenet_snn(3)
        rows = []
        for units in unit_counts:
            config = AcceleratorConfig().with_units(units)
            lat_us = LatencyModel(config).latency_us(snn.network)
            bram = plan_bram(snn.network, config.memory,
                             weights_on_chip=True)
            power_w = PowerModel(config).average_power_w(
                bram_mbit=bram.total_mbit)
            res = ResourceModel(config).estimate(weights_on_chip=True)
            paper = PAPER_TABLE2.get(units, (float("nan"),) * 4)
            rows.append({
                "units": units,
                "latency_us": lat_us,
                "power_w": power_w,
                "luts": res.luts,
                "ffs": res.ffs,
                "paper_latency_us": paper[0],
                "paper_power_w": paper[1],
                "paper_luts": paper[2],
                "paper_ffs": paper[3],
            })
        table = Table(
            "Table II - latency, power & resources versus convolution "
            "units (LeNet-5, T=3, 100 MHz)",
            ["units", "lat us (paper/ours)", "power W (paper/ours)",
             "LUTs (paper/ours)", "FFs (paper/ours)"])
        for r in rows:
            table.add_row(
                r["units"],
                f"{r['paper_latency_us']:.0f} / {r['latency_us']:.0f}",
                f"{r['paper_power_w']:.2f} / {r['power_w']:.2f}",
                f"{r['paper_luts']:,} / {r['luts']:,}",
                f"{r['paper_ffs']:,} / {r['ffs']:,}")
        return {"rows": rows, "table": table}

    # ------------------------------------------------------------------
    # Table III — cross-accelerator comparison
    # ------------------------------------------------------------------
    def _deploy_row(self, label, dataset, snn, accuracy, units, clock,
                    config=None) -> dict:
        config = config or AcceleratorConfig.for_network(
            snn.network, num_conv_units=units, clock_mhz=clock)
        acc_hw = Accelerator(config)
        acc_hw.deploy(snn, name=label)
        report = acc_hw.report(accuracy=accuracy)
        return {
            "label": label, "dataset": dataset,
            "accuracy_pct": (accuracy or 0.0) * 100,
            "frequency_mhz": clock,
            "latency_us": report.latency_us,
            "throughput_fps": report.throughput_fps,
            "power_w": report.power_w,
            "luts": report.luts, "ffs": report.ffs,
            "bram_mbit": report.bram_mbit,
            "weights_on_chip": report.weights_on_chip,
        }

    def run_table3(self, include_vgg: bool = True) -> dict:
        rows: list[dict] = []
        for pub in (JU_2020, FANG_2020):
            rows.append({
                "label": pub.label, "dataset": pub.dataset,
                "accuracy_pct": pub.accuracy_pct,
                "frequency_mhz": pub.frequency_mhz,
                "latency_us": pub.latency_us,
                "throughput_fps": pub.throughput_fps,
                "power_w": pub.power_w, "luts": pub.luts, "ffs": pub.ffs,
                "bram_mbit": float("nan"), "weights_on_chip": True,
            })

        fang_snn, fang_acc = self.fang_snn(num_steps=4)
        rows.append(self._deploy_row(
            "This work (CNN 2)", "MNIST", fang_snn, fang_acc,
            units=4, clock=200.0))

        lenet_snn, lenet_acc = self.lenet_snn(4)
        rows.append(self._deploy_row(
            "This work (LeNet-5)", "MNIST", lenet_snn, lenet_acc,
            units=4, clock=200.0,
            config=AcceleratorConfig().with_units(4).with_clock(200.0)))

        if include_vgg:
            vgg_net = vgg11_performance_network(num_steps=6)
            vgg_snn = SNNModel(vgg_net)
            vgg_acc = self.vgg_accuracy(num_steps=6)
            rows.append(self._deploy_row(
                "This work (VGG-11)", "CIFAR-100", vgg_snn, vgg_acc,
                units=8, clock=115.0))

        table = Table(
            "Table III - efficiency and performance of SNN hardware "
            "accelerators",
            ["platform", "dataset", "acc %", "MHz", "lat us", "fps",
             "W", "LUTs", "FFs"])
        for r in rows:
            table.add_row(
                r["label"], r["dataset"], r["accuracy_pct"],
                r["frequency_mhz"], r["latency_us"], r["throughput_fps"],
                r["power_w"], f"{r['luts']:,}", f"{r['ffs']:,}")
        return {"rows": rows, "table": table}

    # ------------------------------------------------------------------
    # Section IV-B claim — radix vs rate encoding
    # ------------------------------------------------------------------
    def run_encoding_ablation(
        self,
        radix_steps: tuple = (3, 4, 5, 6),
        rate_steps: tuple = (2, 4, 6, 8, 10, 12, 16, 24, 32),
    ) -> dict:
        # The radix side is hardware-in-the-loop: one sharded sweep over
        # all T cells on the accelerator model (the rate baseline below
        # stays on the rate SNN — it is not this paper's hardware).
        sweep = self.lenet_sweep(tuple(radix_steps))
        radix_accs = [sweep[t][1] for t in radix_steps]
        radix_curve = AccuracyCurve("radix", tuple(radix_steps),
                                    tuple(radix_accs))

        # Rate baseline: classic threshold-balanced conversion of a plain
        # float-trained LeNet (full-precision weights — generous to the
        # baseline; the gap measured is attributable to the encoding).
        # The long-T simulations take minutes, so the curve is cached.
        rate_key = (f"rate_curve_{'-'.join(map(str, rate_steps))}"
                    f"_{self.settings.key_suffix()}")
        if self.store.has_result(rate_key):
            rate_accs = [float(a) for a in
                         self.store.load_result(rate_key)["accuracies"]]
        else:
            train, test = self.mnist()
            key = f"lenet_float_{self.settings.key_suffix()}"
            model = build_lenet5(seed=99)
            if self.store.has_model(key):
                self.store.load_model(key, model)
            else:
                trainer = Trainer(model, Adam(model.params(), lr=1.5e-3),
                                  batch_size=64, seed=self.settings.seed)
                trainer.fit(train.images, train.labels,
                            epochs=self.settings.base_epochs)
                self.store.save_model(key, model)
            rate = ann_to_rate_snn(
                model, train.subset(self.settings.calibration_count),
                weight_bits=None)
            rate_accs = [rate.accuracy(test, num_steps=t)
                         for t in rate_steps]
            self.store.save_result(rate_key, {"accuracies": rate_accs})
        rate_curve = AccuracyCurve("rate", tuple(rate_steps),
                                   tuple(rate_accs))

        comparison = encoding_advantage(radix_curve, rate_curve)
        table = Table(
            "Encoding ablation - accuracy versus spike-train length "
            "(LeNet-5; paper: radix T=6 matches rate T~10, ~40% saving)",
            ["T", "radix acc %", "rate acc %"])
        all_t = sorted(set(radix_steps) | set(rate_steps))
        for t in all_t:
            r = (f"{radix_accs[radix_steps.index(t)] * 100:.2f}"
                 if t in radix_steps else "-")
            p = (f"{rate_accs[rate_steps.index(t)] * 100:.2f}"
                 if t in rate_steps else "-")
            table.add_row(t, r, p)
        return {
            "radix": radix_curve, "rate": rate_curve,
            "comparison": comparison, "table": table,
        }

    # ------------------------------------------------------------------
    # Sharded accuracy sweep (the `repro sweep` command)
    # ------------------------------------------------------------------
    def run_accuracy_sweep(self, steps: tuple = (3, 4)) -> dict:
        """Hardware-in-the-loop accuracy sweep with throughput reporting.

        Scores every LeNet T-config over the full test set through the
        sweep driver (``sweep_workers`` processes, ``score_backend``
        engine) and reports per-cell accuracy, hardware cycles per image
        and measured simulation throughput.
        """
        sweep = self.lenet_sweep(steps)
        summary = self.last_sweep_summary
        rows = []
        for t in steps:
            _, accuracy, outcome = sweep[t]
            rows.append({
                "num_steps": t,
                "accuracy_pct": accuracy * 100,
                "images": outcome.num_images,
                "shards": outcome.num_shards,
                "cycles_per_image": outcome.trace.cycles_per_image(),
                "worker_s": outcome.elapsed_s,
                "cached": outcome.cached,
            })
        workers = self.sweep_workers
        lanes = (f"{workers} worker(s)" if isinstance(workers, int)
                 else "lanes " + ",".join(workers))
        table = Table(
            f"Accuracy sweep - hardware-in-the-loop over the test set "
            f"({self.score_backend} engine, {lanes})",
            ["T", "acc %", "images", "shards", "cycles/img", "worker s"])
        for row in rows:
            table.add_row(
                row["num_steps"], f"{row['accuracy_pct']:.2f}",
                row["images"],
                "cached" if row["cached"] else row["shards"],
                f"{row['cycles_per_image']:,.0f}",
                f"{row['worker_s']:.2f}")
        return {"rows": rows, "table": table, "summary": summary}

    # ------------------------------------------------------------------
    # Deployments (multi-model serving / `repro deployments`)
    # ------------------------------------------------------------------
    #: Model-spec grammar for `--model`: NAME[:T].  Each resolver
    #: returns the trained+converted SNN plus its hardware accuracy.
    MODEL_SPECS = {"lenet": 3, "fang": 4}  # name -> default T

    def resolve_model(self, spec: str):
        """``"lenet:3"`` / ``"fang:4"`` → (canonical name, snn, accuracy).

        The accuracy is hardware-in-the-loop (scored by the sweep over
        the model's full test set), so a registry row always carries the
        number the paper tables report.
        """
        spec = str(spec).strip().lower()
        name, _, t_raw = spec.partition(":")
        if name not in self.MODEL_SPECS:
            raise ConfigurationError(
                f"unknown model {name!r}; available: "
                + ", ".join(f"{m}[:T]" for m in self.MODEL_SPECS))
        try:
            num_steps = int(t_raw) if t_raw else self.MODEL_SPECS[name]
        except ValueError:
            raise ConfigurationError(
                f"bad model spec {spec!r}; expected NAME[:T]") from None
        if num_steps < 1:
            raise ConfigurationError(
                f"model spec {spec!r}: T must be >= 1")
        if name == "lenet":
            snn, accuracy = self.lenet_snn(num_steps)
        else:
            snn, accuracy = self.fang_snn(num_steps)
        return f"{name}:{num_steps}", snn, accuracy

    def build_registry(self, models):
        """A deployment registry from ``--model`` specs.

        Returns ``(registry, accuracies)`` — entries named by canonical
        spec (``lenet:3``), all on the ``score_backend`` engine, plus
        each model's hardware accuracy for reporting.
        """
        from repro.runtime import DeploymentRegistry

        registry = DeploymentRegistry()
        accuracies: dict[str, float] = {}
        for spec in models:
            name, snn, accuracy = self.resolve_model(spec)
            registry.register(name, network=snn.network,
                              backend=self.score_backend)
            accuracies[name] = accuracy
        return registry, accuracies

    # ------------------------------------------------------------------
    # Serving (the `repro serve` / `repro loadgen` commands)
    # ------------------------------------------------------------------
    def build_server(self, num_steps: int = 3, **serve_kwargs):
        """An :class:`~repro.serve.InferenceServer` over the trained LeNet.

        Trains/loads the ``T=num_steps`` LeNet (cached like every other
        experiment model), scores it hardware-in-the-loop, and wraps the
        quantized network in a server on the ``score_backend`` engine.
        Returns ``(server, snn, accuracy)``; the caller starts/stops the
        server (``async with server: ...``).
        """
        from repro.serve import InferenceServer  # serving is optional

        snn, accuracy = self.lenet_snn(num_steps)
        serve_kwargs.setdefault("backend", self.score_backend)
        server = InferenceServer(snn.network, **serve_kwargs)
        return server, snn, accuracy

    def build_multi_server(self, models, **serve_kwargs):
        """A multi-model :class:`~repro.serve.InferenceServer`.

        ``models`` is a list of ``--model`` specs; every named
        deployment shares one engine pool with per-deployment batching
        and metrics.  Returns ``(server, registry, accuracies)``.
        """
        from repro.serve import InferenceServer  # serving is optional

        registry, accuracies = self.build_registry(models)
        server = InferenceServer(registry, **serve_kwargs)
        return server, registry, accuracies

    def save_serve_metrics(self, name: str, snapshot,
                           extra: dict | None = None) -> dict:
        """Persist a serving metrics snapshot in the artifact store.

        The record lands next to the experiment results (key
        ``serve_<name>``), so load runs leave the same durable trail as
        table regenerations; returns the stored payload.
        """
        payload = {"snapshot": snapshot.to_dict()}
        if extra:
            payload.update(extra)
        self.store.save_result(f"serve_{name}", payload)
        return payload

    # ------------------------------------------------------------------
    # Section III-A claim — row dataflow memory-traffic reduction
    # ------------------------------------------------------------------
    def run_dataflow_ablation(self, num_images: int = 2) -> dict:
        snn, _ = self.lenet_snn(3)
        config = AcceleratorConfig()
        accelerator = Accelerator(config, backend=self.backend)
        accelerator.deploy(snn, name="LeNet-5")
        _, test = self.mnist()
        _, traces = accelerator.run(test.images[:num_images])
        measured = traces[0].total_traffic()
        naive = naive_network_traffic(snn.network)
        summary = DataflowSummary(rowwise=measured, naive=naive)
        table = Table(
            "Dataflow ablation - memory accesses per inference "
            "(LeNet-5, T=3)",
            ["dataflow", "activation reads (bits)", "kernel reads "
             "(values)"])
        table.add_row("row-based (ours)",
                      f"{measured.activation_read_bits:,}",
                      f"{measured.kernel_read_values:,}")
        table.add_row("naive sliding window",
                      f"{naive.activation_read_bits:,}",
                      f"{naive.kernel_read_values:,}")
        table.add_row("reduction",
                      f"{summary.activation_read_reduction:.1f}x",
                      f"{summary.kernel_read_reduction:.1f}x")
        return {"summary": summary, "table": table}

"""ASCII table rendering for experiment reports.

Every benchmark prints its results in the same row/column layout as the
paper's tables, with a paper-reported column next to each measured one so
the reproduction quality is visible at a glance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Table"]


@dataclass
class Table:
    """A simple monospace table with a title and aligned columns."""

    title: str
    columns: list[str]
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append a row; cells are stringified, floats get sane formatting."""
        formatted = []
        for cell in cells:
            if isinstance(cell, float):
                if cell == 0:
                    formatted.append("0")
                elif abs(cell) >= 1000:
                    formatted.append(f"{cell:,.0f}")
                elif abs(cell) >= 10:
                    formatted.append(f"{cell:.1f}")
                else:
                    formatted.append(f"{cell:.3f}")
            else:
                formatted.append(str(cell))
        if len(formatted) != len(self.columns):
            raise ValueError(
                f"row has {len(formatted)} cells for {len(self.columns)} "
                "columns"
            )
        self.rows.append(formatted)

    def render(self) -> str:
        """The table as a string, ready to print."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: list[str]) -> str:
            return " | ".join(c.rjust(w) for c, w in zip(cells, widths))

        sep = "-+-".join("-" * w for w in widths)
        out = [self.title, "=" * len(self.title), line(self.columns), sep]
        out.extend(line(row) for row in self.rows)
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()

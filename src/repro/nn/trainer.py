"""Mini-batch training loop for the ANN substrate."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.loss import CrossEntropyLoss
from repro.nn.network import Sequential
from repro.nn.optim import Optimizer

__all__ = ["Trainer", "TrainLog", "evaluate_accuracy"]


def evaluate_accuracy(
    model: Sequential,
    images: np.ndarray,
    labels: np.ndarray,
    batch_size: int = 256,
) -> float:
    """Top-1 accuracy of ``model`` on a dataset, evaluated in eval mode."""
    model.eval()
    correct = 0
    for start in range(0, len(images), batch_size):
        batch = images[start:start + batch_size]
        logits = model.forward(batch)
        correct += int((logits.argmax(axis=1)
                        == labels[start:start + batch_size]).sum())
    return correct / max(len(images), 1)


@dataclass
class TrainLog:
    """Per-epoch history produced by :class:`Trainer`."""

    losses: list[float] = field(default_factory=list)
    train_accuracies: list[float] = field(default_factory=list)
    test_accuracies: list[float] = field(default_factory=list)

    @property
    def best_test_accuracy(self) -> float:
        return max(self.test_accuracies, default=0.0)


class Trainer:
    """Runs epochs of shuffled mini-batch SGD over a fixed dataset.

    The loop is deliberately simple: all datasets in this reproduction are
    synthetic and fit in memory, so there is no streaming or augmentation
    pipeline here — augmentation happens inside the dataset generators.
    """

    def __init__(
        self,
        model: Sequential,
        optimizer: Optimizer,
        loss: CrossEntropyLoss | None = None,
        batch_size: int = 64,
        seed: int = 0,
        schedule=None,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.loss = loss or CrossEntropyLoss()
        self.batch_size = batch_size
        self.schedule = schedule
        self._rng = np.random.default_rng(seed)
        self._global_step = 0

    def train_epoch(self, images: np.ndarray, labels: np.ndarray) -> float:
        """One pass over the data; returns the mean per-batch loss."""
        self.model.train()
        order = self._rng.permutation(len(images))
        total, batches = 0.0, 0
        for start in range(0, len(order), self.batch_size):
            idx = order[start:start + self.batch_size]
            if self.schedule is not None:
                self.schedule.apply(self.optimizer, self._global_step)
            logits = self.model.forward(images[idx])
            total += self.loss.forward(logits, labels[idx])
            self.model.backward(self.loss.backward())
            self.optimizer.step(self.model.grads())
            self._global_step += 1
            batches += 1
        return total / max(batches, 1)

    def fit(
        self,
        train_images: np.ndarray,
        train_labels: np.ndarray,
        test_images: np.ndarray | None = None,
        test_labels: np.ndarray | None = None,
        epochs: int = 5,
        verbose: bool = False,
    ) -> TrainLog:
        """Train for ``epochs`` passes, tracking accuracy after each one."""
        log = TrainLog()
        for epoch in range(epochs):
            loss = self.train_epoch(train_images, train_labels)
            log.losses.append(loss)
            train_acc = evaluate_accuracy(
                self.model, train_images[:2048], train_labels[:2048]
            )
            log.train_accuracies.append(train_acc)
            if test_images is not None and test_labels is not None:
                test_acc = evaluate_accuracy(
                    self.model, test_images, test_labels
                )
                log.test_accuracies.append(test_acc)
            if verbose:
                test_str = (
                    f" test={log.test_accuracies[-1]:.4f}"
                    if log.test_accuracies else ""
                )
                print(
                    f"epoch {epoch + 1}/{epochs} loss={loss:.4f} "
                    f"train={train_acc:.4f}{test_str}"
                )
        return log

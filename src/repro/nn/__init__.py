"""Numpy ANN substrate: layers, losses, optimizers and a training loop.

This package exists because the paper's flow starts from a trained ANN
(ANN-to-SNN conversion); no deep-learning framework is available offline,
so backpropagation is implemented from scratch on numpy.
"""

from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Layer,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.loss import CrossEntropyLoss, softmax
from repro.nn.network import Sequential
from repro.nn.optim import Adam, CosineSchedule, SGD, StepSchedule
from repro.nn.trainer import TrainLog, Trainer, evaluate_accuracy

__all__ = [
    "Adam",
    "AvgPool2d",
    "BatchNorm2d",
    "Conv2d",
    "CosineSchedule",
    "CrossEntropyLoss",
    "Dropout",
    "Flatten",
    "Layer",
    "Linear",
    "MaxPool2d",
    "ReLU",
    "SGD",
    "Sequential",
    "StepSchedule",
    "TrainLog",
    "Trainer",
    "evaluate_accuracy",
    "softmax",
]

"""Optimizers and learning-rate schedules for the ANN substrate."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

__all__ = ["SGD", "Adam", "CosineSchedule", "StepSchedule"]


class Optimizer:
    """Base optimizer: walks (param, grad) pairs supplied by the network."""

    def __init__(self, params: list[np.ndarray], lr: float) -> None:
        if lr <= 0:
            raise ShapeError(f"learning rate must be positive, got {lr}")
        self.params = params
        self.lr = lr

    def step(self, grads: list[np.ndarray]) -> None:
        raise NotImplementedError

    def _check(self, grads: list[np.ndarray]) -> None:
        if len(grads) != len(self.params):
            raise ShapeError(
                f"got {len(grads)} gradients for {len(self.params)} parameters"
            )


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(
        self,
        params: list[np.ndarray],
        lr: float,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p) for p in params]

    def step(self, grads: list[np.ndarray]) -> None:
        self._check(grads)
        for param, grad, vel in zip(self.params, grads, self._velocity):
            g = grad + self.weight_decay * param
            vel *= self.momentum
            vel += g
            param -= self.lr * vel


class Adam(Optimizer):
    """Adam with bias correction; the workhorse for the synthetic datasets."""

    def __init__(
        self,
        params: list[np.ndarray],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p) for p in params]
        self._v = [np.zeros_like(p) for p in params]
        self._t = 0

    def step(self, grads: list[np.ndarray]) -> None:
        self._check(grads)
        self._t += 1
        b1, b2 = self.betas
        corr1 = 1.0 - b1**self._t
        corr2 = 1.0 - b2**self._t
        for param, grad, m, v in zip(self.params, grads, self._m, self._v):
            g = grad + self.weight_decay * param
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            m_hat = m / corr1
            v_hat = v / corr2
            param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class CosineSchedule:
    """Cosine annealing from the base LR to ``min_lr`` over ``total_steps``."""

    def __init__(self, base_lr: float, total_steps: int,
                 min_lr: float = 0.0) -> None:
        if total_steps < 1:
            raise ShapeError("schedule needs at least one step")
        self.base_lr = base_lr
        self.total_steps = total_steps
        self.min_lr = min_lr

    def lr_at(self, step: int) -> float:
        frac = min(max(step, 0), self.total_steps) / self.total_steps
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + np.cos(np.pi * frac)
        )

    def apply(self, optimizer: Optimizer, step: int) -> None:
        optimizer.lr = self.lr_at(step)


class StepSchedule:
    """Multiply the LR by ``gamma`` at each listed milestone step."""

    def __init__(self, base_lr: float, milestones: list[int],
                 gamma: float = 0.1) -> None:
        self.base_lr = base_lr
        self.milestones = sorted(milestones)
        self.gamma = gamma

    def lr_at(self, step: int) -> float:
        passed = sum(1 for m in self.milestones if step >= m)
        return self.base_lr * self.gamma**passed

    def apply(self, optimizer: Optimizer, step: int) -> None:
        optimizer.lr = self.lr_at(step)

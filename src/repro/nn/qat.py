"""Quantization-aware training (QAT).

The paper's models come from an ANN-to-SNN toolchain (E3NE [14]) that
trains with the deployment quantization in the loop: 3-bit weights and
``T``-bit radix-encoded activations.  Plain post-training quantization to
3 bits collapses accuracy (we measure ~77% on LeNet-5 where QAT reaches
~99%), so this module provides the training-side counterpart:

* :class:`FakeQuantActivation` — a layer inserted after each hidden ReLU
  that clamps to a running-percentile scale ``λ`` and snaps to the
  ``2**T``-level grid, with a straight-through gradient estimator.  At
  conversion time its ``λ`` becomes the layer's requantization scale, so
  training and deployment see the *same* arithmetic.
* :class:`QATTrainer` — swaps per-channel fake-quantized weights in before
  each forward/backward pass and applies the (straight-through) gradients
  to the float master weights.
"""

from __future__ import annotations

import numpy as np

from repro.encoding.quantize import quantize_weights
from repro.errors import QuantizationError
from repro.nn.layers import Conv2d, Layer, Linear, ReLU
from repro.nn.network import Sequential
from repro.nn.trainer import Trainer

__all__ = [
    "FakeQuantActivation",
    "QATTrainer",
    "add_activation_quantization",
    "fake_quantized_weights",
]


class FakeQuantActivation(Layer):
    """Simulates the hardware requantization grid during training.

    Forward: ``y = clip(floor(x / λ · 2^T + 1/2), 0, 2^T - 1) · λ / 2^T``
    (round to nearest, matching the ``+1/2`` the deployment requantization
    folds into its bias — see :func:`repro.snn.spec.requantize`).
    Backward: straight-through inside ``[0, λ)``, zero outside (clipped
    STE).  ``λ`` tracks a running percentile of the observed activations
    with momentum, so it converges to the same statistic the post-training
    calibrator would compute.
    """

    def __init__(
        self,
        num_steps: int,
        percentile: float = 99.9,
        momentum: float = 0.1,
    ) -> None:
        if num_steps < 1:
            raise QuantizationError("need at least one time step")
        self.num_steps = int(num_steps)
        self.percentile = float(percentile)
        self.momentum = float(momentum)
        self.scale = 0.0  # running λ; 0 means "not yet observed"
        self._mask: np.ndarray | None = None

    def _update_scale(self, x: np.ndarray) -> None:
        observed = float(np.percentile(x, self.percentile))
        observed = max(observed, 1e-9)
        if self.scale == 0.0:
            self.scale = observed
        else:
            self.scale = ((1.0 - self.momentum) * self.scale
                          + self.momentum * observed)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.training:
            self._update_scale(x)
        if self.scale == 0.0:
            raise QuantizationError(
                "activation quantizer used in eval mode before any "
                "training batch set its scale"
            )
        levels = 1 << self.num_steps
        if self.training:
            self._mask = (x >= 0) & (x < self.scale)
        q = np.floor(x / self.scale * levels + 0.5)
        q = np.clip(q, 0, levels - 1)
        return q * (self.scale / levels)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise QuantizationError("backward called before forward")
        return grad_out * self._mask


def add_activation_quantization(
    model: Sequential, num_steps: int, percentile: float = 99.9
) -> Sequential:
    """Insert a :class:`FakeQuantActivation` after every hidden ReLU.

    The returned network shares parameter arrays with ``model`` (layers
    are reused, not copied), so training the result trains the original
    layers.
    """
    layers: list[Layer] = []
    for layer in model.layers:
        layers.append(layer)
        if isinstance(layer, ReLU):
            layers.append(FakeQuantActivation(num_steps, percentile))
    return Sequential(layers)


class fake_quantized_weights:
    """Context manager: swap per-channel fake-quantized weights in/out.

    Inside the context every conv/linear layer computes with
    ``dequantize(quantize(w))`` while the float master weights are kept
    aside; on exit the masters are restored.  Gradients computed inside
    are straight-through estimates for the masters.

    The final linear layer (classifier head) uses a per-tensor scale, as
    the deployment conversion does.
    """

    def __init__(self, model: Sequential, weight_bits: int) -> None:
        self.model = model
        self.weight_bits = weight_bits
        self._saved: list[tuple[Layer, np.ndarray]] = []

    def __enter__(self) -> "fake_quantized_weights":
        quantizable = [l for l in self.model.layers
                       if isinstance(l, (Conv2d, Linear))]
        for layer in quantizable:
            is_head = layer is quantizable[-1]
            master = layer.weight
            quantized = quantize_weights(
                master, self.weight_bits, per_channel=not is_head
            ).dequantize()
            self._saved.append((layer, master))
            layer.weight = quantized
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        for layer, master in self._saved:
            layer.weight = master
        self._saved.clear()


class QATTrainer(Trainer):
    """Trainer that sees deployment quantization during every batch.

    Besides the weight and activation fake-quantization, inputs are
    snapped to the ``T``-bit radix input grid (``input_steps``) — the
    deployed network never sees more input resolution than the encoder
    provides, so training should not either.

    The optimizer must hold references to the *master* parameter arrays
    (build it from ``model.params()`` before training, as usual); weight
    fake-quantization happens around each forward/backward only.
    """

    def __init__(self, model: Sequential, optimizer, weight_bits: int = 3,
                 input_steps: int | None = None, **kwargs) -> None:
        super().__init__(model, optimizer, **kwargs)
        self.weight_bits = weight_bits
        self.input_steps = input_steps

    def _quantize_inputs(self, images: np.ndarray) -> np.ndarray:
        if self.input_steps is None:
            return images
        levels = 1 << self.input_steps
        return np.clip(np.floor(images * levels), 0, levels - 1) / levels

    def train_epoch(self, images: np.ndarray, labels: np.ndarray) -> float:
        self.model.train()
        order = self._rng.permutation(len(images))
        total, batches = 0.0, 0
        for start in range(0, len(order), self.batch_size):
            idx = order[start:start + self.batch_size]
            if self.schedule is not None:
                self.schedule.apply(self.optimizer, self._global_step)
            batch = self._quantize_inputs(images[idx])
            with fake_quantized_weights(self.model, self.weight_bits):
                logits = self.model.forward(batch)
                total += self.loss.forward(logits, labels[idx])
                self.model.backward(self.loss.backward())
                grads = [g.copy() for g in self.model.grads()]
            self.optimizer.step(grads)
            self._global_step += 1
            batches += 1
        return total / max(batches, 1)

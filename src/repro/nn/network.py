"""Sequential network container with save/load support."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import ShapeError
from repro.nn.layers import Layer

__all__ = ["Sequential"]


class Sequential:
    """A plain feed-forward stack of layers.

    Every network in this reproduction (LeNet-5, VGG-11, the Fang and Ju
    CNNs) is a straight pipeline, so a list of layers is the right level of
    generality — no graph machinery required.
    """

    def __init__(self, layers: list[Layer]) -> None:
        if not layers:
            raise ShapeError("a network needs at least one layer")
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def train(self) -> None:
        for layer in self.layers:
            layer.train()

    def eval(self) -> None:
        for layer in self.layers:
            layer.eval()

    def params(self) -> list[np.ndarray]:
        return [p for layer in self.layers for p in layer.params()]

    def grads(self) -> list[np.ndarray]:
        return [g for layer in self.layers for g in layer.grads()]

    def num_parameters(self) -> int:
        """Total trainable parameter count (the paper quotes 28.5M for VGG-11)."""
        return sum(p.size for p in self.params())

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat mapping of parameter arrays, keyed by layer index and slot."""
        state: dict[str, np.ndarray] = {}
        for i, layer in enumerate(self.layers):
            for j, param in enumerate(layer.params()):
                state[f"layer{i}.param{j}"] = param
            if hasattr(layer, "running_mean"):
                state[f"layer{i}.running_mean"] = layer.running_mean
                state[f"layer{i}.running_var"] = layer.running_var
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        for i, layer in enumerate(self.layers):
            for j, param in enumerate(layer.params()):
                key = f"layer{i}.param{j}"
                if key not in state:
                    raise ShapeError(f"missing parameter {key} in state dict")
                if state[key].shape != param.shape:
                    raise ShapeError(
                        f"shape mismatch for {key}: saved "
                        f"{state[key].shape}, model {param.shape}"
                    )
                param[...] = state[key]
            if hasattr(layer, "running_mean"):
                layer.running_mean[...] = state[f"layer{i}.running_mean"]
                layer.running_var[...] = state[f"layer{i}.running_var"]

    def save(self, path: str | Path) -> None:
        """Serialize parameters to a ``.npz`` archive."""
        np.savez_compressed(Path(path), **self.state_dict())

    def load(self, path: str | Path) -> None:
        """Restore parameters saved by :meth:`save`."""
        with np.load(Path(path)) as archive:
            self.load_state_dict({k: archive[k] for k in archive.files})

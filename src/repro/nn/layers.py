"""Trainable layers with explicit forward/backward passes.

Each layer caches what its backward pass needs during ``forward`` and
exposes ``params()`` / ``grads()`` in matching order so optimizers can walk
them generically.  The layer set is exactly what the paper's workloads need
(LeNet-5, VGG-11, the Fang/Ju CNNs): convolution, linear, ReLU, average and
max pooling, flatten, dropout and batch norm (batch norm folds into the
preceding convolution before conversion to an SNN).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn import functional as F
from repro.nn.init import he_normal

__all__ = [
    "Layer",
    "Conv2d",
    "Linear",
    "ReLU",
    "AvgPool2d",
    "MaxPool2d",
    "Flatten",
    "Dropout",
    "BatchNorm2d",
]


class Layer:
    """Base class: stateless layers only override forward/backward."""

    training: bool = True

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def params(self) -> list[np.ndarray]:
        """Trainable tensors, in a fixed order matching :meth:`grads`."""
        return []

    def grads(self) -> list[np.ndarray]:
        """Gradients for :meth:`params`, valid after ``backward``."""
        return []

    def train(self) -> None:
        self.training = True

    def eval(self) -> None:
        self.training = False

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Conv2d(Layer):
    """2-D convolution over NCHW tensors."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        if in_channels < 1 or out_channels < 1 or kernel_size < 1:
            raise ShapeError("conv dimensions must be positive")
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = he_normal(
            (out_channels, in_channels, kernel_size, kernel_size), rng
        )
        self.bias = np.zeros(out_channels) if bias else None
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros(out_channels) if bias else None
        self._cols: np.ndarray | None = None
        self._input_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out, cols = F.conv2d(x, self.weight, self.bias, self.stride,
                             self.padding)
        if self.training:
            self._cols = cols
            self._input_shape = x.shape
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cols is None or self._input_shape is None:
            raise ShapeError("backward called before forward")
        grad_in, gw, gb = F.conv2d_backward(
            grad_out, self._cols, self.weight, self._input_shape,
            self.stride, self.padding, self.bias is not None,
        )
        self.grad_weight = gw
        if gb is not None:
            self.grad_bias = gb
        return grad_in

    def params(self) -> list[np.ndarray]:
        return [self.weight] if self.bias is None else [self.weight, self.bias]

    def grads(self) -> list[np.ndarray]:
        if self.bias is None:
            return [self.grad_weight]
        return [self.grad_weight, self.grad_bias]


class Linear(Layer):
    """Fully-connected layer on ``(N, features)`` tensors."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        if in_features < 1 or out_features < 1:
            raise ShapeError("linear dimensions must be positive")
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = he_normal((out_features, in_features), rng)
        self.bias = np.zeros(out_features) if bias else None
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros(out_features) if bias else None
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ShapeError(
                f"linear layer expects (N, {self.in_features}), got {x.shape}"
            )
        if self.training:
            self._input = x
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise ShapeError("backward called before forward")
        self.grad_weight = grad_out.T @ self._input
        if self.bias is not None:
            self.grad_bias = grad_out.sum(axis=0)
        return grad_out @ self.weight

    def params(self) -> list[np.ndarray]:
        return [self.weight] if self.bias is None else [self.weight, self.bias]

    def grads(self) -> list[np.ndarray]:
        if self.bias is None:
            return [self.grad_weight]
        return [self.grad_weight, self.grad_bias]


class ReLU(Layer):
    """Rectified linear unit; the only nonlinearity SNN conversion supports."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.training:
            self._mask = x > 0
        return np.maximum(x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ShapeError("backward called before forward")
        return grad_out * self._mask


class AvgPool2d(Layer):
    """Average pooling; maps to the accelerator's adder-only pooling unit."""

    def __init__(self, size: int, stride: int | None = None) -> None:
        self.size = size
        self.stride = stride if stride is not None else size
        self._input_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.training:
            self._input_shape = x.shape
        return F.avg_pool2d(x, self.size, self.stride)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise ShapeError("backward called before forward")
        return F.avg_pool2d_backward(
            grad_out, self._input_shape, self.size, self.stride
        )


class MaxPool2d(Layer):
    """Max pooling (kept for ANN baselines; conversion prefers AvgPool2d)."""

    def __init__(self, size: int, stride: int | None = None) -> None:
        self.size = size
        self.stride = stride if stride is not None else size
        self._argmax: np.ndarray | None = None
        self._input_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out, arg = F.max_pool2d(x, self.size, self.stride)
        if self.training:
            self._argmax = arg
            self._input_shape = x.shape
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._argmax is None or self._input_shape is None:
            raise ShapeError("backward called before forward")
        return F.max_pool2d_backward(
            grad_out, self._argmax, self._input_shape, self.size, self.stride
        )


class Flatten(Layer):
    """Collapse all non-batch axes; the 2-D → 1-D buffer handoff point."""

    def __init__(self) -> None:
        self._input_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise ShapeError("backward called before forward")
        return grad_out.reshape(self._input_shape)


class Dropout(Layer):
    """Inverted dropout; identity at eval time (and after conversion)."""

    def __init__(self, rate: float = 0.5, seed: int = 0) -> None:
        if not 0.0 <= rate < 1.0:
            raise ShapeError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = np.random.default_rng(seed)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.rate == 0.0:
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask


class BatchNorm2d(Layer):
    """Batch normalization over NCHW tensors.

    Used only during ANN training; :func:`repro.snn.convert.fold_batch_norm`
    folds the learned affine into the preceding convolution so the deployed
    network contains only conv/pool/linear/ReLU.
    """

    def __init__(self, num_features: int, momentum: float = 0.1,
                 eps: float = 1e-5) -> None:
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = np.ones(num_features)
        self.beta = np.zeros(num_features)
        self.grad_gamma = np.zeros(num_features)
        self.grad_beta = np.zeros(num_features)
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ShapeError(
                f"batch norm expects (N, {self.num_features}, H, W), "
                f"got {x.shape}"
            )
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var
            )
        else:
            mean, var = self.running_mean, self.running_var
        shape = (1, -1, 1, 1)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean.reshape(shape)) * inv_std.reshape(shape)
        if self.training:
            self._cache = (x_hat, inv_std)
        return self.gamma.reshape(shape) * x_hat + self.beta.reshape(shape)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ShapeError("backward called before forward")
        x_hat, inv_std = self._cache
        shape = (1, -1, 1, 1)
        m = grad_out.shape[0] * grad_out.shape[2] * grad_out.shape[3]
        self.grad_gamma = (grad_out * x_hat).sum(axis=(0, 2, 3))
        self.grad_beta = grad_out.sum(axis=(0, 2, 3))
        g = grad_out * self.gamma.reshape(shape)
        term = (
            g
            - g.mean(axis=(0, 2, 3)).reshape(shape)
            - x_hat * (g * x_hat).sum(axis=(0, 2, 3)).reshape(shape) / m
        )
        return term * inv_std.reshape(shape)

    def params(self) -> list[np.ndarray]:
        return [self.gamma, self.beta]

    def grads(self) -> list[np.ndarray]:
        return [self.grad_gamma, self.grad_beta]

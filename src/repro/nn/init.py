"""Weight initialization schemes for the ANN substrate."""

from __future__ import annotations

import numpy as np

__all__ = ["he_normal", "xavier_uniform", "fan_in_out"]


def fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    """Fan-in / fan-out of a weight tensor.

    For convolution kernels ``(C_out, C_in, Kr, Kc)`` the receptive-field
    size multiplies the channel counts; for linear matrices ``(N_out, N_in)``
    it is just the two dimensions.
    """
    if len(shape) < 2:
        raise ValueError(f"weight tensor needs >= 2 dims, got shape {shape}")
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def he_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He (Kaiming) normal init — the right default for ReLU networks."""
    fan_in, _ = fan_in_out(shape)
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def xavier_uniform(
    shape: tuple[int, ...], rng: np.random.Generator
) -> np.ndarray:
    """Xavier/Glorot uniform init, for layers feeding non-ReLU activations."""
    fan_in, fan_out = fan_in_out(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)

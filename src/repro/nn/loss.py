"""Loss functions for ANN training."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

__all__ = ["CrossEntropyLoss", "softmax"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable row-wise softmax."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class CrossEntropyLoss:
    """Softmax cross-entropy with optional label smoothing.

    ``forward`` returns the mean loss; ``backward`` returns the gradient
    w.r.t. the logits, already divided by the batch size so it can be fed
    straight into ``Sequential.backward``.
    """

    def __init__(self, label_smoothing: float = 0.0) -> None:
        if not 0.0 <= label_smoothing < 1.0:
            raise ShapeError(
                f"label smoothing must be in [0, 1), got {label_smoothing}"
            )
        self.label_smoothing = label_smoothing
        self._probs: np.ndarray | None = None
        self._targets: np.ndarray | None = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        if logits.ndim != 2:
            raise ShapeError(f"logits must be (N, classes), got {logits.shape}")
        targets = np.asarray(targets)
        if targets.shape != (logits.shape[0],):
            raise ShapeError(
                f"targets must be (N,) class indices, got {targets.shape}"
            )
        n, k = logits.shape
        probs = softmax(logits)
        self._probs = probs
        self._targets = targets
        eps = self.label_smoothing
        true_prob = probs[np.arange(n), targets]
        nll = -np.log(np.clip(true_prob, 1e-12, None))
        if eps == 0.0:
            return float(nll.mean())
        uniform = -np.log(np.clip(probs, 1e-12, None)).mean(axis=1)
        return float(((1 - eps) * nll + eps * uniform).mean())

    def backward(self) -> np.ndarray:
        if self._probs is None or self._targets is None:
            raise ShapeError("backward called before forward")
        n, k = self._probs.shape
        eps = self.label_smoothing
        target_dist = np.full_like(self._probs, eps / k)
        target_dist[np.arange(n), self._targets] += 1.0 - eps
        return (self._probs - target_dist) / n

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(logits, targets)

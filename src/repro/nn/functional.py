"""Low-level numpy kernels for the ANN substrate.

Convolutions are implemented with im2col + GEMM so training runs at BLAS
speed; the column layout ``(C_in * Kr * Kc)`` matches the kernel layout
``(C_out, C_in, Kr, Kc)`` flattened per output channel, which keeps the
forward/backward passes simple to reason about.

All image tensors use the ``(N, C, H, W)`` layout.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.errors import ShapeError

__all__ = [
    "conv_output_size",
    "pad2d",
    "im2col",
    "col2im",
    "conv2d",
    "conv2d_backward",
    "avg_pool2d",
    "avg_pool2d_backward",
    "max_pool2d",
    "max_pool2d_backward",
]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Output spatial extent of a convolution/pooling window sweep."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out < 1:
        raise ShapeError(
            f"window of size {kernel} (stride {stride}, padding {padding}) "
            f"does not fit input of size {size}"
        )
    return out


def pad2d(images: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the two trailing (spatial) axes symmetrically."""
    if padding == 0:
        return images
    return np.pad(
        images, ((0, 0), (0, 0), (padding, padding), (padding, padding))
    )


def im2col(
    images: np.ndarray, kernel: tuple[int, int], stride: int, padding: int
) -> np.ndarray:
    """Unfold sliding windows into a matrix.

    Returns an array of shape ``(N, H_out * W_out, C * Kr * Kc)``; each row
    is one receptive field, flattened channel-major to match flattened
    ``(C_out, C*Kr*Kc)`` kernels.
    """
    if images.ndim != 4:
        raise ShapeError(f"expected NCHW input, got shape {images.shape}")
    kr, kc = kernel
    n, c, h, w = images.shape
    h_out = conv_output_size(h, kr, stride, padding)
    w_out = conv_output_size(w, kc, stride, padding)
    padded = pad2d(images, padding)
    sn, sc, sh, sw = padded.strides
    windows = as_strided(
        padded,
        shape=(n, c, h_out, w_out, kr, kc),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(
        n, h_out * w_out, c * kr * kc
    )
    return np.ascontiguousarray(cols)


def col2im(
    cols: np.ndarray,
    image_shape: tuple[int, int, int, int],
    kernel: tuple[int, int],
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold a column matrix back into images, summing overlapping windows.

    This is the adjoint of :func:`im2col` and is what backpropagation
    through a convolution needs.
    """
    n, c, h, w = image_shape
    kr, kc = kernel
    h_out = conv_output_size(h, kr, stride, padding)
    w_out = conv_output_size(w, kc, stride, padding)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding))
    reshaped = cols.reshape(n, h_out, w_out, c, kr, kc)
    for dy in range(kr):
        y_end = dy + stride * h_out
        for dx in range(kc):
            x_end = dx + stride * w_out
            padded[:, :, dy:y_end:stride, dx:x_end:stride] += reshaped[
                :, :, :, :, dy, dx
            ].transpose(0, 3, 1, 2)
    if padding == 0:
        return padded
    return padded[:, :, padding:-padding, padding:-padding]


def conv2d(
    images: np.ndarray,
    kernels: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
    padding: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Forward convolution.

    Returns ``(output, cols)`` where ``cols`` is the im2col matrix cached
    for the backward pass.
    """
    c_out, c_in, kr, kc = kernels.shape
    if images.shape[1] != c_in:
        raise ShapeError(
            f"input has {images.shape[1]} channels but kernels expect {c_in}"
        )
    n = images.shape[0]
    h_out = conv_output_size(images.shape[2], kr, stride, padding)
    w_out = conv_output_size(images.shape[3], kc, stride, padding)
    cols = im2col(images, (kr, kc), stride, padding)
    flat_k = kernels.reshape(c_out, -1)
    out = cols @ flat_k.T
    if bias is not None:
        out = out + bias
    out = out.transpose(0, 2, 1).reshape(n, c_out, h_out, w_out)
    return out, cols


def conv2d_backward(
    grad_out: np.ndarray,
    cols: np.ndarray,
    kernels: np.ndarray,
    image_shape: tuple[int, int, int, int],
    stride: int,
    padding: int,
    with_bias: bool,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Gradients of a convolution w.r.t. input, kernels and bias."""
    c_out, c_in, kr, kc = kernels.shape
    n = grad_out.shape[0]
    grad_flat = grad_out.reshape(n, c_out, -1).transpose(0, 2, 1)
    grad_kernels = np.einsum("npk,npo->ok", cols, grad_flat).reshape(
        kernels.shape
    )
    grad_bias = grad_flat.sum(axis=(0, 1)) if with_bias else None
    grad_cols = grad_flat @ kernels.reshape(c_out, -1)
    grad_images = col2im(grad_cols, image_shape, (kr, kc), stride, padding)
    return grad_images, grad_kernels, grad_bias


def _pool_windows(images: np.ndarray, size: int, stride: int) -> np.ndarray:
    n, c, h, w = images.shape
    h_out = conv_output_size(h, size, stride, 0)
    w_out = conv_output_size(w, size, stride, 0)
    sn, sc, sh, sw = images.strides
    return as_strided(
        images,
        shape=(n, c, h_out, w_out, size, size),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )


def avg_pool2d(images: np.ndarray, size: int, stride: int) -> np.ndarray:
    """Average pooling (the paper's adder-only pooling unit computes this)."""
    return _pool_windows(images, size, stride).mean(axis=(4, 5))


def avg_pool2d_backward(
    grad_out: np.ndarray,
    image_shape: tuple[int, int, int, int],
    size: int,
    stride: int,
) -> np.ndarray:
    """Gradient of average pooling: spread each gradient over its window."""
    n, c, h, w = image_shape
    grad = np.zeros(image_shape)
    share = grad_out / (size * size)
    h_out, w_out = grad_out.shape[2], grad_out.shape[3]
    for dy in range(size):
        for dx in range(size):
            grad[:, :, dy:dy + stride * h_out:stride,
                 dx:dx + stride * w_out:stride] += share
    return grad


def max_pool2d(
    images: np.ndarray, size: int, stride: int
) -> tuple[np.ndarray, np.ndarray]:
    """Max pooling; returns ``(output, argmax)`` with argmax cached for
    backward (flat index within each window)."""
    windows = _pool_windows(images, size, stride)
    n, c, h_out, w_out = windows.shape[:4]
    flat = windows.reshape(n, c, h_out, w_out, size * size)
    arg = flat.argmax(axis=4)
    out = np.take_along_axis(flat, arg[..., np.newaxis], axis=4)[..., 0]
    return out, arg


def max_pool2d_backward(
    grad_out: np.ndarray,
    argmax: np.ndarray,
    image_shape: tuple[int, int, int, int],
    size: int,
    stride: int,
) -> np.ndarray:
    """Gradient of max pooling: route each gradient to its argmax cell."""
    grad = np.zeros(image_shape)
    n, c, h_out, w_out = grad_out.shape
    dy = (argmax // size).astype(np.int64)
    dx = (argmax % size).astype(np.int64)
    ys = (np.arange(h_out) * stride).reshape(1, 1, -1, 1) + dy
    xs = (np.arange(w_out) * stride).reshape(1, 1, 1, -1) + dx
    ns = np.arange(n).reshape(-1, 1, 1, 1)
    cs = np.arange(c).reshape(1, -1, 1, 1)
    np.add.at(grad, (ns, cs, ys, xs), grad_out)
    return grad

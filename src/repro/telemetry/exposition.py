"""HTTP scrape endpoint: Prometheus text, JSON, and recent traces.

``MetricsServer`` is the pull side of the telemetry plane — a tiny
stdlib ``ThreadingHTTPServer`` running on its own daemon thread so the
asyncio serve loop never blocks on a scraper:

* ``GET /metrics``      — Prometheus text exposition (0.0.4)
* ``GET /metrics.json`` — the registry as JSON, plus the optional
  server snapshot (``snapshot_fn``) under ``"server"``
* ``GET /traces``       — recent traces from the flight recorder
  (``?limit=N``, newest first)
* ``GET /healthz``      — liveness probe

Wired in by ``repro serve --metrics-port N`` (port 0 picks a free
port; the bound port is on ``server.port``).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.telemetry.metrics import get_registry
from repro.telemetry.trace import get_tracer

__all__ = ["MetricsServer", "PROMETHEUS_CONTENT_TYPE"]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-telemetry/1"

    def _send(self, body: str, content_type: str, status: int = 200) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        parsed = urlparse(self.path)
        owner: "MetricsServer" = self.server.owner  # type: ignore[attr-defined]
        try:
            if parsed.path == "/metrics":
                self._send(owner.registry.to_prometheus(),
                           PROMETHEUS_CONTENT_TYPE)
            elif parsed.path == "/metrics.json":
                payload = {"metrics": owner.registry.to_dict()}
                if owner.snapshot_fn is not None:
                    payload["server"] = owner.snapshot_fn()
                self._send(json.dumps(payload), "application/json")
            elif parsed.path == "/traces":
                query = parse_qs(parsed.query)
                limit = int(query.get("limit", ["16"])[0])
                payload = {
                    "traces": owner.tracer.recorder.traces(limit=limit),
                    "events": owner.tracer.recorder.events(limit=64),
                }
                self._send(json.dumps(payload), "application/json")
            elif parsed.path == "/healthz":
                self._send("ok\n", "text/plain")
            else:
                self._send("not found\n", "text/plain", status=404)
        except Exception as exc:  # scrape must answer, not hang
            self._send(f"error: {exc}\n", "text/plain", status=500)

    def log_message(self, format: str, *args) -> None:
        pass  # scrapes every few seconds would spam the serve log


class MetricsServer:
    """Threaded HTTP exposition of the registry + flight recorder."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 registry=None, tracer=None, snapshot_fn=None) -> None:
        self.registry = registry or get_registry()
        self.tracer = tracer or get_tracer()
        self.snapshot_fn = snapshot_fn
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.owner = self  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}"

    def start(self) -> "MetricsServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-metrics",
            daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

"""One telemetry plane for the whole stack.

``repro.telemetry`` is the process-wide instrumentation layer every
subsystem feeds:

* :mod:`repro.telemetry.trace` — request tracing: a :class:`Span` tree
  per request with context propagation across threads, processes and
  TCP hops (the ``trace`` field both frame protocols carry), plus a
  bounded :class:`FlightRecorder` of recent traces/events.
* :mod:`repro.telemetry.metrics` — a unified registry of typed
  :class:`Counter` / :class:`Gauge` / :class:`Histogram` instruments
  with labels, exported as Prometheus text exposition or JSON.
* :mod:`repro.telemetry.exposition` — the ``repro serve
  --metrics-port`` HTTP scrape endpoint (``/metrics``,
  ``/metrics.json``, ``/traces``, ``/healthz``).
* :mod:`repro.telemetry.top` — the ``repro top`` live terminal view.

Telemetry is **off by default** and costs nothing when off: the tracer
hands out a shared null span (no per-request allocation) and the
metric instruments are allocated once per label set, never per
request.  ``configure(tracing=True)`` (or ``repro serve
--metrics-port``) switches the plane on.
"""

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.telemetry.trace import (
    NULL_SPAN,
    FlightRecorder,
    Span,
    Tracer,
    configure,
    get_tracer,
    reset_telemetry,
    telemetry_summary,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "NULL_SPAN",
    "FlightRecorder",
    "Span",
    "Tracer",
    "configure",
    "get_tracer",
    "reset_telemetry",
    "telemetry_summary",
    "tracing_enabled",
]

"""Request tracing: span trees with cross-process context propagation.

A *trace* is the story of one request; a *span* is one named stage of
it (``admission``, ``batch``, ``dispatch``, ``execute``, ``reply``,
``lane_execute``...).  Spans carry ``trace_id`` / ``span_id`` /
``parent_id``, wall-clock start, duration, and an attrs dict for the
numbers that explain *where* an inference went: queue wait, service
and serialization time, shm-copy time, engine cycles / energy /
spike counts.

Context crosses every boundary the fabric has as a two-key dict
(:meth:`Span.context` → ``{"trace_id", "span_id"}``): it rides the
serve TCP protocol and the worker protocol as a ``trace`` field of the
request payload — which means it is carried natively by **both** frame
protocols (JSON lines and binary ``RBF1``, whose header is the payload
JSON), so remote lanes and ``--join`` workers land in the same trace.
Worker-side spans return in the reply (``spans`` field /
``WorkResult.spans``) and are merged into the caller's recorder.

The disabled path is free by construction: ``Tracer.span(...)``
returns the shared :data:`NULL_SPAN` singleton — no object is
allocated per request, nothing is recorded, and ``spans_started``
stays 0 (the overhead guard in ``tests/test_telemetry.py``).

Finished spans land in a bounded :class:`FlightRecorder` (newest-wins
ring), queryable live over the TCP ``op: "traces"`` surface and the
``/traces`` endpoint of the metrics HTTP server.
"""

from __future__ import annotations

import os
import secrets
import threading
import time
from collections import deque

__all__ = [
    "Span",
    "NULL_SPAN",
    "Tracer",
    "FlightRecorder",
    "configure",
    "get_tracer",
    "tracing_enabled",
    "reset_telemetry",
    "telemetry_summary",
]


def _new_trace_id() -> str:
    return secrets.token_hex(8)


def _new_span_id() -> str:
    return secrets.token_hex(4)


class Span:
    """One named, timed stage of a trace.

    ``start`` is wall-clock (``time.time()``) so spans from different
    hosts line up roughly; ``duration_ms`` is measured with
    ``perf_counter`` so within one process stage durations are exact.
    Stage boundaries can be supplied explicitly (``started_at`` /
    ``finish(at=...)`` in perf-counter seconds), which is how the serve
    layer emits *contiguous* stage spans whose durations sum to the
    end-to-end latency by construction.
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "attrs",
                 "start", "duration_ms", "ok", "_t0", "_tracer")

    def __init__(self, name: str, trace_id: str | None = None,
                 parent_id: str | None = None, attrs: dict | None = None,
                 started_at: float | None = None, tracer=None) -> None:
        self.name = name
        self.trace_id = trace_id or _new_trace_id()
        self.span_id = _new_span_id()
        self.parent_id = parent_id
        self.attrs = attrs or {}
        self.ok = True
        self._t0 = time.perf_counter() if started_at is None else started_at
        self.start = time.time() - (time.perf_counter() - self._t0)
        self.duration_ms: float | None = None
        self._tracer = tracer

    @classmethod
    def child_of(cls, context: dict | None, name: str,
                 attrs: dict | None = None, tracer=None) -> "Span":
        """A span continuing a wire context (new root if ``context`` is
        falsy) — used by workers that trace on request, regardless of
        their own process-wide tracer state."""
        ctx = context or {}
        return cls(name, trace_id=ctx.get("trace_id"),
                   parent_id=ctx.get("span_id"), attrs=attrs, tracer=tracer)

    def context(self) -> dict:
        """The propagation dict to put on the wire (``trace`` field)."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    def set(self, **attrs) -> None:
        self.attrs.update(attrs)

    def finish(self, at: float | None = None, ok: bool = True) -> "Span":
        if self.duration_ms is None:
            end = time.perf_counter() if at is None else at
            self.duration_ms = max(0.0, (end - self._t0) * 1e3)
            self.ok = ok
            if self._tracer is not None:
                self._tracer._record(self)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finish(ok=exc_type is None)

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration_ms": self.duration_ms,
            "ok": self.ok,
            "attrs": dict(self.attrs),
            "pid": os.getpid(),
        }


class _NullSpan:
    """Shared do-nothing span: the whole disabled-tracing hot path."""

    __slots__ = ()
    trace_id = None
    span_id = None
    parent_id = None
    name = "null"
    duration_ms = None
    ok = True

    def context(self) -> None:
        return None

    def set(self, **attrs) -> None:
        pass

    def finish(self, at=None, ok=True) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def __bool__(self) -> bool:
        return False


#: The singleton handed out whenever tracing is disabled.
NULL_SPAN = _NullSpan()


class FlightRecorder:
    """Bounded newest-wins ring of finished span/event dicts."""

    def __init__(self, capacity: int = 2048) -> None:
        self.capacity = int(capacity)
        self._spans: deque = deque(maxlen=self.capacity)
        self._events: deque = deque(maxlen=256)
        self._lock = threading.Lock()

    def record(self, span_dict: dict) -> None:
        with self._lock:
            self._spans.append(span_dict)

    def record_event(self, kind: str, **attrs) -> None:
        with self._lock:
            self._events.append(
                {"kind": kind, "time": time.time(), **attrs})

    def spans(self, limit: int = 0) -> list[dict]:
        with self._lock:
            out = list(self._spans)
        return out[-limit:] if limit else out

    def events(self, limit: int = 0) -> list[dict]:
        with self._lock:
            out = list(self._events)
        return out[-limit:] if limit else out

    def trace(self, trace_id: str) -> list[dict]:
        """Every recorded span of one trace, oldest first."""
        return [s for s in self.spans() if s.get("trace_id") == trace_id]

    def traces(self, limit: int = 16) -> list[dict]:
        """Recent traces, newest first: grouped spans plus rollups."""
        grouped: dict[str, list[dict]] = {}
        order: list[str] = []
        for span in self.spans():
            tid = span.get("trace_id")
            if tid not in grouped:
                grouped[tid] = []
                order.append(tid)
            grouped[tid].append(span)
        out = []
        for tid in reversed(order[-limit:] if limit else order):
            spans = grouped[tid]
            roots = [s for s in spans if not s.get("parent_id")]
            out.append({
                "trace_id": tid,
                "num_spans": len(spans),
                "root": roots[0]["name"] if roots else None,
                "duration_ms": roots[0]["duration_ms"] if roots else None,
                "spans": spans,
            })
        return out

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._events.clear()


class Tracer:
    """Hands out spans; when disabled, hands out :data:`NULL_SPAN`."""

    def __init__(self, enabled: bool = False,
                 recorder: FlightRecorder | None = None) -> None:
        self.enabled = bool(enabled)
        self.recorder = recorder or FlightRecorder()
        self.spans_started = 0
        self.spans_finished = 0

    def span(self, name: str, parent=None, context: dict | None = None,
             attrs: dict | None = None, started_at: float | None = None):
        """A new span, child of ``parent`` (a live span) or of a wire
        ``context``; the :data:`NULL_SPAN` singleton when disabled."""
        if not self.enabled:
            return NULL_SPAN
        self.spans_started += 1
        if parent is not None and parent is not NULL_SPAN:
            return Span(name, trace_id=parent.trace_id,
                        parent_id=parent.span_id, attrs=attrs,
                        started_at=started_at, tracer=self)
        ctx = context or {}
        return Span(name, trace_id=ctx.get("trace_id"),
                    parent_id=ctx.get("span_id"), attrs=attrs,
                    started_at=started_at, tracer=self)

    def _record(self, span: Span) -> None:
        self.spans_finished += 1
        self.recorder.record(span.to_dict())

    def record_foreign(self, span_dicts) -> None:
        """Merge spans produced in another process/host (reply ``spans``
        field) into this recorder, so the trace tree is whole here."""
        if not self.enabled or not span_dicts:
            return
        for d in span_dicts:
            if isinstance(d, dict) and d.get("trace_id"):
                self.recorder.record(d)

    def event(self, kind: str, **attrs) -> None:
        if self.enabled:
            self.recorder.record_event(kind, **attrs)


_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-wide default tracer."""
    return _TRACER


def tracing_enabled() -> bool:
    return _TRACER.enabled


def configure(tracing: bool | None = None,
              recorder_capacity: int | None = None) -> Tracer:
    """Switch the process-wide telemetry plane on/off."""
    if recorder_capacity is not None:
        _TRACER.recorder = FlightRecorder(recorder_capacity)
    if tracing is not None:
        _TRACER.enabled = bool(tracing)
    return _TRACER


def reset_telemetry() -> None:
    """Back to the boot state: tracing off, recorder and registry empty
    (test isolation — also re-registers nothing; samplers re-attach on
    first use of their subsystem)."""
    from repro.telemetry.metrics import get_registry
    _TRACER.enabled = False
    _TRACER.recorder.clear()
    _TRACER.spans_started = 0
    _TRACER.spans_finished = 0
    get_registry().reset()
    # Registry children cached by other modules go stale when their
    # families are dropped; clear those caches so the next use
    # re-registers against the fresh registry.
    try:
        from repro.runtime import codec
        codec._BYTE_COUNTERS.clear()
    except ImportError:  # pragma: no cover - partial installs
        pass


def telemetry_summary() -> dict:
    """Rollup for benchmark artifacts: span totals plus per-stage time.

    ``per_stage_ms`` sums recorded span durations by span name, so a
    ``bench_*.json`` stamped with it records *where* the run's time
    went (admission vs batch wait vs execute ...), not just totals.
    """
    stages: dict[str, float] = {}
    counts: dict[str, int] = {}
    for span in _TRACER.recorder.spans():
        name = span.get("name", "?")
        dur = span.get("duration_ms")
        if dur is not None:
            stages[name] = stages.get(name, 0.0) + dur
            counts[name] = counts.get(name, 0) + 1
    return {
        "tracing_enabled": _TRACER.enabled,
        "spans_total": _TRACER.spans_finished,
        "per_stage_ms": {k: round(v, 3) for k, v in sorted(stages.items())},
        "per_stage_spans": dict(sorted(counts.items())),
    }

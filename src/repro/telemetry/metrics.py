"""Unified metrics registry: typed instruments with labels.

Every subsystem that used to keep its own ad-hoc counters
(``ServerMetrics``, ``GroupMetrics``, chaos summaries, codec byte
counts, the warm-cache hit/miss stats) now *also* feeds one process-
wide :class:`MetricsRegistry`, without changing any existing
``snapshot()`` / ``to_dict()`` shape.  The registry speaks two
formats: Prometheus text exposition (``to_prometheus()``, served by
``repro serve --metrics-port``) and plain JSON (``to_dict()``, served
over the TCP ``op: "telemetry"`` surface for ``repro top``).

Three instrument types ship, mirroring the Prometheus data model:

* :class:`Counter` — monotonically increasing float (``inc``).
* :class:`Gauge` — settable float (``set`` / ``inc``); gauges that
  mirror external state (queue depth, cache stats) are refreshed at
  scrape time by samplers registered with ``register_sampler``.
* :class:`Histogram` — fixed cumulative buckets plus sum/count, the
  shape Prometheus quantile queries expect.

Instruments are allocated **once per label set** via ``labels()`` and
cached; the hot path is a float add under no lock (the GIL makes the
single-value update atomic enough for monitoring).  Nothing here is
ever allocated per request — the overhead guard in
``tests/test_telemetry.py`` pins that.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "DEFAULT_LATENCY_BUCKETS_MS",
]

#: Cumulative bucket upper bounds (milliseconds) for latency histograms.
DEFAULT_LATENCY_BUCKETS_MS = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0,
)


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _format_value(v: float) -> str:
    if v == float("inf"):
        return "+Inf"
    if float(v).is_integer():
        return str(int(v))
    return repr(float(v))


class _Child:
    """One concrete time series: an instrument bound to label values."""

    __slots__ = ("_labels",)

    def __init__(self, labels: tuple) -> None:
        self._labels = labels

    def label_suffix(self, extra: tuple = ()) -> str:
        pairs = tuple(self._labels) + tuple(extra)
        if not pairs:
            return ""
        inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
        return "{" + inner + "}"


class _CounterChild(_Child):
    __slots__ = ("value",)

    def __init__(self, labels: tuple) -> None:
        super().__init__(labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class _GaugeChild(_Child):
    __slots__ = ("value",)

    def __init__(self, labels: tuple) -> None:
        super().__init__(labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class _HistogramChild(_Child):
    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, labels: tuple, buckets: tuple) -> None:
        super().__init__(labels)
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # last = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1


_CHILD_TYPES = {"counter": _CounterChild, "gauge": _GaugeChild}


class _Family:
    """A named metric family: ``labels(**kw)`` hands out cached children."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: tuple = ()) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: dict[tuple, _Child] = {}
        self._lock = threading.Lock()
        if not self.labelnames:
            self._default = self._make_child(())
            self._children[()] = self._default

    def _make_child(self, labels: tuple) -> _Child:
        return _CHILD_TYPES[self.kind](labels)

    def labels(self, **labelvalues):
        key = tuple((k, str(labelvalues[k])) for k in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._make_child(key)
                    self._children[key] = child
        return child

    def children(self) -> list[_Child]:
        return list(self._children.values())


class Counter(_Family):
    kind = "counter"

    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)

    @property
    def value(self) -> float:
        return sum(c.value for c in self.children())


class Gauge(_Family):
    kind = "gauge"

    def set(self, value: float) -> None:
        self._default.set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)

    @property
    def value(self) -> float:
        return sum(c.value for c in self.children())


class Histogram(_Family):
    kind = "histogram"

    def __init__(self, name: str, help: str, labelnames: tuple = (),
                 buckets: tuple = DEFAULT_LATENCY_BUCKETS_MS) -> None:
        self.buckets = tuple(sorted(float(b) for b in buckets))
        super().__init__(name, help, labelnames)

    def _make_child(self, labels: tuple) -> _HistogramChild:
        return _HistogramChild(labels, self.buckets)

    def observe(self, value: float) -> None:
        self._default.observe(value)


class MetricsRegistry:
    """Process-wide home for metric families plus scrape-time samplers.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create by name:
    two subsystems asking for the same family share it (label sets keep
    their series apart), and re-registration with a different type is a
    programming error surfaced immediately.
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._samplers: list = []
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help: str, labelnames: tuple,
                       **kwargs) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = cls(name, help, tuple(labelnames), **kwargs)
                self._families[name] = family
            elif not isinstance(family, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{family.kind}, not {cls.kind}")
            return family

    def counter(self, name: str, help: str = "",
                labelnames: tuple = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: tuple = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "", labelnames: tuple = (),
                  buckets: tuple = DEFAULT_LATENCY_BUCKETS_MS) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames,
                                   buckets=buckets)

    def register_sampler(self, fn) -> None:
        """Register ``fn()`` to run before every collection (refreshes
        gauges that mirror external state, e.g. cache stats)."""
        with self._lock:
            if fn not in self._samplers:
                self._samplers.append(fn)

    def _sample(self) -> None:
        for fn in list(self._samplers):
            try:
                fn()
            except Exception:  # a broken sampler must not kill a scrape
                pass

    def families(self) -> list[_Family]:
        with self._lock:
            return list(self._families.values())

    @property
    def num_series(self) -> int:
        """Total concrete time series (instrument allocations) held."""
        return sum(len(f.children()) for f in self.families())

    def to_prometheus(self) -> str:
        """Render the Prometheus text exposition format (0.0.4)."""
        self._sample()
        lines: list[str] = []
        for family in sorted(self.families(), key=lambda f: f.name):
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for child in family.children():
                if isinstance(child, _HistogramChild):
                    cumulative = 0
                    for bound, n in zip(
                            tuple(child.buckets) + (float("inf"),),
                            child.counts):
                        cumulative += n
                        suffix = child.label_suffix(
                            (("le", _format_value(bound)),))
                        lines.append(
                            f"{family.name}_bucket{suffix} {cumulative}")
                    base = child.label_suffix()
                    lines.append(
                        f"{family.name}_sum{base} "
                        f"{_format_value(child.sum)}")
                    lines.append(f"{family.name}_count{base} {child.count}")
                else:
                    suffix = child.label_suffix()
                    lines.append(
                        f"{family.name}{suffix} "
                        f"{_format_value(child.value)}")
        return "\n".join(lines) + "\n"

    def to_dict(self) -> dict:
        """JSON view: family -> list of ``{labels, value|histogram}``."""
        self._sample()
        out: dict = {}
        for family in self.families():
            series = []
            for child in family.children():
                entry: dict = {"labels": dict(child._labels)}
                if isinstance(child, _HistogramChild):
                    entry["sum"] = child.sum
                    entry["count"] = child.count
                    entry["buckets"] = {
                        _format_value(b): n for b, n in zip(
                            tuple(child.buckets) + (float("inf"),),
                            child.counts)}
                else:
                    entry["value"] = child.value
                series.append(entry)
            out[family.name] = {
                "type": family.kind, "help": family.help, "series": series}
        return out

    def reset(self) -> None:
        """Drop every family and sampler (test isolation)."""
        with self._lock:
            self._families.clear()
            self._samplers.clear()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry every subsystem feeds."""
    return _REGISTRY

"""``repro top`` — a live terminal view of a running server.

Polls a ``repro serve`` daemon over its existing TCP ``op:`` surface
(``metrics`` for the snapshot, ``telemetry`` for the unified registry)
and renders per-deployment throughput / queue depth / p50 / p99 plus
per-lane fabric health (executed, stolen, retries, heartbeat age) and
chaos/retry counters — the operator's eyes on the fabric without a
Prometheus stack.

``render_top`` is a pure snapshot-dicts → text function so tests (and
the CI smoke job) can pin the output shape without a TTY; ``run_top``
is the poll loop behind ``repro top`` (``--once`` prints a single frame
and exits, the CI mode).
"""

from __future__ import annotations

import asyncio
import time

__all__ = ["render_top", "run_top"]


def _fmt(value, width: int = 8, digits: int = 1) -> str:
    if isinstance(value, float):
        return f"{value:>{width}.{digits}f}"
    return f"{value!s:>{width}}"


def _lane_values(telemetry: dict | None, family: str) -> dict:
    """``{lane: value}`` from a lane-labelled gauge/counter family."""
    if not telemetry:
        return {}
    out = {}
    for entry in (telemetry.get(family) or {}).get("series", []):
        lane = entry.get("labels", {}).get("lane")
        if lane is not None and "value" in entry:
            out[lane] = entry["value"]
    return out


def _lane_means(telemetry: dict | None, family: str) -> dict:
    """``{lane: sum/count}`` from a lane-labelled histogram family."""
    if not telemetry:
        return {}
    out = {}
    for entry in (telemetry.get(family) or {}).get("series", []):
        lane = entry.get("labels", {}).get("lane")
        count = entry.get("count", 0)
        if lane is not None and count:
            out[lane] = entry.get("sum", 0.0) / count
    return out


def _deployment_rows(snapshot: dict) -> list[tuple]:
    """(name, stats-dict) rows: per-deployment blocks when present,
    else the aggregate snapshot as one ``all`` row."""
    per = snapshot.get("per_deployment")
    if per:
        return sorted(per.items())
    return [("all", snapshot)]


def render_top(snapshot: dict, telemetry: dict | None = None,
               target: str = "") -> str:
    """One frame of the live view, from wire-shaped snapshot dicts."""
    lines: list[str] = []
    stamp = time.strftime("%H:%M:%S")
    lines.append(f"repro top - {target or 'server'} @ {stamp}   "
                 f"throughput {snapshot.get('throughput_rps', 0.0):.1f} rps  "
                 f"queue {snapshot.get('queue_depth', 0)}  "
                 f"completed {snapshot.get('completed', 0)}  "
                 f"rejected {snapshot.get('rejected', 0)}  "
                 f"timed_out {snapshot.get('timed_out', 0)}  "
                 f"deduped {snapshot.get('deduped', 0)}  "
                 f"cached {snapshot.get('cached', 0)}")
    lines.append("")
    header = (f"{'deployment':<14}{'rps':>8}{'queue':>7}{'batch':>7}"
              f"{'p50 ms':>9}{'p99 ms':>9}{'wait p99':>10}{'done':>8}")
    lines.append(header)
    lines.append("-" * len(header))
    for name, stats in _deployment_rows(snapshot):
        latency = stats.get("latency_ms", {})
        wait = stats.get("queue_wait_ms", {})
        lines.append(
            f"{name:<14}"
            f"{_fmt(stats.get('throughput_rps', 0.0))}"
            f"{_fmt(stats.get('queue_depth', 0), 7)}"
            f"{_fmt(stats.get('mean_batch_size', 0.0), 7)}"
            f"{_fmt(latency.get('p50', 0.0), 9, 2)}"
            f"{_fmt(latency.get('p99', 0.0), 9, 2)}"
            f"{_fmt(wait.get('p99', 0.0), 10, 2)}"
            f"{_fmt(stats.get('completed', 0))}")

    fabric = snapshot.get("fabric") or {}
    executed = fabric.get("executed") or {}
    if executed:
        # Per-lane pipelining state lives in the unified registry: the
        # in-flight gauge is the *current* window depth, the occupancy
        # histogram's sum/count gives the mean depth at each send.
        inflight = _lane_values(telemetry, "repro_fabric_inflight_chunks")
        occupancy = _lane_means(telemetry,
                                "repro_fabric_window_occupancy")
        lines.append("")
        lane_header = (f"{'lane':<22}{'executed':>10}{'inflight':>10}"
                       f"{'win avg':>9}{'heartbeat age s':>17}")
        lines.append(lane_header)
        lines.append("-" * len(lane_header))
        ages = fabric.get("heartbeat_age_s") or {}
        for lane in sorted(executed):
            age = ages.get(lane)
            depth = inflight.get(lane)
            mean = occupancy.get(lane)
            lines.append(
                f"{lane:<22}{executed[lane]:>10}"
                f"{'-' if depth is None else int(depth):>10}"
                f"{'-' if mean is None else format(mean, '.2f'):>9}"
                f"{age if age is None else format(age, '.1f'):>17}")
        lines.append(
            f"fabric: batched={fabric.get('batched', 0)} "
            f"pipelined={fabric.get('pipelined', 0)} "
            f"stolen={fabric.get('stolen', 0)} "
            f"retries={fabric.get('retries', 0)} "
            f"requeued={fabric.get('requeued', 0)} "
            f"crashes={fabric.get('worker_crashes', 0)} "
            f"poisoned={fabric.get('poisoned', 0)} "
            f"deduped={fabric.get('deduped', 0)}")
    cache = fabric.get("result_cache")
    if cache:
        lines.append(
            f"result cache: entries={cache.get('entries', 0)}"
            f"/{cache.get('capacity', 0)} "
            f"hits={cache.get('hits', 0)} "
            f"misses={cache.get('misses', 0)} "
            f"evictions={cache.get('evictions', 0)}")

    if telemetry:
        chaos = telemetry.get("repro_chaos_faults_total")
        if chaos and chaos.get("series"):
            lines.append("")
            lines.append("chaos faults:")
            for entry in chaos["series"]:
                labels = entry.get("labels", {})
                tag = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
                lines.append(f"  {tag or 'total'}: "
                             f"{int(entry.get('value', 0))}")
        spans = telemetry.get("repro_spans_finished")
        if spans and spans.get("series"):
            total = sum(e.get("value", 0) for e in spans["series"])
            lines.append(f"tracing: {int(total)} spans recorded")
    return "\n".join(lines) + "\n"


async def _one_frame(host: str, port: int, deployment=None) -> str:
    from repro.serve.transport import TcpClient

    async with TcpClient(host, port) as client:
        snapshot = await client.metrics(deployment=deployment)
        try:
            telemetry = await client.telemetry()
        except Exception:
            telemetry = None  # pre-telemetry server: degrade gracefully
    return render_top(snapshot, telemetry, target=f"{host}:{port}")


def run_top(host: str, port: int, interval_s: float = 2.0,
            once: bool = False, deployment=None) -> int:
    """Poll and render until Ctrl-C (or a single frame with ``once``)."""
    try:
        while True:
            frame = asyncio.run(_one_frame(host, port, deployment))
            if once:
                print(frame, end="")
                return 0
            # Clear-and-home keeps the frame stable like top(1).
            print("\x1b[2J\x1b[H" + frame, end="", flush=True)
            time.sleep(interval_s)
    except KeyboardInterrupt:
        print()
        return 0
    except ConnectionError as error:
        raise SystemExit(f"repro top: cannot reach {host}:{port} ({error})")

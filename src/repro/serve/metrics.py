"""Serving metrics: throughput, queue depth, batch sizes, latency tails.

:class:`ServerMetrics` is the live collector the server feeds after every
completed request; :meth:`ServerMetrics.snapshot` freezes it into a
:class:`MetricsSnapshot` — the JSON-serializable record the CLI prints,
the benchmark persists to ``artifacts/bench_serve.json`` and the load
generator asserts SLOs against.

Latencies are kept exactly (one float per request) over a bounded
sliding window (``window`` most recent requests, default 100k): within
the window p99 is a real order statistic, not a sketch estimate — and
the window keeps the long-running ``repro serve`` daemon's memory flat
instead of growing a list per request forever.  Benchmarks and tests
complete fewer requests than the default window, so for them the
percentiles are exact over the whole run.  ``completed``/``rejected``
and the batch histogram are lifetime totals regardless.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

import numpy as np

__all__ = ["MetricsSnapshot", "ServerMetrics"]


def _registry_instruments(deployment: str) -> dict:
    """Cached registry children for one deployment's serving counters."""
    from repro.telemetry import get_registry
    from repro.telemetry.metrics import DEFAULT_LATENCY_BUCKETS_MS

    registry = get_registry()
    labels = {"deployment": deployment}
    return {
        "requests": registry.counter(
            "repro_requests_total",
            "Requests completed, per deployment",
            labelnames=("deployment",)).labels(**labels),
        "latency": registry.histogram(
            "repro_request_latency_ms",
            "End-to-end request latency (enqueue to result), ms",
            labelnames=("deployment",),
            buckets=DEFAULT_LATENCY_BUCKETS_MS).labels(**labels),
        "queue_wait": registry.histogram(
            "repro_request_queue_wait_ms",
            "Coalescing delay before the batch dispatched, ms",
            labelnames=("deployment",),
            buckets=DEFAULT_LATENCY_BUCKETS_MS).labels(**labels),
        "rejected": registry.counter(
            "repro_requests_rejected_total",
            "Requests bounced off the bounded queue, per deployment",
            labelnames=("deployment",)).labels(**labels),
        "timed_out": registry.counter(
            "repro_requests_timed_out_total",
            "Requests expired before dispatch, per deployment",
            labelnames=("deployment",)).labels(**labels),
        "deduped": registry.counter(
            "repro_requests_deduped_total",
            "Duplicate submissions answered from the ledger, per deployment",
            labelnames=("deployment",)).labels(**labels),
    }


def _percentiles(samples) -> dict[str, float]:
    """p50/p95/p99 plus mean and max of a latency series, in ms."""
    if not samples:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0,
                "max": 0.0}
    array = np.asarray(samples, dtype=np.float64)
    p50, p95, p99 = np.percentile(array, (50.0, 95.0, 99.0))
    return {"p50": float(p50), "p95": float(p95), "p99": float(p99),
            "mean": float(array.mean()), "max": float(array.max())}


@dataclass(frozen=True)
class MetricsSnapshot:
    """One frozen reading of a server's counters and distributions.

    ``latency_ms`` is end-to-end (enqueue → result), ``queue_wait_ms``
    the coalescing delay before the batch started executing, and
    ``service_ms`` the engine execution time of the request's batch.
    """

    completed: int
    rejected: int
    queue_depth: int
    elapsed_s: float
    throughput_rps: float
    batch_size_histogram: dict[int, int]
    mean_batch_size: float
    latency_ms: dict[str, float]
    queue_wait_ms: dict[str, float]
    service_ms: dict[str, float]
    timed_out: int = 0        # requests expired before dispatch
    worker_crashes: int = 0   # engine lanes evicted by the runtime fabric
    deduped: int = 0          # requests answered from the result ledger
    cached: int = 0           # requests answered from the result cache
    replica_divergences: int = 0  # replicated answers that disagreed
    #: Per-deployment snapshots (``{name: snapshot dict}``) on a
    #: multi-model server's aggregate snapshot; ``None`` on the
    #: per-deployment snapshots themselves and single-model servers.
    per_deployment: dict | None = None
    #: The runtime fabric's scheduling counters (``GroupMetrics.to_dict``
    #: — executed/stolen/requeued/retries/poisoned/deduped/...) on the
    #: aggregate snapshot of a running server; ``None`` elsewhere.
    fabric: dict | None = None

    def to_dict(self) -> dict:
        """JSON-ready payload (histogram keys become strings)."""
        payload = {
            "completed": self.completed,
            "rejected": self.rejected,
            "timed_out": self.timed_out,
            "worker_crashes": self.worker_crashes,
            "deduped": self.deduped,
            "cached": self.cached,
            "replica_divergences": self.replica_divergences,
            "queue_depth": self.queue_depth,
            "elapsed_s": self.elapsed_s,
            "throughput_rps": self.throughput_rps,
            "batch_size_histogram": {str(k): v for k, v in
                                     sorted(self.batch_size_histogram
                                            .items())},
            "mean_batch_size": self.mean_batch_size,
            "latency_ms": dict(self.latency_ms),
            "queue_wait_ms": dict(self.queue_wait_ms),
            "service_ms": dict(self.service_ms),
        }
        if self.per_deployment is not None:
            payload["per_deployment"] = dict(self.per_deployment)
        if self.fabric is not None:
            payload["fabric"] = dict(self.fabric)
        return payload


class ServerMetrics:
    """Accumulates per-request observations; cheap to feed, exact to read
    (percentiles over the most recent ``window`` requests).

    With a ``deployment`` name the collector *also* feeds the unified
    telemetry registry (``repro.telemetry``) under that label — the
    instruments are allocated once here, never per request, and every
    existing snapshot shape is untouched.  The aggregate collector on a
    multi-model server passes no name: its numbers are the sum of the
    labeled series, so feeding it too would double-count.
    """

    def __init__(self, window: int = 100_000,
                 deployment: str | None = None) -> None:
        self.window = window
        self.started_at = time.perf_counter()
        self.completed = 0
        self.rejected = 0
        self.timed_out = 0
        self.deduped = 0
        self.cached = 0
        self.replica_divergences = 0
        self._latency_ms: deque = deque(maxlen=window)
        self._queue_wait_ms: deque = deque(maxlen=window)
        self._service_ms: deque = deque(maxlen=window)
        self._batch_sizes: dict[int, int] = {}
        self._prom = (None if deployment is None
                      else _registry_instruments(deployment))

    def record(self, latency_ms: float, queue_wait_ms: float,
               service_ms: float, batch_size: int) -> None:
        """One completed request (called once per request, not per batch)."""
        self.completed += 1
        self._latency_ms.append(latency_ms)
        self._queue_wait_ms.append(queue_wait_ms)
        self._service_ms.append(service_ms)
        self._batch_sizes[batch_size] = \
            self._batch_sizes.get(batch_size, 0) + 1
        if self._prom is not None:
            self._prom["requests"].inc()
            self._prom["latency"].observe(latency_ms)
            self._prom["queue_wait"].observe(queue_wait_ms)

    def record_rejected(self) -> None:
        """A submit bounced off the bounded queue (backpressure)."""
        self.rejected += 1
        if self._prom is not None:
            self._prom["rejected"].inc()

    def record_timeout(self) -> None:
        """A request's deadline passed before its batch dispatched."""
        self.timed_out += 1
        if self._prom is not None:
            self._prom["timed_out"].inc()

    def record_deduped(self) -> None:
        """A duplicate submission answered from the result ledger."""
        self.deduped += 1
        if self._prom is not None:
            self._prom["deduped"].inc()

    def record_cached(self) -> None:
        """A submission answered from the content-addressed result
        cache (the cache feeds the registry's global
        ``repro_result_cache_*`` counters itself — no per-deployment
        instrument here, so nothing double-counts)."""
        self.cached += 1

    def record_divergence(self) -> None:
        """A replicated request's answers disagreed (runtime assert)."""
        self.replica_divergences += 1

    def reset(self) -> None:
        """Restart the measurement window (load-phase boundaries)."""
        self.started_at = time.perf_counter()
        self.completed = 0
        self.rejected = 0
        self.timed_out = 0
        self.deduped = 0
        self.cached = 0
        self.replica_divergences = 0
        self._latency_ms.clear()
        self._queue_wait_ms.clear()
        self._service_ms.clear()
        self._batch_sizes.clear()

    def snapshot(self, queue_depth: int = 0,
                 worker_crashes: int = 0,
                 per_deployment: dict | None = None,
                 fabric: dict | None = None) -> MetricsSnapshot:
        """Freeze the current counters into a :class:`MetricsSnapshot`."""
        elapsed = time.perf_counter() - self.started_at
        mean_batch = (
            sum(size * count for size, count in self._batch_sizes.items())
            / self.completed if self.completed else 0.0)
        return MetricsSnapshot(
            per_deployment=per_deployment,
            fabric=fabric,
            completed=self.completed,
            rejected=self.rejected,
            timed_out=self.timed_out,
            worker_crashes=worker_crashes,
            deduped=self.deduped,
            cached=self.cached,
            replica_divergences=self.replica_divergences,
            queue_depth=queue_depth,
            elapsed_s=elapsed,
            throughput_rps=self.completed / elapsed if elapsed else 0.0,
            batch_size_histogram=dict(self._batch_sizes),
            mean_batch_size=mean_batch,
            latency_ms=_percentiles(self._latency_ms),
            queue_wait_ms=_percentiles(self._queue_wait_ms),
            service_ms=_percentiles(self._service_ms),
        )

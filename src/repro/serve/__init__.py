"""Async inference serving over the functional accelerator model.

The "millions of users" axis: an asyncio front-end that coalesces
concurrent single-image requests into micro-batches for the vectorized
engine, with pluggable flush policies (throughput-greedy or latency-SLO
deadline) honoring per-request ``timeout_ms``/``priority``, a pool of
warm engine lanes on the runtime worker fabric (threads, processes or
remote TCP workers; crashed lanes are evicted and their batches
requeued), bounded-queue backpressure, full latency/throughput metrics
and per-request hardware (cycle/energy) accounting.  In-process API
first; a thin JSON-over-TCP transport (structured typed errors — a
timed-out request answers, never hangs) and an open-loop load generator
ride on top.

Quick tour::

    server = InferenceServer(snn.network, policy="deadline",
                             max_batch=32, slo_ms=20.0)
    async with server:
        results = await server.submit_many(images)
        print(server.snapshot().latency_ms["p99"])

Batching never changes results: every request's prediction and trace
accounting is bit-identical to a serial ``Accelerator.run`` of the same
image (``tests/test_serve.py``; ``benchmarks/bench_serve.py`` asserts it
at runtime under load).
"""

from repro.runtime import ChaosPolicy, DeploymentRegistry  # fabric units
from repro.serve.batcher import (
    Batcher,
    BatchPolicy,
    DeadlinePolicy,
    GreedyPolicy,
    available_policies,
    create_policy,
    register_policy,
)
from repro.serve.client import LoadGenerator, LoadReport
from repro.serve.metrics import MetricsSnapshot, ServerMetrics
from repro.serve.pool import EnginePool
from repro.serve.server import InferenceResult, InferenceServer
from repro.serve.transport import TcpClient, start_tcp_server

__all__ = [
    "Batcher",
    "BatchPolicy",
    "ChaosPolicy",
    "DeadlinePolicy",
    "DeploymentRegistry",
    "EnginePool",
    "GreedyPolicy",
    "InferenceResult",
    "InferenceServer",
    "LoadGenerator",
    "LoadReport",
    "MetricsSnapshot",
    "ServerMetrics",
    "TcpClient",
    "available_policies",
    "create_policy",
    "register_policy",
    "start_tcp_server",
]

"""Request coalescing: micro-batch formation under pluggable policies.

The server funnels every accepted request through one bounded
``asyncio.Queue``; a :class:`Batcher` drains that queue into micro-batches
and a :class:`BatchPolicy` decides *when to stop waiting for more*:

* ``greedy`` — flush at ``max_batch`` requests or once the oldest request
  has waited ``max_wait_ms``, whichever comes first.  Maximizes batch
  size (throughput) subject to a fixed waiting cap.
* ``deadline`` — SLO-driven: every request carries an implicit deadline
  ``arrival + slo_ms``; the policy tracks an EWMA of engine service time
  and flushes early enough that waiting + execution still lands inside
  the SLO (minus a safety margin).  Under light load it behaves like a
  small ``max_wait``; under heavy load it grows batches only as far as
  the p99 target allows.

Policies register by name (the same idiom as execution engines), so new
disciplines — priority-aware, cost-model-driven — drop in without
touching the server.
"""

from __future__ import annotations

import abc
import asyncio
import time

from repro.errors import ConfigurationError

__all__ = [
    "BatchPolicy",
    "Batcher",
    "DeadlinePolicy",
    "GreedyPolicy",
    "available_policies",
    "create_policy",
    "register_policy",
]


class BatchPolicy(abc.ABC):
    """Decides how long a forming micro-batch may keep waiting.

    All built-in policies share one constructor signature so the server
    can build any of them from its own knobs; each uses the subset it
    cares about.
    """

    #: Registry name of the policy (subclasses override).
    name: str = "abstract"

    def __init__(self, max_batch: int = 32, max_wait_ms: float = 2.0,
                 slo_ms: float = 50.0) -> None:
        if max_batch < 1:
            raise ConfigurationError(
                f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ConfigurationError(
                f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if slo_ms <= 0:
            raise ConfigurationError(
                f"slo_ms must be > 0, got {slo_ms}")
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.slo_ms = slo_ms

    @abc.abstractmethod
    def flush_deadline(self, oldest_enqueued_at: float) -> float:
        """Absolute ``perf_counter`` time by which the batch must flush.

        ``oldest_enqueued_at`` is the enqueue time of the batch's first
        (oldest) request; a deadline at or before *now* means "flush
        immediately with what you have".
        """

    def select(self, waiting: list) -> list[int]:
        """Indices of the requests to put in the flushing batch.

        The default — shared by every built-in policy — honors
        per-request ``priority``: highest priority first, FIFO within a
        priority level, capped at ``max_batch``.  Returned indices are
        ascending (arrival order inside the batch), so equal-priority
        traffic behaves exactly like the pre-priority batcher.
        """
        order = sorted(range(len(waiting)),
                       key=lambda i: (-getattr(waiting[i], "priority", 0),
                                      i))
        return sorted(order[:self.max_batch])

    def observe(self, batch_size: int, service_s: float) -> None:
        """Feedback after a batch executed (adaptive policies override)."""


_POLICIES: dict[str, type[BatchPolicy]] = {}


def register_policy(cls: type[BatchPolicy]) -> type[BatchPolicy]:
    """Class decorator: make a policy selectable by its ``name``."""
    if not cls.name or cls.name == "abstract":
        raise ConfigurationError(
            f"policy {cls.__name__} must define a registry name")
    _POLICIES[cls.name] = cls
    return cls


def available_policies() -> tuple[str, ...]:
    """Names of all registered batching policies."""
    return tuple(sorted(_POLICIES))


def create_policy(policy: str | BatchPolicy, **kwargs) -> BatchPolicy:
    """Resolve a policy name (or pass through an instance)."""
    if isinstance(policy, BatchPolicy):
        return policy
    if isinstance(policy, str):
        try:
            return _POLICIES[policy](**kwargs)
        except KeyError:
            raise ConfigurationError(
                f"unknown batching policy {policy!r}; available: "
                f"{', '.join(available_policies())}"
            ) from None
    raise ConfigurationError(
        f"policy must be a name or a BatchPolicy, got {policy!r}")


@register_policy
class GreedyPolicy(BatchPolicy):
    """Fill to ``max_batch``, but never delay a request past ``max_wait_ms``."""

    name = "greedy"

    def flush_deadline(self, oldest_enqueued_at: float) -> float:
        return oldest_enqueued_at + self.max_wait_ms / 1e3


@register_policy
class DeadlinePolicy(BatchPolicy):
    """Wait as long as the latency SLO allows, and no longer.

    The flush deadline is ``oldest arrival + slo - expected service time
    - safety margin``: the batch is released with enough headroom that
    its oldest request still completes inside the SLO even if service
    takes as long as the recent (EWMA-tracked) worst full batch.  The
    margin (a fraction of the SLO) absorbs scheduler jitter — that is
    what keeps the measured *p99*, not just the median, under the
    target.
    """

    name = "deadline"

    #: EWMA smoothing for observed service times.
    alpha: float = 0.2
    #: Fraction of the SLO reserved for jitter between flush and finish.
    safety_fraction: float = 0.25

    def __init__(self, max_batch: int = 32, max_wait_ms: float = 2.0,
                 slo_ms: float = 50.0) -> None:
        super().__init__(max_batch, max_wait_ms, slo_ms)
        # Until the first observation, assume service eats half the SLO:
        # conservative (small early batches), converges within a few
        # batches.
        self._service_ewma_s = self.slo_ms / 1e3 / 2

    @property
    def expected_service_s(self) -> float:
        """Current service-time estimate for a full batch (seconds)."""
        return self._service_ewma_s

    def observe(self, batch_size: int, service_s: float) -> None:
        # Scale the observation up to a full batch so partial batches
        # don't talk the estimate down below what a max_batch flush
        # actually costs.
        per_image = service_s / max(batch_size, 1)
        full_batch_s = service_s + per_image * (self.max_batch - batch_size)
        self._service_ewma_s += self.alpha * (full_batch_s
                                              - self._service_ewma_s)

    def flush_deadline(self, oldest_enqueued_at: float) -> float:
        slo_s = self.slo_ms / 1e3
        headroom = slo_s * (1 - self.safety_fraction) - self._service_ewma_s
        return oldest_enqueued_at + max(headroom, 0.0)


class Batcher:
    """Drains a request queue into policy-shaped micro-batches.

    One ``await next_batch()`` blocks until at least one request exists,
    then keeps absorbing arrivals until the batch is full or the
    policy's flush deadline passes.  Requests the batch cannot take
    (overflow past ``max_batch``, lower priority than newer arrivals)
    wait in an internal buffer for the next flush.  Selection honors
    per-request ``priority`` through :meth:`BatchPolicy.select`; with
    equal priorities batches are contiguous slices of arrival order,
    which is what keeps serving results comparable to a serial run of
    the same request sequence.  (Re-grouping never changes results —
    that is the serving determinism contract — so priority only moves
    *when* a request runs, never *what* it answers.)

    ``expire`` is called once per request whose ``deadline`` passed
    while it waited (per-request ``timeout_ms``); expired requests are
    dropped from the buffer instead of dispatched, and the earliest
    pending deadline bounds the wait so expiry is detected promptly.

    The internal buffer is bounded at **two batches** of lookahead:
    priority selection sees at most ``2 x max_batch`` waiting requests,
    and everything beyond that stays in the bounded intake queue — which
    is what keeps the server's backpressure contract intact under
    sustained overload (``submit(wait=False)`` must keep bouncing off a
    *full* queue, not leak into an unbounded buffer).
    """

    def __init__(self, queue: asyncio.Queue, policy: BatchPolicy,
                 expire=None) -> None:
        self.queue = queue
        self.policy = policy
        self.expire = expire
        self._waiting: list = []  # arrival order, held between flushes

    @property
    def waiting(self) -> int:
        """Requests buffered beyond the queue (snapshot diagnostics)."""
        return len(self._waiting)

    @property
    def _capacity(self) -> int:
        """Buffer bound: the flushing batch plus one batch of lookahead."""
        return 2 * self.policy.max_batch

    def drain_waiting(self) -> list:
        """Hand back (and clear) the held requests — shutdown path."""
        waiting, self._waiting = self._waiting, []
        return waiting

    async def wait_for_work(self) -> None:
        """Block until at least one request is waiting (without flushing).

        The multi-model serve loop parks here *before* acquiring a
        dispatch slot: a deployment with no traffic must hold no engine
        capacity, or idle models would starve busy ones on a shared
        pool.  The request pulled in here stays in the buffer and is
        batched (or expired) by the next :meth:`next_batch`.
        """
        if not self._waiting:
            self._waiting.append(await self.queue.get())

    def _drain_queue(self) -> None:
        while len(self._waiting) < self._capacity:
            try:
                self._waiting.append(self.queue.get_nowait())
            except asyncio.QueueEmpty:
                return

    def _purge_expired(self, now: float) -> None:
        if self.expire is None:
            return
        keep = []
        for request in self._waiting:
            deadline = getattr(request, "deadline", None)
            if deadline is not None and deadline <= now:
                self.expire(request)
            else:
                keep.append(request)
        self._waiting = keep

    async def next_batch(self, wait: bool = True) -> list | None:
        """Form the next micro-batch; blocks until one exists.

        ``wait=False`` never blocks on an *empty* buffer: if every
        waiting request expired (or none ever arrived) it returns
        ``None`` instead of parking on the queue.  The multi-model serve
        loop calls it this way while holding a dispatch slot — parking
        there would strand the slot and starve the other deployments
        (coalescing waits are still taken, but those are bounded by the
        policy's flush deadline).
        """
        while True:
            if not self._waiting:
                if not wait:
                    return None
                self._waiting.append(await self.queue.get())
            self._drain_queue()
            now = time.perf_counter()
            self._purge_expired(now)
            if not self._waiting:
                if not wait:
                    return None
                continue
            if len(self._waiting) >= self.policy.max_batch:
                break
            flush_at = self.policy.flush_deadline(
                self._waiting[0].enqueued_at)
            if flush_at <= now:
                break
            # Wake early for whichever comes first: the policy flush or
            # the earliest per-request timeout (prompt expiry answers).
            # Without an expire hook, deadlines are nobody's business
            # here — honoring them would busy-loop on a passed one.
            deadlines = []
            if self.expire is not None:
                deadlines = [r.deadline for r in self._waiting
                             if getattr(r, "deadline", None) is not None]
            wake_at = min([flush_at] + deadlines)
            try:
                self._waiting.append(await asyncio.wait_for(
                    self.queue.get(), wake_at - now))
            except asyncio.TimeoutError:
                pass
        chosen = self.policy.select(self._waiting)
        taken = set(chosen)
        batch = [self._waiting[i] for i in chosen]
        self._waiting = [r for i, r in enumerate(self._waiting)
                         if i not in taken]
        return batch

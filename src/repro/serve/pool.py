"""Warm engine pools for serving — a policy skin over the runtime fabric.

The server's asyncio loop must never block on a GEMM, so batch execution
is pushed onto a :class:`~repro.runtime.WorkerGroup` of warm worker
lanes; the pool itself only owns serving policy (one deployment, an
in-flight cap enforced upstream by the server's dispatch slots) and the
async bridge (``concurrent.futures.Future`` → ``await``).  Executor
kinds:

* ``thread`` (default) — inline lanes over one shared warm-compiled
  model.  numpy releases the GIL inside its kernels, so lanes overlap
  real work; engines are stateless per ``run_batch`` call, which is what
  makes sharing safe.
* ``process`` — one forked child per lane, each holding a warm engine,
  batches shipped as pickled arrays.  Sidesteps the GIL entirely.
* ``workers=[...]`` — explicit lane specs, including ``"host:port"``
  remote TCP workers (a host running ``repro worker --listen``), so one
  server can fan micro-batches out across machines.

A lane dying mid-batch does not fail the request: the group evicts the
lane, requeues the batch on a healthy one and counts the event — the
server surfaces the count as ``worker_crashes`` in its metrics.
"""

from __future__ import annotations

import asyncio
import itertools
import threading

import numpy as np

from repro.core.calibration import DEFAULT_LATENCY, LatencyCalibration
from repro.core.config import AcceleratorConfig
from repro.core.engine import resolve_backend, warm_compile
from repro.core.engine.trace import TraceMerge
from repro.errors import ConfigurationError, ServeError
from repro.runtime import Deployment, WorkItem, WorkerGroup, create_workers

__all__ = ["EnginePool"]


class EnginePool:
    """Warm engine lanes behind an async ``run_batch``.

    ``size``/``mode`` build a homogeneous group (``size`` lanes of
    ``mode``); ``workers`` overrides both with explicit fabric specs
    (``"thread"``, ``"process"``, ``"host:port"``, multipliers like
    ``"process:4"``).
    """

    def __init__(
        self,
        network,
        config: AcceleratorConfig,
        backend: str = "vectorized",
        calibration: LatencyCalibration = DEFAULT_LATENCY,
        size: int = 1,
        mode: str = "thread",
        workers: list[str] | None = None,
    ) -> None:
        if size < 1:
            raise ConfigurationError(f"pool size must be >= 1, got {size}")
        if mode not in ("thread", "process"):
            raise ConfigurationError(
                f"pool mode must be 'thread' or 'process', got {mode!r}")
        self.network = network
        self.config = config
        self.backend = resolve_backend(backend).name
        self.calibration = calibration
        self.mode = mode
        self.worker_specs = (list(workers) if workers
                             else [mode] * size)
        self.size = len(self.worker_specs)
        self._group: WorkerGroup | None = None
        self._item_ids = itertools.count()

    @property
    def started(self) -> bool:
        return self._group is not None

    @property
    def worker_crashes(self) -> int:
        """Lanes evicted since start (dead children, dropped hosts)."""
        return self._group.metrics.worker_crashes if self._group else 0

    def group_metrics(self) -> dict:
        """The fabric's scheduling counters (diagnostics)."""
        return self._group.metrics.to_dict() if self._group else {}

    def start(self) -> None:
        """Warm-compile, build the lane group, start it; not idempotent."""
        if self.started:
            raise ServeError("engine pool already started")
        # Warm the parent-process cache first: thread lanes share this
        # compiled model; process lanes fork after it, so children
        # inherit the compiled pages copy-on-write and their deploys hit
        # the warm cache instead of recompiling.
        warm_compile(self.network, self.config)
        deployment = Deployment(network=self.network, config=self.config,
                                backend=self.backend,
                                calibration=self.calibration)
        self._group = WorkerGroup(create_workers(self.worker_specs),
                                  deployments=[deployment])
        try:
            self._group.start()
        except BaseException:
            self._group = None
            raise

    async def run_batch(
        self, images: np.ndarray, timeout_s: float | None = None
    ) -> tuple[np.ndarray, list[TraceMerge]]:
        """Execute one micro-batch on the next free warm lane.

        Returns ``(logits, per-image TraceMerge list)``; a crashed lane
        is evicted and the batch re-runs on a healthy one before this
        resolves.
        """
        if not self.started:
            raise ServeError("engine pool is not started")
        item = WorkItem(item_id=next(self._item_ids), deployment=0,
                        images=images, timeout_s=timeout_s)
        future = self._group.submit(item)
        result = await asyncio.wrap_future(future)
        return result.logits, result.image_traces

    def shutdown(self, wait: bool = True) -> None:
        """Stop the lane group; ``wait=False`` tears down off-thread
        (group stop joins dispatchers, which can take seconds with a
        batch in flight)."""
        group, self._group = self._group, None
        if group is None:
            return
        if wait:
            group.stop()
        else:
            threading.Thread(target=group.stop,
                             name="repro-pool-shutdown",
                             daemon=True).start()

"""Warm engine pools for serving — a policy skin over the runtime fabric.

The server's asyncio loop must never block on a GEMM, so batch execution
is pushed onto a :class:`~repro.runtime.WorkerGroup` of warm worker
lanes; the pool itself only owns serving policy (the deployment table,
an in-flight cap enforced upstream by the server's dispatch slots) and
the async bridge (``concurrent.futures.Future`` → ``await``).  Executor
kinds:

* ``thread`` (default) — inline lanes over shared warm-compiled models.
  numpy releases the GIL inside its kernels, so lanes overlap real work;
  engines are stateless per ``run_batch`` call, which is what makes
  sharing safe.
* ``process`` — one forked child per lane, each holding warm engines,
  batches shipped as pickled arrays.  Sidesteps the GIL entirely.
* ``workers=[...]`` — explicit lane specs, including ``"host:port"``
  remote TCP workers (a host running ``repro worker --listen``), so one
  server can fan micro-batches out across machines.

Since the deployment-registry refactor one pool serves **many models**:
construct it from a :class:`~repro.runtime.DeploymentRegistry` and pass
``deployment=<table index>`` to :meth:`EnginePool.run_batch` — every
lane holds the whole table, so any lane can run any model's batch and
capacity flows to whichever deployment has traffic.  The single-model
constructor (``network, config``) builds a one-entry registry and keeps
its historical behavior.

A lane dying mid-batch does not fail the request: the group evicts the
lane, requeues the batch on a healthy one and counts the event — the
server surfaces the count as ``worker_crashes`` in its metrics.
"""

from __future__ import annotations

import asyncio
import itertools
import threading

import numpy as np

from repro.core.calibration import DEFAULT_LATENCY, LatencyCalibration
from repro.core.config import AcceleratorConfig
from repro.core.engine import resolve_backend, warm_compile
from repro.core.engine.trace import TraceMerge
from repro.errors import ConfigurationError, ServeError
from repro.runtime import (
    DeploymentRegistry,
    WorkItem,
    WorkerGroup,
    create_workers,
)

__all__ = ["EnginePool"]


class EnginePool:
    """Warm engine lanes behind an async ``run_batch``.

    ``size``/``mode`` build a homogeneous group (``size`` lanes of
    ``mode``); ``workers`` overrides both with explicit fabric specs
    (``"thread"``, ``"process"``, ``"host:port"``, multipliers like
    ``"process:4"``).  ``registry`` replaces the single
    ``network``/``config`` pair with a full deployment table; ``token``
    is the fabric shared secret for remote lanes.
    """

    def __init__(
        self,
        network=None,
        config: AcceleratorConfig | None = None,
        backend: str = "vectorized",
        calibration: LatencyCalibration = DEFAULT_LATENCY,
        size: int = 1,
        mode: str = "thread",
        workers: list[str] | None = None,
        registry: DeploymentRegistry | None = None,
        token: str | None = None,
    ) -> None:
        if size < 1:
            raise ConfigurationError(f"pool size must be >= 1, got {size}")
        if mode not in ("thread", "process"):
            raise ConfigurationError(
                f"pool mode must be 'thread' or 'process', got {mode!r}")
        if registry is None:
            if network is None:
                raise ConfigurationError(
                    "engine pool needs a registry or a network")
            registry = DeploymentRegistry()
            registry.register(
                "default", network=network,
                config=config or AcceleratorConfig.for_network(
                    getattr(network, "network", network)),
                backend=resolve_backend(backend).name,
                calibration=calibration)
        self.registry = registry
        default = registry.resolve()
        # Single-model attributes kept for callers (and subclasses) that
        # predate the registry: they name the default deployment.
        self.network = default.deployment.network
        self.config = default.deployment.config
        self.backend = default.deployment.backend
        self.calibration = default.deployment.calibration
        self.mode = mode
        self.token = token
        self.worker_specs = (list(workers) if workers
                             else [mode] * size)
        self.size = len(self.worker_specs)
        self._group: WorkerGroup | None = None
        self._item_ids = itertools.count()

    @property
    def started(self) -> bool:
        return self._group is not None

    @property
    def group(self) -> WorkerGroup | None:
        """The underlying lane group (elastic operations go through it)."""
        return self._group

    @property
    def worker_crashes(self) -> int:
        """Lanes evicted since start (dead children, dropped hosts)."""
        return self._group.metrics.worker_crashes if self._group else 0

    def group_metrics(self) -> dict:
        """The fabric's scheduling counters (diagnostics)."""
        return self._group.metrics.to_dict() if self._group else {}

    def start(self) -> None:
        """Warm-compile, build the lane group, start it; not idempotent."""
        if self.started:
            raise ServeError("engine pool already started")
        # Warm the parent-process cache first: thread lanes share these
        # compiled models; process lanes fork after it, so children
        # inherit the compiled pages copy-on-write and their deploys hit
        # the warm cache instead of recompiling.
        for deployment in self.registry.table():
            warm_compile(deployment.network, deployment.config)
        self._group = WorkerGroup(
            create_workers(self.worker_specs, token=self.token),
            deployments=self.registry)
        try:
            self._group.start()
        except BaseException:
            self._group = None
            raise

    async def run_batch(
        self, images: np.ndarray, deployment: int = 0,
        timeout_s: float | None = None,
    ) -> tuple[np.ndarray, list[TraceMerge]]:
        """Execute one micro-batch on the next free warm lane.

        ``deployment`` is the registry *table index* the batch runs
        against (the server resolves names to indices before calling).
        Returns ``(logits, per-image TraceMerge list)``; a crashed lane
        is evicted and the batch re-runs on a healthy one before this
        resolves.
        """
        if not self.started:
            raise ServeError("engine pool is not started")
        item = WorkItem(item_id=next(self._item_ids),
                        deployment=deployment,
                        images=images, timeout_s=timeout_s)
        future = self._group.submit(item)
        result = await asyncio.wrap_future(future)
        return result.logits, result.image_traces

    def add_lane(self, worker_or_spec) -> str:
        """Admit a lane into the running pool (elastic capacity).

        ``size`` tracks the live lane count so capacity-derived budgets
        (the server's dispatch slots) can follow; prefer
        ``InferenceServer.add_engine_lane`` from a running server — it
        grows the in-flight budget in the same step.
        """
        if not self.started:
            raise ServeError("engine pool is not started")
        name = self._group.add_lane(worker_or_spec, token=self.token)
        self.size += 1
        return name

    def remove_lane(self, name: str) -> None:
        """Drain a lane out of the running pool."""
        if not self.started:
            raise ServeError("engine pool is not started")
        self._group.remove_lane(name)
        self.size -= 1

    def shutdown(self, wait: bool = True) -> None:
        """Stop the lane group; ``wait=False`` tears down off-thread
        (group stop joins dispatchers, which can take seconds with a
        batch in flight)."""
        group, self._group = self._group, None
        if group is None:
            return
        if wait:
            group.stop()
        else:
            threading.Thread(target=group.stop,
                             name="repro-pool-shutdown",
                             daemon=True).start()

"""Warm execution-engine pools: batches run off the event loop.

The server's asyncio loop must never block on a GEMM, so batch execution
is pushed onto an executor holding ``size`` *warm* engines — compiled
once up front (via the :func:`~repro.core.engine.warm_compile` cache),
never recompiled per batch.  Two modes:

* ``thread`` (default) — ``size`` engine instances over one shared
  compiled model, executed on a thread pool.  numpy releases the GIL
  inside its kernels, so threads overlap real work; engines are
  stateless per ``run_batch`` call, which is what makes this safe.
* ``process`` — the PR-2 sweep-worker recipe turned into a serving
  executor: ``size`` forked worker processes, each holding one warm
  engine built by its initializer, with batches shipped over pickled
  numpy arrays.  Sidesteps the GIL entirely at the cost of IPC per
  batch; worth it for big batches on multi-core hosts.

A counting token queue caps in-flight batches at ``size`` in both modes,
so backpressure propagates to the batcher instead of piling futures into
the executor.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import multiprocessing as mp

import numpy as np

from repro.core.calibration import DEFAULT_LATENCY, LatencyCalibration
from repro.core.config import AcceleratorConfig
from repro.core.engine import create_engine, resolve_backend, warm_compile
from repro.core.engine.trace import ExecutionTrace
from repro.errors import ConfigurationError, ServeError

__all__ = ["EnginePool"]


# ----------------------------------------------------------------------
# Process-mode worker side (module-level for picklability; the same
# initializer-plus-global pattern the sweep driver's workers use).
# ----------------------------------------------------------------------
_WORKER_ENGINE = None


def _init_pool_worker(network, config, backend_name, calibration) -> None:
    """Build this worker's warm engine once, at pool start-up."""
    global _WORKER_ENGINE
    compiled = warm_compile(network, config)
    _WORKER_ENGINE = create_engine(backend_name, compiled, calibration)


def _pool_worker_run(images: np.ndarray):
    return _WORKER_ENGINE.run_batch(images)


class EnginePool:
    """``size`` warm engines behind an async ``run_batch``."""

    def __init__(
        self,
        network,
        config: AcceleratorConfig,
        backend: str = "vectorized",
        calibration: LatencyCalibration = DEFAULT_LATENCY,
        size: int = 1,
        mode: str = "thread",
    ) -> None:
        if size < 1:
            raise ConfigurationError(f"pool size must be >= 1, got {size}")
        if mode not in ("thread", "process"):
            raise ConfigurationError(
                f"pool mode must be 'thread' or 'process', got {mode!r}")
        self.network = network
        self.config = config
        self.backend = resolve_backend(backend).name
        self.calibration = calibration
        self.size = size
        self.mode = mode
        self._executor = None
        self._engines = []
        self._tokens: asyncio.Queue | None = None

    @property
    def started(self) -> bool:
        return self._executor is not None

    def start(self) -> None:
        """Compile (warm) and spin up the executor; idempotent-checked."""
        if self.started:
            raise ServeError("engine pool already started")
        # Warm the parent-process cache first: thread mode shares this
        # compiled model across all engines; process mode forks after
        # it, so children inherit the compiled pages copy-on-write and
        # their initializers hit the warm cache instead of recompiling.
        compiled = warm_compile(self.network, self.config)
        if self.mode == "thread":
            self._engines = [
                create_engine(self.backend, compiled, self.calibration)
                for _ in range(self.size)
            ]
            self._executor = ThreadPoolExecutor(
                max_workers=self.size,
                thread_name_prefix="repro-serve-engine")
        else:
            methods = mp.get_all_start_methods()
            context = mp.get_context(
                "fork" if "fork" in methods else None)
            self._executor = ProcessPoolExecutor(
                max_workers=self.size, mp_context=context,
                initializer=_init_pool_worker,
                initargs=(self.network, self.config, self.backend,
                          self.calibration))
        self._tokens = asyncio.Queue()
        for index in range(self.size):
            self._tokens.put_nowait(index)

    async def run_batch(
        self, images: np.ndarray
    ) -> tuple[np.ndarray, list[ExecutionTrace]]:
        """Execute one micro-batch on the next free warm engine."""
        if not self.started:
            raise ServeError("engine pool is not started")
        token = await self._tokens.get()
        try:
            loop = asyncio.get_running_loop()
            if self.mode == "thread":
                engine = self._engines[token]
                return await loop.run_in_executor(
                    self._executor, engine.run_batch, images)
            return await loop.run_in_executor(
                self._executor, _pool_worker_run, images)
        finally:
            self._tokens.put_nowait(token)

    def shutdown(self, wait: bool = True) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=wait)
            self._executor = None
            self._engines = []
            self._tokens = None

"""Warm engine pools for serving — a policy skin over the runtime fabric.

The server's asyncio loop must never block on a GEMM, so batch execution
is pushed onto a :class:`~repro.runtime.WorkerGroup` of warm worker
lanes; the pool itself only owns serving policy (the deployment table,
an in-flight cap enforced upstream by the server's dispatch slots) and
the async bridge (``concurrent.futures.Future`` → ``await``).  Executor
kinds:

* ``thread`` (default) — inline lanes over shared warm-compiled models.
  numpy releases the GIL inside its kernels, so lanes overlap real work;
  engines are stateless per ``run_batch`` call, which is what makes
  sharing safe.
* ``process`` — one forked child per lane, each holding warm engines,
  batches shipped as pickled arrays.  Sidesteps the GIL entirely.
* ``workers=[...]`` — explicit lane specs, including ``"host:port"``
  remote TCP workers (a host running ``repro worker --listen``), so one
  server can fan micro-batches out across machines.

Since the deployment-registry refactor one pool serves **many models**:
construct it from a :class:`~repro.runtime.DeploymentRegistry` and pass
``deployment=<table index>`` to :meth:`EnginePool.run_batch` — every
lane holds the whole table, so any lane can run any model's batch and
capacity flows to whichever deployment has traffic.  The single-model
constructor (``network, config``) builds a one-entry registry and keeps
its historical behavior.

A lane dying mid-batch does not fail the request: the group evicts the
lane, requeues the batch on a healthy one and counts the event — the
server surfaces the count as ``worker_crashes`` in its metrics.
"""

from __future__ import annotations

import asyncio
import itertools
import threading

import numpy as np

from repro.core.calibration import DEFAULT_LATENCY, LatencyCalibration
from repro.core.config import AcceleratorConfig
from repro.core.engine import resolve_backend, warm_compile
from repro.core.engine.trace import TraceMerge
from repro.errors import (
    ConfigurationError,
    ReplicaDivergenceError,
    ServeError,
)
from repro.runtime import (
    DeploymentRegistry,
    RegisteredDeployment,
    WorkItem,
    WorkerGroup,
    create_workers,
)

__all__ = ["EnginePool"]


class EnginePool:
    """Warm engine lanes behind an async ``run_batch``.

    ``size``/``mode`` build a homogeneous group (``size`` lanes of
    ``mode``); ``workers`` overrides both with explicit fabric specs
    (``"thread"``, ``"process"``, ``"host:port"``, multipliers like
    ``"process:4"``).  ``registry`` replaces the single
    ``network``/``config`` pair with a full deployment table; ``token``
    is the fabric shared secret for remote lanes.
    """

    def __init__(
        self,
        network=None,
        config: AcceleratorConfig | None = None,
        backend: str = "vectorized",
        calibration: LatencyCalibration = DEFAULT_LATENCY,
        size: int = 1,
        mode: str = "thread",
        workers: list[str] | None = None,
        registry: DeploymentRegistry | None = None,
        token: str | None = None,
        chaos=None,
        window: int | None = None,
    ) -> None:
        if size < 1:
            raise ConfigurationError(f"pool size must be >= 1, got {size}")
        if mode not in ("thread", "process"):
            raise ConfigurationError(
                f"pool mode must be 'thread' or 'process', got {mode!r}")
        if registry is None:
            if network is None:
                raise ConfigurationError(
                    "engine pool needs a registry or a network")
            registry = DeploymentRegistry()
            registry.register(
                "default", network=network,
                config=config or AcceleratorConfig.for_network(
                    getattr(network, "network", network)),
                backend=resolve_backend(backend).name,
                calibration=calibration)
        self.registry = registry
        default = registry.resolve()
        # Single-model attributes kept for callers (and subclasses) that
        # predate the registry: they name the default deployment.
        self.network = default.deployment.network
        self.config = default.deployment.config
        self.backend = default.deployment.backend
        self.calibration = default.deployment.calibration
        self.mode = mode
        self.token = token
        #: Optional ChaosPolicy handed to the WorkerGroup (fault drills).
        self.chaos = chaos
        #: In-flight chunk window per pipelined lane (None = the group
        #: derives it from calibrated dispatch cost vs. service time).
        self.window = window
        self.worker_specs = (list(workers) if workers
                             else [mode] * size)
        self.size = len(self.worker_specs)
        self._group: WorkerGroup | None = None
        self._item_ids = itertools.count()

    @property
    def started(self) -> bool:
        return self._group is not None

    @property
    def group(self) -> WorkerGroup | None:
        """The underlying lane group (elastic operations go through it)."""
        return self._group

    @property
    def worker_crashes(self) -> int:
        """Lanes evicted since start (dead children, dropped hosts)."""
        return self._group.metrics.worker_crashes if self._group else 0

    def group_metrics(self) -> dict:
        """The fabric's scheduling counters (diagnostics)."""
        return self._group.metrics.to_dict() if self._group else {}

    def start(self) -> None:
        """Warm-compile, build the lane group, start it; not idempotent."""
        if self.started:
            raise ServeError("engine pool already started")
        # Warm the parent-process cache first: thread lanes share these
        # compiled models; process lanes fork after it, so children
        # inherit the compiled pages copy-on-write and their deploys hit
        # the warm cache instead of recompiling.
        for deployment in self.registry.table():
            warm_compile(deployment.network, deployment.config)
        self._group = WorkerGroup(
            create_workers(self.worker_specs, token=self.token),
            deployments=self.registry, chaos=self.chaos,
            window=self.window)
        try:
            self._group.start()
        except BaseException:
            self._group = None
            raise

    def ledger_metrics(self) -> dict:
        """The exactly-once result ledger's counters (diagnostics)."""
        return self._group.ledger.to_dict() if self._group else {}

    def add_deployment(self, name: str, deployment=None,
                       **register_kwargs) -> RegisteredDeployment:
        """Register a deployment and push it to the **live** lane group.

        The blue/green entry point: the new model is warm-compiled,
        appended to the registry and re-registered with every running
        lane before this returns, so a subsequent alias flip lands on
        lanes that already hold it.  Safe before ``start()`` too (the
        group picks the table up when it starts).
        """
        entry = self.registry.register(name, deployment,
                                       **register_kwargs)
        if self.started:
            warm_compile(entry.deployment.network,
                         entry.deployment.config)
            self._group.add_deployments([entry.deployment])
        return entry

    async def run_batch(
        self, images: np.ndarray, deployment: int = 0,
        timeout_s: float | None = None,
        key: str | None = None,
        trace: dict | None = None,
    ) -> tuple[np.ndarray, list[TraceMerge]]:
        """Execute one micro-batch on the next free warm lane.

        ``deployment`` is the registry *table index* the batch runs
        against (the server resolves names to indices before calling).
        Returns ``(logits, per-image TraceMerge list)``; a crashed lane
        is evicted and the batch re-runs on a healthy one before this
        resolves.  ``key`` pins the batch's idempotency key (a retried
        batch carrying the same key is answered from the group's result
        ledger instead of executing again); omitted, a fresh key is
        generated.  ``trace`` is an optional propagation context — the
        lane that executes the batch emits its span into that trace,
        whatever kind of lane it is.
        """
        if not self.started:
            raise ServeError("engine pool is not started")
        if key is None:
            item = WorkItem(item_id=next(self._item_ids),
                            deployment=deployment,
                            images=images, timeout_s=timeout_s,
                            trace=trace)
        else:
            item = WorkItem(item_id=next(self._item_ids),
                            deployment=deployment,
                            images=images, timeout_s=timeout_s,
                            trace=trace, key=key)
        future = self._group.submit(item)
        result = await asyncio.wrap_future(future)
        return result.logits, result.image_traces

    async def run_batch_replicated(
        self, images: np.ndarray, deployment: int = 0,
        replicas: int = 2, quorum: int | None = None,
        timeout_s: float | None = None,
        trace: dict | None = None,
    ) -> tuple[np.ndarray, list[TraceMerge]]:
        """Execute one batch ``replicas`` times and runtime-assert the
        answers bit-identical before returning one of them.

        Every replica is a distinct submission (fresh idempotency keys,
        so the ledger cannot collapse them) that the group spreads over
        its lanes.  ``quorum`` (default: all replicas) is how many must
        *answer*: with lanes dying mid-drill, up to ``replicas -
        quorum`` replica failures are tolerated.  Any two successful
        replicas disagreeing on logits or traces — impossible unless
        something corrupted state — raises
        :class:`~repro.errors.ReplicaDivergenceError`.
        """
        if replicas < 1:
            raise ConfigurationError(
                f"replicas must be >= 1, got {replicas}")
        need = replicas if quorum is None else quorum
        if not 1 <= need <= replicas:
            raise ConfigurationError(
                f"quorum must be in [1, {replicas}], got {quorum}")
        if replicas == 1:
            return await self.run_batch(images, deployment=deployment,
                                        timeout_s=timeout_s, trace=trace)
        if not self.started:
            raise ServeError("engine pool is not started")
        items = [WorkItem(item_id=next(self._item_ids),
                          deployment=deployment,
                          images=images, timeout_s=timeout_s,
                          trace=trace)
                 for _ in range(replicas)]
        futures = [asyncio.wrap_future(f)
                   for f in self._group.submit_many(items)]
        settled = await asyncio.gather(*futures, return_exceptions=True)
        results = [r for r in settled if not isinstance(r, BaseException)]
        if len(results) < need:
            failures = [r for r in settled
                        if isinstance(r, BaseException)]
            raise ServeError(
                f"replicated batch lost quorum: {len(results)}/"
                f"{replicas} replicas answered (need {need}); first "
                f"failure: {failures[0]!r}") from (
                    failures[0] if failures else None)
        reference = results[0]
        for position, result in enumerate(results[1:], start=2):
            if not np.array_equal(reference.logits, result.logits) or \
                    [t.to_dict() for t in reference.image_traces] != \
                    [t.to_dict() for t in result.image_traces]:
                raise ReplicaDivergenceError(
                    f"replica {position}/{len(results)} (worker "
                    f"{result.worker!r}) disagrees with replica 1 "
                    f"(worker {reference.worker!r}) on a "
                    f"deployment-{deployment} batch — deterministic "
                    "engines diverged, refusing to pick a winner")
        return reference.logits, reference.image_traces

    def add_lane(self, worker_or_spec) -> str:
        """Admit a lane into the running pool (elastic capacity).

        ``size`` tracks the live lane count so capacity-derived budgets
        (the server's dispatch slots) can follow; prefer
        ``InferenceServer.add_engine_lane`` from a running server — it
        grows the in-flight budget in the same step.
        """
        if not self.started:
            raise ServeError("engine pool is not started")
        name = self._group.add_lane(worker_or_spec, token=self.token)
        self.size += 1
        return name

    def remove_lane(self, name: str) -> None:
        """Drain a lane out of the running pool."""
        if not self.started:
            raise ServeError("engine pool is not started")
        self._group.remove_lane(name)
        self.size -= 1

    def shutdown(self, wait: bool = True) -> None:
        """Stop the lane group; ``wait=False`` tears down off-thread
        (group stop joins dispatchers, which can take seconds with a
        batch in flight)."""
        group, self._group = self._group, None
        if group is None:
            return
        if wait:
            group.stop()
        else:
            threading.Thread(target=group.stop,
                             name="repro-pool-shutdown",
                             daemon=True).start()

"""Load generation: open-loop arrivals against any async submit callable.

:class:`LoadGenerator` replays a fixed image sequence at a configured
offered rate (requests/second) with evenly spaced arrival times — the
deterministic open-loop shape benchmarkers prefer, because arrivals do
not slow down when the server does.  Each arrival becomes its own task,
so slow responses pile up as concurrency (and, through the server's
bounded queue, as backpressure) exactly like independent clients would.

The ``submit`` callable is either ``InferenceServer.submit`` (in-process
measurement, no transport noise) or ``TcpClient.infer`` (end-to-end over
the wire); the generator only assumes ``await submit(image) -> result``.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.serve.metrics import _percentiles

__all__ = ["LoadGenerator", "LoadReport"]


@dataclass(frozen=True)
class LoadReport:
    """Client-side view of one load run (server metrics live elsewhere)."""

    offered_rps: float
    achieved_rps: float
    num_requests: int
    completed: int
    failed: int
    wall_s: float
    client_latency_ms: dict[str, float]
    results: list  # per-request results in submission order (None = failed)
    errors: list   # exceptions, aligned with results

    def to_dict(self) -> dict:
        return {
            "offered_rps": self.offered_rps,
            "achieved_rps": self.achieved_rps,
            "num_requests": self.num_requests,
            "completed": self.completed,
            "failed": self.failed,
            "wall_s": self.wall_s,
            "client_latency_ms": dict(self.client_latency_ms),
        }


class LoadGenerator:
    """Replays images at a fixed offered rate and gathers the results."""

    def __init__(self, submit, rate_rps: float) -> None:
        if rate_rps <= 0:
            raise ConfigurationError(
                f"offered rate must be > 0 rps, got {rate_rps}")
        self.submit = submit
        self.rate_rps = rate_rps

    async def _timed_submit(self, image):
        started = time.perf_counter()
        result = await self.submit(image)
        return result, (time.perf_counter() - started) * 1e3

    async def run(self, images) -> LoadReport:
        """Offer every image at the configured rate; returns the report.

        Requests that raise are recorded (``failed`` count plus the
        exception in ``errors``) without aborting the run — a load test
        should observe overload behaviour, not die of it.
        """
        interval = 1.0 / self.rate_rps
        started = time.perf_counter()
        tasks = []
        for index, image in enumerate(images):
            due = started + index * interval
            delay = due - time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(asyncio.create_task(self._timed_submit(image)))
        settled = await asyncio.gather(*tasks, return_exceptions=True)
        wall = time.perf_counter() - started

        results, errors, latencies = [], [], []
        for outcome in settled:
            if isinstance(outcome, BaseException):
                results.append(None)
                errors.append(outcome)
            else:
                result, latency_ms = outcome
                results.append(result)
                errors.append(None)
                latencies.append(latency_ms)
        completed = len(latencies)
        return LoadReport(
            offered_rps=self.rate_rps,
            achieved_rps=completed / wall if wall else 0.0,
            num_requests=len(results),
            completed=completed,
            failed=len(results) - completed,
            wall_s=wall,
            client_latency_ms=_percentiles(latencies),
            results=results,
            errors=errors,
        )

"""Load generation: open-loop arrivals against any async submit callable.

:class:`LoadGenerator` replays a fixed image sequence at a configured
offered rate (requests/second) — the deterministic open-loop shape
benchmarkers prefer, because arrivals do not slow down when the server
does.  Each arrival becomes its own task, so slow responses pile up as
concurrency (and, through the server's bounded queue, as backpressure)
exactly like independent clients would.

Two arrival disciplines ship, both reproducible run to run:

* ``"even"`` (default) — arrivals evenly spaced at ``1 / rate``; no
  randomness at all.
* ``"poisson"`` — exponential inter-arrival gaps, the memoryless shape
  real traffic has.  The gaps come from an **explicitly seeded** RNG
  (``seed``), so two runs with the same seed offer the *identical* load
  trace — which is what makes a latency regression comparable across
  runs (``repro loadgen --arrival poisson --seed 7``).

The ``submit`` callable is either ``InferenceServer.submit`` (in-process
measurement, no transport noise) or ``TcpClient.infer`` (end-to-end over
the wire); the generator only assumes ``await submit(image) -> result``.
On a multi-model server, ``deployment=`` routes every request of the run
to one named model, so per-deployment load mixes are built from several
generators running concurrently.

For chaos drills, pair the generator with ``TcpClient(retries=N,
chaos=...)``: every ``infer`` carries an idempotency key, so a request
that dies with its connection is re-sent after reconnect and answered
exactly once from the server's result ledger — the ``failed`` count in
the report then measures genuine capacity loss, not transport noise.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.serve.metrics import _percentiles

__all__ = ["LoadGenerator", "LoadReport"]

_ARRIVALS = ("even", "poisson")


@dataclass(frozen=True)
class LoadReport:
    """Client-side view of one load run (server metrics live elsewhere)."""

    offered_rps: float
    achieved_rps: float
    num_requests: int
    completed: int
    failed: int
    wall_s: float
    client_latency_ms: dict[str, float]
    results: list  # per-request results in submission order (None = failed)
    errors: list   # exceptions, aligned with results
    deployment: str | None = None
    arrival: str = "even"
    seed: int = 0

    def to_dict(self) -> dict:
        return {
            "offered_rps": self.offered_rps,
            "achieved_rps": self.achieved_rps,
            "num_requests": self.num_requests,
            "completed": self.completed,
            "failed": self.failed,
            "wall_s": self.wall_s,
            "client_latency_ms": dict(self.client_latency_ms),
            "deployment": self.deployment,
            "arrival": self.arrival,
            "seed": self.seed,
        }


class LoadGenerator:
    """Replays images at a fixed offered rate and gathers the results.

    Parameters
    ----------
    submit:
        Async callable ``await submit(image, **kwargs) -> result``.
    rate_rps:
        Mean offered load in requests per second.
    arrival:
        ``"even"`` (fixed spacing) or ``"poisson"`` (seeded exponential
        gaps around the same mean rate).
    seed:
        RNG seed for the ``poisson`` arrival trace — explicit so the
        offered-load schedule is bit-reproducible across runs.
    deployment:
        Optional deployment name forwarded to every ``submit`` call
        (multi-model servers and TCP clients accept it).
    latency_out:
        Optional path; when set, :meth:`run` appends one JSON line per
        request — submission index, latency, deployment, outcome and
        the request's ``trace_id`` (when the server returned one) — so
        a latency record can be joined against the server's flight
        recorder trace by id.
    """

    def __init__(self, submit, rate_rps: float, arrival: str = "even",
                 seed: int = 0, deployment: str | None = None,
                 latency_out: str | None = None) -> None:
        if rate_rps <= 0:
            raise ConfigurationError(
                f"offered rate must be > 0 rps, got {rate_rps}")
        if arrival not in _ARRIVALS:
            raise ConfigurationError(
                f"arrival must be one of {_ARRIVALS}, got {arrival!r}")
        self.submit = submit
        self.rate_rps = rate_rps
        self.arrival = arrival
        self.seed = int(seed)
        self.deployment = deployment
        self.latency_out = latency_out

    def arrival_offsets(self, count: int) -> np.ndarray:
        """The run's arrival schedule: seconds offset of each request.

        Pure function of ``(rate, arrival, seed, count)`` — two
        generators configured alike produce byte-identical schedules,
        which is the reproducibility contract ``repro loadgen --seed``
        exposes (and ``tests/test_multimodel.py`` pins).
        """
        interval = 1.0 / self.rate_rps
        if self.arrival == "even":
            return np.arange(count, dtype=np.float64) * interval
        gaps = np.random.default_rng(self.seed).exponential(
            scale=interval, size=count)
        offsets = np.cumsum(gaps)
        return offsets - offsets[0] if count else offsets

    async def _timed_submit(self, image):
        started = time.perf_counter()
        if self.deployment is not None:
            result = await self.submit(image, deployment=self.deployment)
        else:
            result = await self.submit(image)
        return result, (time.perf_counter() - started) * 1e3

    @staticmethod
    def _trace_id_of(result) -> str | None:
        """The server-assigned trace id, whichever shape the result has
        (:class:`~repro.serve.server.InferenceResult` in-process, a
        reply dict over TCP)."""
        if isinstance(result, dict):
            return result.get("trace_id")
        return getattr(result, "trace_id", None)

    def _write_latency_records(self, results, errors, settled) -> None:
        """Append one JSON line per request to ``latency_out``."""
        with open(self.latency_out, "a", encoding="utf-8") as sink:
            for index, (result, error, outcome) in enumerate(
                    zip(results, errors, settled)):
                record = {
                    "index": index,
                    "deployment": self.deployment,
                    "ok": error is None,
                    "latency_ms": (round(outcome[1], 4)
                                   if error is None else None),
                    "trace_id": self._trace_id_of(result),
                }
                if error is not None:
                    record["error"] = type(error).__name__
                sink.write(json.dumps(record) + "\n")

    async def run(self, images) -> LoadReport:
        """Offer every image on the arrival schedule; returns the report.

        Requests that raise are recorded (``failed`` count plus the
        exception in ``errors``) without aborting the run — a load test
        should observe overload behaviour, not die of it.
        """
        images = list(images)
        offsets = self.arrival_offsets(len(images))
        started = time.perf_counter()
        tasks = []
        for image, offset in zip(images, offsets):
            delay = started + offset - time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(asyncio.create_task(self._timed_submit(image)))
        settled = await asyncio.gather(*tasks, return_exceptions=True)
        wall = time.perf_counter() - started

        results, errors, latencies = [], [], []
        for outcome in settled:
            if isinstance(outcome, BaseException):
                results.append(None)
                errors.append(outcome)
            else:
                result, latency_ms = outcome
                results.append(result)
                errors.append(None)
                latencies.append(latency_ms)
        completed = len(latencies)
        if self.latency_out:
            self._write_latency_records(results, errors, settled)
        return LoadReport(
            offered_rps=self.rate_rps,
            achieved_rps=completed / wall if wall else 0.0,
            num_requests=len(results),
            completed=completed,
            failed=len(results) - completed,
            wall_s=wall,
            client_latency_ms=_percentiles(latencies),
            results=results,
            errors=errors,
            deployment=self.deployment,
            arrival=self.arrival,
            seed=self.seed,
        )

"""TCP front-end: JSON-lines control plane, zero-copy binary data plane.

Connections start as newline-delimited JSON (the same framing the
runtime worker fabric uses — ``repro.runtime.codec``).  A client that
supports it sends ``{"op": "hello", "frames": ["binary"]}`` as its
first request; a willing server answers ``{"ok": true, "frames":
"binary"}`` and both sides switch to the length-prefixed binary frame
type from :mod:`repro.runtime.codec` — images and logits then travel
as raw ndarray buffers instead of nested JSON lists.  Anything else
(old clients, old servers, ``frames="json"``) stays on JSON lines:
the hello is answered on the framing it arrived on, and an error reply
to the hello just means "speak JSON".

An inference request carries the image (nested lists in JSON mode, a
raw ``image`` array in binary mode; the target deployment's
``(C, H, W)`` shape) plus optional serving knobs — including
``deployment``, the registry name that routes a request on a
multi-model server, and ``key``, an idempotency key: re-submitting the
same key (a client retry after a dropped connection, a duplicated
frame) is answered from the server's result ledger instead of executing
again.  Control requests carry an ``op`` field::

    {"id": 7, "image": [[[0.1, ...]]],
     "deployment": "fang:4", "key": "ab-3",
     "timeout_ms": 50, "priority": 2}        -> inference
    {"op": "metrics"}                        -> aggregate server metrics
    {"op": "metrics",
     "deployment": "fang:4"}                 -> one deployment's metrics
    {"op": "deployments"}                    -> registry listing
    {"op": "rollout", "alias": "prod",
     "to": "fang:8"}                         -> blue/green alias flip
    {"op": "ping"}                           -> liveness probe

Responses echo the client's ``id`` so clients may pipeline: every
connection handles its requests concurrently (each becomes a
``submit()`` into the shared :class:`~repro.serve.server.InferenceServer`,
so requests from many connections coalesce into the same micro-batches).
Failures answer as structured errors instead of tearing the connection
down::

    {"id": 7, "error": {"type": "RequestTimeoutError",
                        "message": "..."}}

so a timed-out or cancelled request propagates to the client as a typed
exception (:class:`~repro.errors.RequestTimeoutError`,
:class:`~repro.errors.BackpressureError`, :class:`~repro.errors.
ServeError`) rather than a hung connection.

This transport is deliberately minimal — a measurement and demo surface,
not a hardened RPC layer; the in-process API is the primary interface.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np

from repro.errors import (
    BackpressureError,
    CodecError,
    DeploymentError,
    ReplicaDivergenceError,
    ReproError,
    RequestTimeoutError,
    RolloutError,
    ServeError,
)
from repro.runtime.codec import (
    FRAME_PREFIX_LEN,
    decode_frame,
    encode_frame,
    parse_frame_prefix,
)
from repro.runtime.codec import encode_line as _encode
from repro.runtime.remote import _backoff_delay
from repro.runtime.work import next_idempotency_key
from repro.serve.server import InferenceServer

__all__ = ["TcpClient", "start_tcp_server"]

#: Error types a structured reply can resurrect client-side; anything
#: else degrades to plain :class:`ServeError`.
_ERROR_TYPES = {
    "BackpressureError": BackpressureError,
    "DeploymentError": DeploymentError,
    "ReplicaDivergenceError": ReplicaDivergenceError,
    "RequestTimeoutError": RequestTimeoutError,
    "RolloutError": RolloutError,
}

#: Read-only (or naturally idempotent) control ops a disconnected client
#: may re-send without a key.
_IDEMPOTENT_OPS = frozenset({"ping", "metrics", "deployments",
                             "rollout", "telemetry", "traces"})


class _ConnectionLost(ServeError):
    """Client-side connection failure — retryable, unlike a structured
    error the server answered with."""


def _error_payload(error: Exception) -> dict:
    return {"type": type(error).__name__, "message": str(error)}


def _raise_remote_error(error) -> Exception:
    """Rebuild the typed exception from a structured (or legacy) error."""
    if isinstance(error, dict):
        cls = _ERROR_TYPES.get(error.get("type"), ServeError)
        return cls(error.get("message", "server error"))
    return ServeError(str(error))


async def _read_frame_async(reader: asyncio.StreamReader):
    """One binary frame off an asyncio stream; ``None`` on clean EOF."""
    try:
        prefix = await reader.readexactly(FRAME_PREFIX_LEN)
    except asyncio.IncompleteReadError as error:
        if error.partial:
            raise CodecError("connection closed mid-frame") from None
        return None
    header_len, body_len = parse_frame_prefix(prefix)
    try:
        header = await reader.readexactly(header_len)
        body = await reader.readexactly(body_len)
    except asyncio.IncompleteReadError:
        raise CodecError("connection closed mid-frame") from None
    return decode_frame(header, body)


async def _handle_connection(server: InferenceServer,
                             reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter,
                             frames: str = "binary",
                             chaos=None) -> None:
    write_lock = asyncio.Lock()
    pending: set[asyncio.Task] = set()
    binary = False  # every connection starts on JSON lines
    peer = str(writer.get_extra_info("peername"))

    async def respond(payload: dict, arrays: dict | None = None) -> None:
        async with write_lock:
            if binary:
                writer.write(encode_frame(payload, arrays or {}))
            else:
                if arrays:
                    payload = dict(payload)
                    for name, array in arrays.items():
                        payload[name] = np.asarray(array).tolist()
                writer.write(_encode(payload))
            await writer.drain()

    async def serve_one(message: dict,
                        in_arrays: dict | None = None) -> None:
        request_id = message.get("id")
        try:
            if message.get("op") == "ping":
                await respond({"id": request_id, "ok": True})
                return
            if message.get("op") == "metrics":
                snapshot = server.snapshot(
                    deployment=message.get("deployment"))
                await respond({"id": request_id,
                               "metrics": snapshot.to_dict()})
                return
            if message.get("op") == "deployments":
                await respond({"id": request_id,
                               "deployments": server.deployments()})
                return
            if message.get("op") == "telemetry":
                from repro.telemetry import get_registry
                await respond({"id": request_id,
                               "telemetry": get_registry().to_dict()})
                return
            if message.get("op") == "traces":
                from repro.telemetry import get_tracer
                recorder = get_tracer().recorder
                limit = int(message.get("limit", 16))
                await respond({"id": request_id,
                               "traces": recorder.traces(limit=limit),
                               "events": recorder.events(limit=64)})
                return
            if message.get("op") == "rollout":
                outcome = await server.rollout(
                    str(message.get("alias")), str(message.get("to")),
                    drain=bool(message.get("drain", True)))
                await respond({"id": request_id, "rollout": outcome})
                return
            if in_arrays and "image" in in_arrays:
                image = in_arrays["image"]
            elif "image" in message:
                image = np.asarray(message["image"], dtype=np.float64)
            else:
                raise ServeError(
                    "request needs an 'image' field or a known 'op'")
            timeout_ms = message.get("timeout_ms")
            key = message.get("key")
            result = await server.submit(
                image,
                timeout_ms=(float(timeout_ms) if timeout_ms is not None
                            else None),
                priority=int(message.get("priority", 0)),
                deployment=message.get("deployment"),
                key=(str(key) if key is not None else None),
                trace=message.get("trace"))
            payload = result.to_dict()
            payload["id"] = request_id
            payload.pop("logits", None)
            await respond(payload, {"logits": np.asarray(result.logits)})
        except (ReproError, ValueError, TypeError) as error:
            # TypeError covers unconvertible 'image' payloads (null,
            # objects): every failure must answer, or a pipelining
            # client waits on this id forever.  The structured payload
            # carries the exception type, so timeouts and backpressure
            # resurface client-side as the same typed errors.
            await respond({"id": request_id,
                           "error": _error_payload(error)})

    try:
        while True:
            in_arrays: dict | None = None
            if binary:
                # No newline to resync on: a malformed frame answers
                # once and hangs up.
                try:
                    frame = await _read_frame_async(reader)
                except CodecError as error:
                    await respond({"id": None,
                                   "error": {"type": "CodecError",
                                             "message": str(error)}})
                    break
                if frame is None:
                    break
                message, in_arrays = frame
            else:
                line = await reader.readline()
                if not line:
                    break
                try:
                    message = json.loads(line)
                except json.JSONDecodeError as error:
                    await respond(
                        {"id": None,
                         "error": {"type": "ServeError",
                                   "message": f"bad JSON: {error}"}})
                    continue
            if not isinstance(message, dict):
                await respond({"id": None,
                               "error": {"type": "ServeError",
                                         "message": "request must be a "
                                                    "JSON object"}})
                continue
            if message.get("op") == "hello":
                # Negotiation is handled inline (not as a task): the
                # very next bytes on the wire depend on the answer.
                offered = message.get("frames") or []
                chosen = ("binary" if frames == "binary"
                          and "binary" in offered else "json")
                await respond({"id": message.get("id"), "ok": True,
                               "frames": chosen})
                binary = chosen == "binary"
                continue
            task = asyncio.create_task(serve_one(message, in_arrays))
            pending.add(task)
            task.add_done_callback(pending.discard)
            if chaos is not None and chaos.server_hangup(peer):
                # Hang up mid-conversation: in-flight requests on this
                # connection die unanswered and the client's reconnect /
                # re-submission machinery has to recover them.
                break
    finally:
        for task in pending:
            task.cancel()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def start_tcp_server(
    server: InferenceServer,
    host: str = "127.0.0.1",
    port: int = 0,
    frames: str = "binary",
    chaos=None,
) -> tuple[asyncio.AbstractServer, int]:
    """Expose a running :class:`InferenceServer` over TCP.

    ``port=0`` binds an ephemeral port; the bound port is returned so
    callers (and tests) can hand it to clients.  ``frames="binary"``
    (the default) lets clients negotiate the zero-copy frame type;
    ``frames="json"`` pins every connection to JSON lines.  ``chaos``
    (a :class:`~repro.runtime.ChaosPolicy`) makes the transport hang
    connections up per its ``server_hangup`` schedule — the fault drill
    for client reconnects.
    """
    if frames not in ("binary", "json"):
        raise ServeError(
            f"frames must be 'binary' or 'json', got {frames!r}")
    if not server.running:
        raise ServeError("start the InferenceServer before the transport")
    tcp = await asyncio.start_server(
        lambda r, w: _handle_connection(server, r, w, frames=frames,
                                        chaos=chaos),
        host, port)
    bound_port = tcp.sockets[0].getsockname()[1]
    return tcp, bound_port


class TcpClient:
    """Pipelining JSON-lines client for :func:`start_tcp_server`.

    ``infer`` may be called concurrently from many tasks: requests are
    matched to responses by id, so in-flight requests overlap — which is
    exactly what lets a single client drive the server's coalescing.

    ``frames="binary"`` (the default) negotiates the zero-copy frame
    type during :meth:`connect`; a server that declines (or predates
    the negotiation) keeps the connection on JSON lines.  ``binary``
    reports what was agreed.

    ``retries`` (default 0: historical fail-fast behavior) turns on
    reconnect-and-resubmit: a request that dies with the connection is
    re-sent — after a jittered exponential backoff and a fresh
    ``connect`` — up to ``retries`` extra times.  Only *safe* requests
    retry: inferences (every ``infer`` carries an idempotency ``key``,
    so a re-send the server already executed is answered from its
    result ledger, never run twice) and idempotent control ops; a
    structured error the server answered with is never retried.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 frames: str = "binary", retries: int = 0,
                 retry_base_s: float = 0.05, retry_cap_s: float = 2.0,
                 chaos=None) -> None:
        if frames not in ("binary", "json"):
            raise ServeError(
                f"frames must be 'binary' or 'json', got {frames!r}")
        if retries < 0:
            raise ServeError(f"retries must be >= 0, got {retries}")
        self.host = host
        self.port = port
        self.frames = frames
        self.binary = False
        self.retries = int(retries)
        self.retry_base_s = retry_base_s
        self.retry_cap_s = retry_cap_s
        #: Optional ChaosPolicy: outbound frames consult ``frame_fate``
        #: (drop / dup / delay) — the client-side fault drill.
        self.chaos = chaos
        self.reconnects = 0   # successful re-connections
        self.resends = 0      # requests re-submitted after a drop
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._reader_task: asyncio.Task | None = None
        self._write_lock = asyncio.Lock()
        self._connect_lock = asyncio.Lock()
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 0

    async def connect(self) -> "TcpClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)
        if self.frames == "binary":
            # Negotiate before the read loop exists: the framing of
            # every subsequent byte depends on this one reply.
            hello_id = self._next_id
            self._next_id += 1
            try:
                self._writer.write(_encode({"op": "hello", "id": hello_id,
                                            "frames": ["binary"]}))
                await self._writer.drain()
                line = await self._reader.readline()
                reply = json.loads(line) if line else None
            except (json.JSONDecodeError, ConnectionError, OSError):
                reply = None
            # Anything but an explicit "binary" answer — an error reply
            # (old server), garbage, or a dropped connection — keeps
            # the wire on JSON; a dead socket then fails the first
            # request, same as before negotiation existed.
            self.binary = (isinstance(reply, dict)
                           and reply.get("frames") == "binary")
        self._reader_task = asyncio.create_task(self._read_loop())
        return self

    async def __aenter__(self) -> "TcpClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def _read_loop(self) -> None:
        try:
            while True:
                if self.binary:
                    frame = await _read_frame_async(self._reader)
                    if frame is None:
                        break
                    payload, arrays = frame
                    for name, array in arrays.items():
                        payload[name] = array.tolist()
                else:
                    line = await self._reader.readline()
                    if not line:
                        break
                    payload = json.loads(line)
                future = self._pending.pop(payload.get("id"), None)
                if future is not None and not future.done():
                    if "error" in payload:
                        future.set_exception(
                            _raise_remote_error(payload["error"]))
                    else:
                        future.set_result(payload)
        except (CodecError, ConnectionError, OSError):
            pass  # fall through: every pending request fails below
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        _ConnectionLost("connection closed mid-request"))
            self._pending.clear()

    async def _ensure_connected(self) -> None:
        """Reconnect if the read loop died; concurrent retriers share
        one reconnection instead of racing each other."""
        async with self._connect_lock:
            if (self._reader_task is not None
                    and not self._reader_task.done()):
                return
            await self.close()
            await self.connect()
            self.reconnects += 1

    async def _request_once(self, payload: dict,
                            arrays: dict | None = None) -> dict:
        if self._writer is None:
            raise ServeError("client is not connected")
        request_id = self._next_id
        self._next_id += 1
        payload = dict(payload, id=request_id)
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        # Register before checking liveness: either the read loop is
        # already done (we fail fast here) or its exit path will fail
        # this pending future — no window where a request can hang on a
        # dead connection.
        if self._reader_task is None or self._reader_task.done():
            self._pending.pop(request_id, None)
            raise _ConnectionLost("connection closed")
        if self.binary:
            data = encode_frame(payload, arrays or {})
        else:
            if arrays:
                payload = dict(payload)
                for name, array in arrays.items():
                    payload[name] = np.asarray(array).tolist()
            data = _encode(payload)
        fate = (self.chaos.frame_fate(f"{self.host}:{self.port}")
                if self.chaos is not None else None)
        if fate == "drop":
            # The frame never reaches the wire; fail exactly like a cut
            # connection so the retry path (key in hand) recovers it.
            self._pending.pop(request_id, None)
            raise _ConnectionLost("outbound frame dropped (chaos)")
        if fate == "delay":
            await asyncio.sleep(self.chaos.delay_s)
        try:
            async with self._write_lock:
                self._writer.write(data)
                if fate == "dup":
                    # Same id, same key: the server answers both, the
                    # ledger guarantees it executed once; the second
                    # reply finds no pending future and is dropped.
                    self._writer.write(data)
                await self._writer.drain()
        except (ConnectionError, OSError) as error:
            self._pending.pop(request_id, None)
            raise _ConnectionLost(f"connection lost mid-send: "
                                  f"{error}") from None
        return await future

    async def _request(self, payload: dict,
                       arrays: dict | None = None) -> dict:
        """One request with the retry envelope around it.

        Connection-level failures (never structured server errors) are
        retried up to ``self.retries`` times, each attempt behind a
        jittered exponential backoff and a shared reconnect — but only
        for requests that are safe to re-send: keyed inferences and
        idempotent control ops.
        """
        safe = ("key" in payload
                or payload.get("op") in _IDEMPOTENT_OPS)
        attempts = 1 + (self.retries if safe else 0)
        last_error: Exception = ServeError("request never attempted")
        for attempt in range(1, attempts + 1):
            if attempt > 1:
                await asyncio.sleep(_backoff_delay(
                    self.retry_base_s, attempt - 1, self.retry_cap_s))
                try:
                    await self._ensure_connected()
                except (ConnectionError, OSError) as error:
                    last_error = _ConnectionLost(
                        f"reconnect failed: {error}")
                    continue
                self.resends += 1
            try:
                return await self._request_once(payload, arrays)
            except _ConnectionLost as error:
                last_error = error
        raise last_error

    async def infer(self, image: np.ndarray,
                    timeout_ms: float | None = None,
                    priority: int = 0,
                    deployment: str | None = None,
                    key: str | None = None) -> dict:
        """One inference round-trip; returns the response payload.

        ``timeout_ms``/``priority`` ride to the server's batch policies;
        ``deployment`` routes to a named model on a multi-model server
        (an unknown name comes back as
        :class:`~repro.errors.DeploymentError`); a server-side timeout
        comes back as :class:`~repro.errors.RequestTimeoutError`.
        ``key`` is the request's idempotency key (auto-generated when
        omitted): it is what makes a reconnect re-send safe — the
        server's ledger answers a key it already completed instead of
        executing it again.

        With client-side tracing enabled (``repro.telemetry.configure``)
        every ``infer`` opens a ``client_infer`` root span and sends its
        context in the request's ``trace`` field, so the server's whole
        span tree hangs under the client's — one connected trace across
        the wire, on either framing.
        """
        from repro.telemetry import get_tracer
        payload: dict = {"key": key if key is not None
                         else next_idempotency_key()}
        if timeout_ms is not None:
            payload["timeout_ms"] = timeout_ms
        if priority:
            payload["priority"] = int(priority)
        if deployment is not None:
            payload["deployment"] = deployment
        span = get_tracer().span(
            "client_infer",
            attrs={"target": f"{self.host}:{self.port}"})
        if span:
            payload["trace"] = span.context()
        try:
            reply = await self._request(
                payload, {"image": np.asarray(image, dtype=np.float64)})
        except Exception:
            span.finish(ok=False)
            raise
        span.set(framing="binary" if self.binary else "json")
        span.finish()
        return reply

    async def rollout(self, alias: str, to: str,
                      drain: bool = True) -> dict:
        """Blue/green flip: point ``alias`` at deployment ``to``.

        Server-side this is atomic (no request sees a missing target);
        a refused flip (unknown target, name collision) comes back as
        :class:`~repro.errors.RolloutError`.
        """
        return (await self._request(
            {"op": "rollout", "alias": alias, "to": to,
             "drain": bool(drain)}))["rollout"]

    async def metrics(self, deployment: str | None = None) -> dict:
        payload = {"op": "metrics"}
        if deployment is not None:
            payload["deployment"] = deployment
        return (await self._request(payload))["metrics"]

    async def deployments(self) -> list[dict]:
        """The server's registry listing (name, backend, fingerprint)."""
        return (await self._request({"op": "deployments"}))["deployments"]

    async def telemetry(self) -> dict:
        """The server's unified metrics registry, as plain dicts."""
        return (await self._request({"op": "telemetry"}))["telemetry"]

    async def traces(self, limit: int = 16) -> dict:
        """Recent traces (grouped spans + rollups) and tracer events
        from the server's flight recorder."""
        reply = await self._request({"op": "traces", "limit": int(limit)})
        return {"traces": reply["traces"], "events": reply["events"]}

    async def ping(self) -> bool:
        return bool((await self._request({"op": "ping"})).get("ok"))

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None

"""Content-addressed result cache for the inference server.

The fabric's determinism contract makes inference a pure function of
``(deployment content, image bytes)`` — the same image on the same
deployment produces bit-identical logits and traces whatever batch it
rode in, whichever lane ran it.  That purity is cacheable: the server
digests each admitted image, and a request whose ``(deployment
fingerprint, image digest)`` pair was already served answers straight
from a bounded LRU — no queue, no batcher, no engine — before batching
ever sees it.

Duplicate-heavy load is the norm, not the edge case: retried frames,
health-check canaries, fixed test vectors, and replayed capture files
all resend byte-identical images.  The idempotency-key ledger only
dedups *cooperating* clients (same key); the result cache dedups by
*content*, so two unrelated clients sending the same image share one
execution.

The key is content on both sides — :attr:`Deployment.fingerprint`
hashes the network weights, config and calibration, so a blue/green
rollout to retrained weights changes the fingerprint and misses
cleanly; no invalidation hooks needed.  Hits, misses and evictions are
counted in the process-wide telemetry registry
(``repro_result_cache_*_total``).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

from repro.telemetry import get_registry

__all__ = ["ResultCache", "batch_digest"]


def batch_digest(images: np.ndarray) -> str:
    """SHA-256 over an image array's dtype, shape and raw bytes.

    Shape and dtype are folded in so a (3, 32, 32) float image never
    collides with a differently-shaped reinterpretation of the same
    bytes.  Works for single images and stacked batches alike.
    """
    images = np.ascontiguousarray(images)
    digest = hashlib.sha256()
    digest.update(str(images.dtype).encode())
    digest.update(repr(images.shape).encode())
    digest.update(images.tobytes())
    return digest.hexdigest()


class ResultCache:
    """Bounded LRU of served results keyed by content.

    ``capacity`` is the entry count (0 disables the cache entirely —
    ``get`` always misses silently, ``put`` drops).  Entries are
    whatever the server chooses to replay (it stores the full
    :class:`~repro.serve.server.InferenceResult`); the cache never
    inspects them.  Thread-safe: the registry's scrape samplers and the
    event loop may touch it concurrently.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 0:
            raise ValueError(
                f"result cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict[tuple[str, str], object] = \
            OrderedDict()
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def __len__(self) -> int:
        return len(self._entries)

    def _counter(self, event: str):
        return get_registry().counter(
            f"repro_result_cache_{event}_total",
            f"Content-addressed result cache {event}")

    def get(self, fingerprint: str, digest: str):
        """The cached entry for a content pair, or None (counted)."""
        if not self.enabled:
            return None
        with self._lock:
            entry = self._entries.get((fingerprint, digest))
            if entry is not None:
                self._entries.move_to_end((fingerprint, digest))
                self.hits += 1
            else:
                self.misses += 1
        if entry is not None:
            self._counter("hits").inc()
        else:
            self._counter("misses").inc()
        return entry

    def put(self, fingerprint: str, digest: str, entry) -> None:
        """Store a served result; evicts LRU beyond capacity."""
        if not self.enabled:
            return
        evicted = 0
        with self._lock:
            self._entries[(fingerprint, digest)] = entry
            self._entries.move_to_end((fingerprint, digest))
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                evicted += 1
        if evicted:
            self._counter("evictions").inc(evicted)

    def to_dict(self) -> dict:
        with self._lock:
            return {"entries": len(self._entries),
                    "capacity": self.capacity,
                    "hits": self.hits,
                    "misses": self.misses,
                    "evictions": self.evictions}

"""The asyncio inference server: coalesce, execute, account, respond.

:class:`InferenceServer` accepts single-image requests (``submit`` /
``submit_many``), parks them in a bounded queue (backpressure), lets a
:class:`~repro.serve.batcher.Batcher` coalesce them into micro-batches
under the configured policy, executes each batch on a pool of warm
engines (:class:`~repro.serve.pool.EnginePool`), and resolves every
request's future with an :class:`InferenceResult` — the prediction plus
the per-request slice of the batch's hardware accounting.

Determinism contract: batching is a pure re-grouping.  The engines
return one :class:`~repro.core.engine.trace.ExecutionTrace` per image
whatever the batch shape, so a request's prediction, cycle count and
energy are identical whether it ran alone or inside a 64-deep
micro-batch (``tests/test_serve.py`` pins this, and the load generator
asserts predictions against direct ``Accelerator.run_logits`` output at
runtime).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.calibration import DEFAULT_LATENCY, LatencyCalibration
from repro.core.config import AcceleratorConfig
from repro.core.energy import trace_energy
from repro.core.engine.trace import TraceMerge
from repro.errors import (
    BackpressureError,
    RequestTimeoutError,
    ServeError,
    ShapeError,
)
from repro.serve.batcher import Batcher, BatchPolicy, create_policy
from repro.serve.metrics import MetricsSnapshot, ServerMetrics
from repro.serve.pool import EnginePool

__all__ = ["InferenceResult", "InferenceServer"]


@dataclass(frozen=True)
class InferenceResult:
    """One request's prediction plus its hardware and serving accounting.

    ``trace`` is the request's own single-image
    :class:`~repro.core.engine.trace.TraceMerge` — sliced out of the
    micro-batch it rode in, so summing the traces of N requests equals
    the merged trace of one N-image batch run exactly.
    """

    request_id: int
    prediction: int
    logits: np.ndarray
    trace: TraceMerge
    cycles: int
    energy_pj: float
    model_latency_us: float
    queue_wait_ms: float
    service_ms: float
    latency_ms: float
    batch_size: int

    def to_dict(self) -> dict:
        """JSON-ready summary (logits and trace collapse to scalars)."""
        return {
            "request_id": self.request_id,
            "prediction": self.prediction,
            "logits": [int(v) for v in self.logits],
            "cycles": self.cycles,
            "energy_pj": self.energy_pj,
            "model_latency_us": self.model_latency_us,
            "queue_wait_ms": self.queue_wait_ms,
            "service_ms": self.service_ms,
            "latency_ms": self.latency_ms,
            "batch_size": self.batch_size,
        }


@dataclass
class _Request:
    """Internal queue entry: the image plus its completion future.

    ``priority`` orders batch selection (higher first, FIFO within a
    level); ``deadline`` is the absolute ``perf_counter`` time after
    which the request must be failed with
    :class:`~repro.errors.RequestTimeoutError` instead of dispatched.
    """

    request_id: int
    image: np.ndarray
    future: asyncio.Future
    enqueued_at: float = field(default_factory=time.perf_counter)
    priority: int = 0
    timeout_ms: float | None = None
    deadline: float | None = None


class InferenceServer:
    """Async micro-batching front-end over the functional hardware model.

    Parameters
    ----------
    network:
        A :class:`~repro.snn.spec.QuantizedNetwork` (or an object with a
        ``.network`` attribute, e.g. :class:`~repro.snn.model.SNNModel`).
    config:
        Accelerator configuration; defaults to
        ``AcceleratorConfig.for_network(network)``.
    policy:
        Batching policy name (``greedy`` | ``deadline``) or a
        :class:`~repro.serve.batcher.BatchPolicy` instance.
    max_batch / max_wait_ms / slo_ms:
        Policy knobs (each policy uses the subset it cares about).
    queue_depth:
        Bounded-queue capacity; ``submit(wait=True)`` blocks when full,
        ``submit(wait=False)`` raises :class:`BackpressureError`.
    engines / mode / workers:
        Warm-engine pool shape: ``engines`` lanes of ``mode`` (``thread``
        | ``process``), or explicit runtime fabric specs via ``workers``
        (e.g. ``["thread", "host:7601"]`` to add a remote TCP engine
        worker); see :class:`~repro.serve.pool.EnginePool`.
    """

    def __init__(
        self,
        network,
        config: AcceleratorConfig | None = None,
        backend: str = "vectorized",
        calibration: LatencyCalibration = DEFAULT_LATENCY,
        policy: str | BatchPolicy = "greedy",
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        slo_ms: float = 50.0,
        queue_depth: int = 1024,
        engines: int = 1,
        mode: str = "thread",
        workers: list[str] | None = None,
    ) -> None:
        network = getattr(network, "network", network)
        self.network = network
        self.config = config or AcceleratorConfig.for_network(network)
        self.policy = create_policy(policy, max_batch=max_batch,
                                    max_wait_ms=max_wait_ms, slo_ms=slo_ms)
        self.queue_depth = queue_depth
        self.pool = EnginePool(network, self.config, backend=backend,
                               calibration=calibration, size=engines,
                               mode=mode, workers=workers)
        self.metrics = ServerMetrics()
        self._queue: asyncio.Queue | None = None
        self._batcher: Batcher | None = None
        self._loop_task: asyncio.Task | None = None
        self._dispatch_tasks: set[asyncio.Task] = set()
        self._open_requests = 0
        self._idle: asyncio.Event | None = None
        self._next_id = 0
        self._closed = True

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._loop_task is not None and not self._loop_task.done()

    async def start(self) -> "InferenceServer":
        """Warm the engine pool and begin serving; returns self."""
        if self.running:
            raise ServeError("server already running")
        self._queue = asyncio.Queue(maxsize=self.queue_depth)
        self._batcher = Batcher(self._queue, self.policy,
                                expire=self._expire_request)
        self._dispatch_slots = asyncio.Semaphore(self.pool.size)
        self._idle = asyncio.Event()
        self._idle.set()
        self._open_requests = 0
        self.pool.start()
        self.metrics.reset()
        self._closed = False
        self._loop_task = asyncio.create_task(self._serve_loop(),
                                              name="repro-serve-loop")
        return self

    async def stop(self, drain: bool = True) -> None:
        """Stop serving; with ``drain`` (default) finish queued work first."""
        if self._loop_task is None:
            return
        self._closed = True  # refuse new submits immediately
        if drain:
            await self._idle.wait()
        self._loop_task.cancel()
        try:
            await self._loop_task
        except asyncio.CancelledError:
            pass
        self._loop_task = None
        for task in list(self._dispatch_tasks):
            task.cancel()
        if self._dispatch_tasks:
            await asyncio.gather(*self._dispatch_tasks,
                                 return_exceptions=True)
        self._dispatch_tasks.clear()
        # Fail anything still queued — including requests whose
        # submitters were parked on a full queue: each drained slot
        # wakes a parked put(), whose request lands on a later pass of
        # this loop.  Only reachable with drain=False (a drain already
        # waited the open count down to zero).
        while self._open_requests > 0:
            leftovers = self._batcher.drain_waiting()
            while not self._queue.empty():
                leftovers.append(self._queue.get_nowait())
            for request in leftovers:
                if not request.future.done():
                    request.future.set_exception(
                        ServeError("server stopped before request ran"))
                self._request_done()
            await asyncio.sleep(0)  # let woken putters deposit
        self.pool.shutdown()

    async def __aenter__(self) -> "InferenceServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Request intake
    # ------------------------------------------------------------------
    def _check_image(self, image: np.ndarray) -> np.ndarray:
        image = np.asarray(image, dtype=np.float64)
        expected = self.network.input_shape
        if image.shape != expected:
            raise ShapeError(
                f"expected one image shaped {expected}, got {image.shape}"
                " (submit() takes single images; batching is the"
                " server's job)")
        return image

    async def submit(self, image: np.ndarray,
                     wait: bool = True,
                     timeout_ms: float | None = None,
                     priority: int = 0) -> InferenceResult:
        """Infer one ``(C, H, W)`` image; resolves when its batch ran.

        ``wait=True`` applies backpressure by awaiting queue space;
        ``wait=False`` raises :class:`BackpressureError` when the queue
        is full (and counts the rejection in the metrics).

        ``timeout_ms`` bounds the queue wait: a request still waiting
        for a batch slot when the deadline passes fails with
        :class:`~repro.errors.RequestTimeoutError` (counted in
        ``timed_out``) instead of lingering.  ``priority`` biases batch
        selection — higher values dispatch first, FIFO within a level.
        """
        if self._closed:
            raise ServeError("server is not running (call start())")
        if timeout_ms is not None and timeout_ms <= 0:
            raise ServeError(
                f"timeout_ms must be > 0, got {timeout_ms}")
        image = self._check_image(image)
        loop = asyncio.get_running_loop()
        request = _Request(request_id=self._next_id, image=image,
                           future=loop.create_future(),
                           priority=int(priority),
                           timeout_ms=timeout_ms)
        if timeout_ms is not None:
            request.deadline = request.enqueued_at + timeout_ms / 1e3
        self._next_id += 1
        self._request_opened()
        try:
            if wait:
                await self._queue.put(request)
            else:
                try:
                    self._queue.put_nowait(request)
                except asyncio.QueueFull:
                    self.metrics.record_rejected()
                    raise BackpressureError(
                        f"request queue full ({self.queue_depth} deep); "
                        "retry, or submit(wait=True) for backpressure"
                    ) from None
        except BaseException:
            self._request_done()
            raise
        return await request.future

    async def submit_many(self, images: np.ndarray,
                          wait: bool = True,
                          timeout_ms: float | None = None,
                          priority: int = 0) -> list[InferenceResult]:
        """Submit a pre-formed group of images; order-preserving.

        All submissions settle before this returns; if any failed (e.g.
        ``wait=False`` backpressure rejections), the first error is
        raised *after* the siblings finished — nothing keeps running in
        the background and no result is silently dropped mid-flight.
        """
        settled = await asyncio.gather(
            *(self.submit(image, wait=wait, timeout_ms=timeout_ms,
                          priority=priority) for image in images),
            return_exceptions=True)
        for outcome in settled:
            if isinstance(outcome, BaseException):
                raise outcome
        return list(settled)

    def snapshot(self) -> MetricsSnapshot:
        """Metrics snapshot including the live queue depth."""
        depth = self._queue.qsize() if self._queue is not None else 0
        if self._batcher is not None:
            depth += self._batcher.waiting
        return self.metrics.snapshot(
            queue_depth=depth, worker_crashes=self.pool.worker_crashes)

    # ------------------------------------------------------------------
    # Serving internals
    # ------------------------------------------------------------------
    def _request_opened(self) -> None:
        self._open_requests += 1
        self._idle.clear()

    def _request_done(self) -> None:
        self._open_requests -= 1
        if self._open_requests <= 0:
            self._idle.set()

    def _expire_request(self, request: _Request) -> None:
        """Batcher hook: a request's queue-wait deadline passed."""
        self.metrics.record_timeout()
        if not request.future.done():
            request.future.set_exception(RequestTimeoutError(
                f"request {request.request_id} timed out after "
                f"{request.timeout_ms:.0f} ms waiting for dispatch"))
        self._request_done()

    async def _serve_loop(self) -> None:
        # In-flight batches are capped at the engine-pool size *before*
        # the next batch forms: while every engine is busy, requests
        # stay in the bounded queue (where submit() feels the
        # backpressure) instead of draining into parked dispatch tasks.
        # The queue keeps filling during execution, so the next
        # next_batch() still coalesces everything that arrived.
        while True:
            await self._dispatch_slots.acquire()
            try:
                batch = await self._batcher.next_batch()
            except BaseException:
                self._dispatch_slots.release()
                raise
            task = asyncio.create_task(self._execute(batch))
            self._dispatch_tasks.add(task)
            task.add_done_callback(self._finish_dispatch)

    def _finish_dispatch(self, task: asyncio.Task) -> None:
        self._dispatch_tasks.discard(task)
        self._dispatch_slots.release()

    async def _execute(self, batch: list[_Request]) -> None:
        images = np.stack([request.image for request in batch])
        started = time.perf_counter()
        try:
            logits, traces = await self.pool.run_batch(images)
        except BaseException as error:
            # Fail the whole batch but keep serving — and on
            # cancellation (stop(drain=False) tears down in-flight
            # dispatches) still resolve every future so concurrent
            # submit() callers unblock instead of hanging forever.
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(
                        ServeError(f"batch execution failed: {error!r}"))
                self._request_done()
            if isinstance(error, asyncio.CancelledError):
                raise
            return
        finished = time.perf_counter()
        service_ms = (finished - started) * 1e3
        self.policy.observe(len(batch), finished - started)
        weight_bits = self.network.weight_bits
        for i, request in enumerate(batch):
            trace = traces[i]  # already a per-image TraceMerge
            cycles = trace.total_cycles
            queue_wait_ms = (started - request.enqueued_at) * 1e3
            latency_ms = (finished - request.enqueued_at) * 1e3
            result = InferenceResult(
                request_id=request.request_id,
                prediction=int(logits[i].argmax()),
                logits=logits[i],
                trace=trace,
                cycles=cycles,
                energy_pj=trace_energy(trace,
                                       weight_bits=weight_bits).total_pj,
                model_latency_us=cycles * self.config.cycle_time_us,
                queue_wait_ms=queue_wait_ms,
                service_ms=service_ms,
                latency_ms=latency_ms,
                batch_size=len(batch),
            )
            self.metrics.record(latency_ms=latency_ms,
                                queue_wait_ms=queue_wait_ms,
                                service_ms=service_ms,
                                batch_size=len(batch))
            if not request.future.done():
                request.future.set_result(result)
            self._request_done()

"""The asyncio inference server: coalesce, execute, account, respond.

:class:`InferenceServer` accepts single-image requests (``submit`` /
``submit_many``), parks them in bounded per-deployment queues
(backpressure and admission limits), lets a per-deployment
:class:`~repro.serve.batcher.Batcher` coalesce them into micro-batches
under the configured policy, executes each batch on a shared pool of
warm engines (:class:`~repro.serve.pool.EnginePool`), and resolves every
request's future with an :class:`InferenceResult` — the prediction plus
the per-request slice of the batch's hardware accounting.

**Multi-model serving.**  Construct the server from a
:class:`~repro.runtime.DeploymentRegistry` and requests route by name:
``submit(image, deployment="fang:4")``.  Every deployment gets its own
queue, batcher, policy instance and metrics — batches never mix models —
while all of them share one worker-lane pool, so capacity flows to
whichever model has traffic (an idle deployment holds no engine slot).
The single-model constructor (a bare network) registers it under the
name ``"default"`` and behaves exactly as before.

Determinism contract: batching is a pure re-grouping.  The engines
return one :class:`~repro.core.engine.trace.ExecutionTrace` per image
whatever the batch shape, so a request's prediction, cycle count and
energy are identical whether it ran alone or inside a 64-deep
micro-batch (``tests/test_serve.py`` pins this, and the load generator
asserts predictions against direct ``Accelerator.run_logits`` output at
runtime; ``tests/test_multimodel.py`` pins it per deployment on a
shared pool).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.calibration import DEFAULT_LATENCY, LatencyCalibration
from repro.core.config import AcceleratorConfig
from repro.core.energy import trace_energy
from repro.core.engine.trace import TraceMerge
from repro.errors import (
    BackpressureError,
    DeploymentError,
    ReplicaDivergenceError,
    RequestTimeoutError,
    RolloutError,
    ServeError,
    ShapeError,
)
from repro.runtime import DeploymentRegistry, RegisteredDeployment
from repro.runtime.work import ResultLedger
from repro.serve.batcher import Batcher, BatchPolicy, create_policy
from repro.serve.cache import ResultCache, batch_digest
from repro.serve.metrics import MetricsSnapshot, ServerMetrics
from repro.serve.pool import EnginePool
from repro.telemetry import get_registry, get_tracer

__all__ = ["InferenceResult", "InferenceServer"]


@dataclass(frozen=True)
class InferenceResult:
    """One request's prediction plus its hardware and serving accounting.

    ``trace`` is the request's own single-image
    :class:`~repro.core.engine.trace.TraceMerge` — sliced out of the
    micro-batch it rode in, so summing the traces of N requests equals
    the merged trace of one N-image batch run exactly.  ``deployment``
    names the model that served the request.
    """

    request_id: int
    prediction: int
    logits: np.ndarray
    trace: TraceMerge
    cycles: int
    energy_pj: float
    model_latency_us: float
    queue_wait_ms: float
    service_ms: float
    latency_ms: float
    batch_size: int
    deployment: str = "default"
    #: The request's trace id when it was served traced (None otherwise)
    #: — the handle ``repro top`` / the flight recorder look it up by.
    trace_id: str | None = None

    def to_dict(self) -> dict:
        """JSON-ready summary (logits and trace collapse to scalars)."""
        payload = {
            "request_id": self.request_id,
            "prediction": self.prediction,
            "logits": [int(v) for v in self.logits],
            "cycles": self.cycles,
            "energy_pj": self.energy_pj,
            "model_latency_us": self.model_latency_us,
            "queue_wait_ms": self.queue_wait_ms,
            "service_ms": self.service_ms,
            "latency_ms": self.latency_ms,
            "batch_size": self.batch_size,
            "deployment": self.deployment,
        }
        if self.trace_id is not None:
            payload["trace_id"] = self.trace_id
        return payload


@dataclass
class _Request:
    """Internal queue entry: the image plus its completion future.

    ``priority`` orders batch selection (higher first, FIFO within a
    level); ``deadline`` is the absolute ``perf_counter`` time after
    which the request must be failed with
    :class:`~repro.errors.RequestTimeoutError` instead of dispatched.
    """

    request_id: int
    image: np.ndarray
    future: asyncio.Future
    enqueued_at: float = field(default_factory=time.perf_counter)
    priority: int = 0
    timeout_ms: float | None = None
    deadline: float | None = None
    #: Client idempotency key (exactly-once): a completed key answers
    #: re-submissions from the server's result ledger.
    key: str | None = None
    #: Content digest of the admitted image (None when the result cache
    #: is disabled) — carried so ``_execute`` fills the cache without
    #: re-hashing what admission already digested.
    digest: str | None = None
    #: The request's root span (a real Span only when tracing is on —
    #: the disabled path never touches these fields).
    span: object = None
    #: perf_counter right after the queue admitted the request; with
    #: ``enqueued_at`` and the batch timestamps this yields *contiguous*
    #: stage spans whose durations sum to the end-to-end latency.
    t_admitted: float | None = None


class _DeploymentLane:
    """One deployment's serving state: queue, batcher, policy, metrics.

    A lane owns everything that must never be shared across models —
    batches form inside one lane only — while execution capacity (the
    engine pool's worker lanes) stays shared across all of them.
    """

    def __init__(self, entry: RegisteredDeployment, policy: BatchPolicy,
                 queue_depth: int, expire,
                 replicas: int = 1) -> None:
        self.entry = entry
        self.policy = policy
        self.replicas = max(1, replicas)
        self.queue: asyncio.Queue = asyncio.Queue(
            maxsize=entry.max_queue or queue_depth)
        self.batcher = Batcher(self.queue, policy, expire=expire)
        # The lane's collector also feeds the unified registry under a
        # deployment label (the aggregate collector does not — labeled
        # series sum to the aggregate, double-feeding would double it).
        self.metrics = ServerMetrics(deployment=entry.name)
        self.loop_task: asyncio.Task | None = None

    @property
    def name(self) -> str:
        return self.entry.name

    @property
    def depth(self) -> int:
        return self.queue.qsize() + self.batcher.waiting


class InferenceServer:
    """Async micro-batching front-end over the functional hardware model.

    Parameters
    ----------
    network:
        A :class:`~repro.snn.spec.QuantizedNetwork` (or an object with a
        ``.network`` attribute, e.g. :class:`~repro.snn.model.SNNModel`)
        — served as the single deployment ``"default"`` — **or** a
        :class:`~repro.runtime.DeploymentRegistry` of named deployments
        for multi-model serving.
    config:
        Accelerator configuration (single-model form only); defaults to
        ``AcceleratorConfig.for_network(network)``.
    policy:
        Batching policy name (``greedy`` | ``deadline``) or a
        :class:`~repro.serve.batcher.BatchPolicy` instance.  A name
        builds one independent instance per deployment (adaptive state
        never mixes models); an instance is shared as given.
    max_batch / max_wait_ms / slo_ms:
        Policy knobs (each policy uses the subset it cares about).
    queue_depth:
        Bounded-queue capacity per deployment (a registry entry's
        ``max_queue`` overrides it — the per-model admission limit);
        ``submit(wait=True)`` blocks when full, ``submit(wait=False)``
        raises :class:`BackpressureError`.
    engines / mode / workers / token:
        Warm-engine pool shape: ``engines`` lanes of ``mode`` (``thread``
        | ``process``), or explicit runtime fabric specs via ``workers``
        (e.g. ``["thread", "host:7601"]`` to add a remote TCP engine
        worker, authenticated with ``token`` if the host requires one);
        see :class:`~repro.serve.pool.EnginePool`.
    result_cache:
        Capacity (entries) of the content-addressed result cache: a
        byte-identical image on a content-identical deployment answers
        from a bounded LRU at admission — before batching — instead of
        executing again (``0`` disables; see
        :class:`~repro.serve.cache.ResultCache`).
    """

    def __init__(
        self,
        network,
        config: AcceleratorConfig | None = None,
        backend: str = "vectorized",
        calibration: LatencyCalibration = DEFAULT_LATENCY,
        policy: str | BatchPolicy = "greedy",
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        slo_ms: float = 50.0,
        queue_depth: int = 1024,
        engines: int = 1,
        mode: str = "thread",
        workers: list[str] | None = None,
        token: str | None = None,
        replicas: int = 1,
        quorum: int | None = None,
        chaos=None,
        result_cache: int = 128,
    ) -> None:
        if isinstance(network, DeploymentRegistry):
            self.registry = network
        else:
            network = getattr(network, "network", network)
            self.registry = DeploymentRegistry()
            self.registry.register(
                "default", network=network,
                config=config or AcceleratorConfig.for_network(network),
                backend=backend, calibration=calibration)
        default = self.registry.resolve()
        # Single-model views, kept stable for existing callers: the
        # default (first-registered) deployment.
        self.network = default.deployment.network
        self.config = default.deployment.config
        self._policy_spec = policy
        self._policy_kwargs = {"max_batch": max_batch,
                               "max_wait_ms": max_wait_ms,
                               "slo_ms": slo_ms}
        self.policy = create_policy(policy, **self._policy_kwargs)
        self.queue_depth = queue_depth
        if replicas < 1:
            raise ServeError(f"replicas must be >= 1, got {replicas}")
        if quorum is not None and not 1 <= quorum <= replicas:
            raise ServeError(
                f"quorum must be in [1, {replicas}], got {quorum}")
        #: Default replica count for every deployment (a registry
        #: entry's own ``replicas`` wins when larger).
        self.replicas = replicas
        self.quorum = quorum
        self.pool = EnginePool(registry=self.registry, size=engines,
                               mode=mode, workers=workers, token=token,
                               chaos=chaos)
        self.metrics = ServerMetrics()       # aggregate across deployments
        # Server-side exactly-once: completed InferenceResults by client
        # idempotency key, plus the keys whose first execution is still
        # in flight (a duplicate arriving mid-flight awaits that future
        # instead of re-executing).
        self._request_ledger = ResultLedger()
        self._inflight_keys: dict[str, asyncio.Future] = {}
        # Content-addressed exactly-once-by-value: byte-identical images
        # on a content-identical deployment answer from this LRU without
        # queueing, batching or executing (0 disables).
        self.result_cache = ResultCache(result_cache)
        self._lanes: dict[str, _DeploymentLane] = {}
        self._dispatch_slots: asyncio.Semaphore | None = None
        self._dispatch_tasks: set[asyncio.Task] = set()
        self._open_requests = 0
        self._idle: asyncio.Event | None = None
        self._next_id = 0
        self._closed = True

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return any(lane.loop_task is not None
                   and not lane.loop_task.done()
                   for lane in self._lanes.values())

    def deployments(self) -> list[dict]:
        """JSON-ready rows describing every served deployment."""
        return self.registry.describe()

    def _lane_policy(self, entry: RegisteredDeployment) -> BatchPolicy:
        """The default entry keeps ``self.policy`` (instance injection
        and pre-registry callers observe it); other deployments get
        fresh instances so adaptive state never crosses models — unless
        the caller handed in a shared instance explicitly."""
        if entry.name == self.registry.resolve().name:
            return self.policy
        if isinstance(self._policy_spec, BatchPolicy):
            return self._policy_spec
        return create_policy(self._policy_spec, **self._policy_kwargs)

    def _build_lane(self, entry: RegisteredDeployment) -> _DeploymentLane:
        lane = _DeploymentLane(
            entry, self._lane_policy(entry), self.queue_depth,
            expire=None, replicas=max(entry.replicas, self.replicas))
        lane.batcher.expire = self._make_expire(lane)
        return lane

    async def start(self) -> "InferenceServer":
        """Warm the engine pool and begin serving; returns self."""
        if self.running:
            raise ServeError("server already running")
        self._lanes = {}
        for entry in self.registry.entries():
            lane = self._build_lane(entry)
            self._lanes[entry.name] = lane
        self._dispatch_slots = asyncio.Semaphore(self.pool.size)
        self._idle = asyncio.Event()
        self._idle.set()
        self._open_requests = 0
        self.pool.start()
        self.metrics.reset()
        # Queue depth mirrors live state, so it refreshes at scrape
        # time instead of being fed per request.
        get_registry().register_sampler(self._sample_registry)
        self._closed = False
        for lane in self._lanes.values():
            lane.loop_task = asyncio.create_task(
                self._serve_loop(lane),
                name=f"repro-serve-loop-{lane.name}")
        return self

    async def stop(self, drain: bool = True) -> None:
        """Stop serving; with ``drain`` (default) finish queued work first."""
        lanes = [lane for lane in self._lanes.values()
                 if lane.loop_task is not None]
        if not lanes:
            return
        self._closed = True  # refuse new submits immediately
        if drain:
            await self._idle.wait()
        for lane in lanes:
            lane.loop_task.cancel()
        await asyncio.gather(*(lane.loop_task for lane in lanes),
                             return_exceptions=True)
        for lane in lanes:
            lane.loop_task = None
        for task in list(self._dispatch_tasks):
            task.cancel()
        if self._dispatch_tasks:
            await asyncio.gather(*self._dispatch_tasks,
                                 return_exceptions=True)
        self._dispatch_tasks.clear()
        # Fail anything still queued — including requests whose
        # submitters were parked on a full queue: each drained slot
        # wakes a parked put(), whose request lands on a later pass of
        # this loop.  Only reachable with drain=False (a drain already
        # waited the open count down to zero).
        while self._open_requests > 0:
            leftovers = []
            for lane in lanes:
                leftovers.extend(lane.batcher.drain_waiting())
                while not lane.queue.empty():
                    leftovers.append(lane.queue.get_nowait())
            for request in leftovers:
                if not request.future.done():
                    request.future.set_exception(
                        ServeError("server stopped before request ran"))
                self._request_done()
            await asyncio.sleep(0)  # let woken putters deposit
        self._dispatch_slots = None
        self.pool.shutdown()

    async def __aenter__(self) -> "InferenceServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Request intake
    # ------------------------------------------------------------------
    def _check_image(self, lane: _DeploymentLane,
                     image: np.ndarray) -> np.ndarray:
        image = np.asarray(image, dtype=np.float64)
        expected = lane.entry.deployment.network.input_shape
        if image.shape != expected:
            raise ShapeError(
                f"deployment {lane.name!r} expects one image shaped "
                f"{expected}, got {image.shape} (submit() takes single"
                " images; batching is the server's job)")
        return image

    def _resolve_lane(self, deployment: str | int | None
                      ) -> _DeploymentLane:
        entry = self.registry.resolve(deployment)
        lane = self._lanes.get(entry.name)
        if lane is None:
            # Registered into the (public, growable) registry after
            # start(): the typed error keeps the TCP handler answering
            # instead of leaking a KeyError past its except clause.
            raise DeploymentError(
                f"deployment {entry.name!r} was registered after the "
                "server started but is not serving; register live "
                "models through server.add_deployment() (or the TCP "
                "'deploy' op) so they get a serving lane")
        return lane

    async def submit(self, image: np.ndarray,
                     wait: bool = True,
                     timeout_ms: float | None = None,
                     priority: int = 0,
                     deployment: str | int | None = None,
                     key: str | None = None,
                     trace: dict | None = None,
                     ) -> InferenceResult:
        """Infer one ``(C, H, W)`` image; resolves when its batch ran.

        ``deployment`` names the model (default: the first-registered
        one); an unknown name raises the typed
        :class:`~repro.errors.DeploymentError`.  ``wait=True`` applies
        backpressure by awaiting space in that deployment's bounded
        queue; ``wait=False`` raises :class:`BackpressureError` when it
        is full (and counts the rejection in both the aggregate and the
        deployment's metrics).

        ``timeout_ms`` bounds the queue wait: a request still waiting
        for a batch slot when the deadline passes fails with
        :class:`~repro.errors.RequestTimeoutError` (counted in
        ``timed_out``) instead of lingering.  ``priority`` biases batch
        selection — higher values dispatch first, FIFO within a level.

        ``key`` is an optional client idempotency key (exactly-once): a
        key that already completed is answered from the server's result
        ledger without executing anything; a key whose first submission
        is still in flight awaits that submission's answer instead of
        executing a second copy.  Duplicated frames and client retries
        after a reconnect therefore cost one lookup, never one
        inference.

        ``trace`` is an optional propagation context (``{"trace_id",
        "span_id"}`` off the wire): with tracing enabled the request's
        whole server-side story — admission, batch wait, dispatch,
        execute (including the fabric lane that ran it), reply — lands
        in that trace; disabled, the field is ignored at zero cost.
        """
        if self._closed:
            raise ServeError("server is not running (call start())")
        if timeout_ms is not None and timeout_ms <= 0:
            raise ServeError(
                f"timeout_ms must be > 0, got {timeout_ms}")
        lane = self._resolve_lane(deployment)
        if key:
            recorded = self._request_ledger.get(key)
            if recorded is not None:
                self.metrics.record_deduped()
                lane.metrics.record_deduped()
                return recorded
            inflight = self._inflight_keys.get(key)
            if inflight is not None and not inflight.done():
                self.metrics.record_deduped()
                lane.metrics.record_deduped()
                # shield: the duplicate caller going away must not
                # cancel the original submission's execution.
                return await asyncio.shield(inflight)
        image = self._check_image(lane, image)
        digest = None
        if self.result_cache.enabled:
            # Content-addressed admission: a byte-identical image on a
            # content-identical deployment replays the cached answer —
            # no queue, no batch, no engine.  The replayed result keeps
            # the deterministic fields (prediction, logits, trace,
            # cycles, energy) verbatim and re-stamps the serving
            # accounting with this request's own (near-zero) timings.
            digest = batch_digest(image)
            cached = self.result_cache.get(
                lane.entry.deployment.fingerprint, digest)
            if cached is not None:
                return self._replay_cached(lane, cached, key=key,
                                           trace=trace)
        loop = asyncio.get_running_loop()
        request = _Request(request_id=self._next_id, image=image,
                           future=loop.create_future(),
                           priority=int(priority),
                           timeout_ms=timeout_ms,
                           key=key or None,
                           digest=digest)
        if timeout_ms is not None:
            request.deadline = request.enqueued_at + timeout_ms / 1e3
        tracer = get_tracer()
        if tracer.enabled:
            request.span = tracer.span(
                "request", context=trace,
                attrs={"deployment": lane.name,
                       "request_id": request.request_id},
                started_at=request.enqueued_at)
        self._next_id += 1
        self._request_opened()
        if request.key:
            self._inflight_keys[request.key] = request.future
        try:
            if wait:
                await lane.queue.put(request)
            else:
                try:
                    lane.queue.put_nowait(request)
                except asyncio.QueueFull:
                    self.metrics.record_rejected()
                    lane.metrics.record_rejected()
                    raise BackpressureError(
                        f"deployment {lane.name!r} queue full "
                        f"({lane.queue.maxsize} deep); retry, or "
                        "submit(wait=True) for backpressure"
                    ) from None
        except BaseException:
            if request.key:
                self._inflight_keys.pop(request.key, None)
            if request.span:
                request.span.set(rejected=True)
                request.span.finish(ok=False)
            self._request_done()
            raise
        if request.span:
            request.t_admitted = time.perf_counter()
        try:
            return await asyncio.shield(request.future)
        except asyncio.CancelledError:
            # Only shielded keyed requests keep running for duplicate
            # awaiters; an unkeyed caller's cancellation propagates.
            if not request.key and not request.future.done():
                request.future.cancel()
            raise

    def _replay_cached(self, lane: _DeploymentLane,
                       cached: InferenceResult,
                       key: str | None,
                       trace: dict | None) -> InferenceResult:
        """Answer a submission from the result cache.

        The deterministic fields (prediction, logits, trace, cycles,
        energy, model latency) replay verbatim — the fabric contract
        says they could not have come out differently — while the
        serving accounting is this request's own: zero queue wait, zero
        service, a fresh request id.  A keyed hit is also recorded in
        the idempotency ledger so later retries of the key dedup
        through either door.
        """
        request_id = self._next_id
        self._next_id += 1
        trace_id = None
        tracer = get_tracer()
        if tracer.enabled:
            span = tracer.span(
                "request", context=trace,
                attrs={"deployment": lane.name,
                       "request_id": request_id, "cached": True})
            trace_id = span.trace_id
            span.finish()
        result = InferenceResult(
            request_id=request_id,
            prediction=cached.prediction,
            logits=cached.logits,
            trace=cached.trace,
            cycles=cached.cycles,
            energy_pj=cached.energy_pj,
            model_latency_us=cached.model_latency_us,
            queue_wait_ms=0.0,
            service_ms=0.0,
            latency_ms=0.0,
            batch_size=1,
            deployment=lane.name,
            trace_id=trace_id,
        )
        for metrics in (self.metrics, lane.metrics):
            metrics.record_cached()
            metrics.record(latency_ms=0.0, queue_wait_ms=0.0,
                           service_ms=0.0, batch_size=1)
        if key:
            self._request_ledger.record(key, result)
        return result

    async def submit_many(self, images: np.ndarray,
                          wait: bool = True,
                          timeout_ms: float | None = None,
                          priority: int = 0,
                          deployment: str | int | None = None
                          ) -> list[InferenceResult]:
        """Submit a pre-formed group of images; order-preserving.

        All submissions settle before this returns; if any failed (e.g.
        ``wait=False`` backpressure rejections), the first error is
        raised *after* the siblings finished — nothing keeps running in
        the background and no result is silently dropped mid-flight.
        """
        settled = await asyncio.gather(
            *(self.submit(image, wait=wait, timeout_ms=timeout_ms,
                          priority=priority, deployment=deployment)
              for image in images),
            return_exceptions=True)
        for outcome in settled:
            if isinstance(outcome, BaseException):
                raise outcome
        return list(settled)

    # ------------------------------------------------------------------
    # Elastic serving capacity
    # ------------------------------------------------------------------
    async def add_engine_lane(self, worker_or_spec) -> str:
        """Grow serving capacity on the running server; returns the lane
        name.

        Admits the lane into the engine pool *and* releases one dispatch
        slot, so the new capacity is actually used — in-flight batches
        are capped at the live lane count, not the start-time size.
        The admission handshake (a TCP connect plus a pickled-table
        deploy, for remote lanes) runs on a worker thread so in-flight
        serving never stalls behind it.
        """
        if self._dispatch_slots is None:
            raise ServeError("server is not running (call start())")
        name = await asyncio.get_running_loop().run_in_executor(
            None, self.pool.add_lane, worker_or_spec)
        if self._dispatch_slots is None:   # stopped while admitting
            raise ServeError("server stopped during lane admission")
        self._dispatch_slots.release()
        return name

    async def remove_engine_lane(self, name: str) -> None:
        """Drain one lane out of the running server.

        Waits for a dispatch slot first (shrinking the in-flight budget
        by one), then removes the lane — its queued batches requeue on
        the survivors, an executing batch finishes normally.
        """
        if self._dispatch_slots is None:
            raise ServeError("server is not running (call start())")
        await self._dispatch_slots.acquire()
        try:
            self.pool.remove_lane(name)
        except BaseException:
            self._dispatch_slots.release()
            raise

    async def add_deployment(self, name: str, network=None,
                             deployment=None,
                             **register_kwargs) -> dict:
        """Register a deployment and serve it on the RUNNING server.

        The blue/green registration step: the model is warm-compiled
        and pushed to every live engine lane (off-loop — in-flight
        serving never stalls behind the deploy), then gets its own
        serving lane (queue, batcher, metrics, loop) — all without
        pausing traffic on existing deployments.  Returns the new
        entry's description.  Idempotent for same-content re-adds.
        """
        if self._closed:
            raise ServeError("server is not running (call start())")
        if network is not None:
            register_kwargs["network"] = network
        entry = await asyncio.get_running_loop().run_in_executor(
            None, lambda: self.pool.add_deployment(
                name, deployment, **register_kwargs))
        if self._closed:
            raise ServeError("server stopped during deployment "
                             "registration")
        if entry.name not in self._lanes:
            lane = self._build_lane(entry)
            self._lanes[entry.name] = lane
            lane.loop_task = asyncio.create_task(
                self._serve_loop(lane),
                name=f"repro-serve-loop-{lane.name}")
        return entry.describe()

    async def rollout(self, alias: str, to: str,
                      drain: bool = True) -> dict:
        """Blue/green: atomically point ``alias`` at deployment ``to``.

        The flip is atomic in the registry, so every request sees the
        old target or the new one — none see neither, none are dropped.
        Requests already queued on the old target finish there; with
        ``drain`` (default) this waits until the old lane's queue is
        empty before returning, so callers know the old model is idle
        and safe to retire.  ``to`` must already be serving (see
        :meth:`add_deployment`) — flipping to a non-serving name is
        refused with :class:`~repro.errors.RolloutError` instead of
        blackholing traffic.
        """
        if self._closed:
            raise ServeError("server is not running (call start())")
        if to not in self._lanes:
            raise RolloutError(
                f"cannot roll {alias!r} to {to!r}: target is not "
                f"serving (serving: {', '.join(self._lanes) or '(none)'}"
                "); add_deployment() it first")
        previous = self.registry.alias(alias, to)
        drained = None
        if drain and previous and previous != to:
            old = self._lanes.get(previous)
            if old is not None:
                while old.depth > 0:
                    await asyncio.sleep(0.005)
                drained = previous
        return {"alias": alias, "from": previous, "to": to,
                "drained": drained}

    def snapshot(self, deployment: str | int | None = None
                 ) -> MetricsSnapshot:
        """Metrics snapshot including the live queue depth.

        With ``deployment`` given, that model's own snapshot; otherwise
        the aggregate — which, on a multi-model server, carries every
        deployment's snapshot under ``per_deployment`` and the runtime
        fabric's scheduling counters (requeued / retries / poisoned /
        deduped, plus the result-ledger state) under ``fabric``.
        """
        if deployment is not None:
            lane = self._resolve_lane(deployment)
            return lane.metrics.snapshot(queue_depth=lane.depth)
        depth = sum(lane.depth for lane in self._lanes.values())
        per_deployment = None
        if len(self.registry) > 1:
            per_deployment = {
                lane.name: lane.metrics.snapshot(
                    queue_depth=lane.depth).to_dict()
                for lane in self._lanes.values()}
        fabric = None
        if self.pool.started:
            fabric = self.pool.group_metrics()
            fabric["ledger"] = self.pool.ledger_metrics()
            fabric["request_ledger"] = self._request_ledger.to_dict()
            fabric["result_cache"] = self.result_cache.to_dict()
        return self.metrics.snapshot(
            queue_depth=depth, worker_crashes=self.pool.worker_crashes,
            per_deployment=per_deployment, fabric=fabric)

    def _sample_registry(self) -> None:
        """Scrape-time gauge refresh (registered as a registry sampler):
        per-deployment queue depth plus the tracer's span total."""
        registry = get_registry()
        depth = registry.gauge(
            "repro_queue_depth",
            "Requests queued or waiting in the batcher, per deployment",
            labelnames=("deployment",))
        for lane in list(self._lanes.values()):
            depth.labels(deployment=lane.name).set(lane.depth)
        registry.gauge(
            "repro_spans_finished",
            "Spans recorded by the process-wide tracer",
        ).set(get_tracer().spans_finished)

    # ------------------------------------------------------------------
    # Serving internals
    # ------------------------------------------------------------------
    def _request_opened(self) -> None:
        self._open_requests += 1
        self._idle.clear()

    def _request_done(self) -> None:
        self._open_requests -= 1
        if self._open_requests <= 0:
            self._idle.set()

    def _make_expire(self, lane: _DeploymentLane):
        def expire(request: _Request) -> None:
            """Batcher hook: a request's queue-wait deadline passed."""
            self.metrics.record_timeout()
            lane.metrics.record_timeout()
            if request.key:
                # No result to ledger: a retry of this key re-executes.
                self._inflight_keys.pop(request.key, None)
            if request.span:
                request.span.set(timed_out=True)
                request.span.finish(ok=False)
            if not request.future.done():
                request.future.set_exception(RequestTimeoutError(
                    f"request {request.request_id} timed out after "
                    f"{request.timeout_ms:.0f} ms waiting for dispatch"))
            self._request_done()
        return expire

    async def _serve_loop(self, lane: _DeploymentLane) -> None:
        # In-flight batches are capped at the engine-pool size *before*
        # the next batch forms: while every engine is busy, requests
        # stay in the bounded queue (where submit() feels the
        # backpressure) instead of draining into parked dispatch tasks.
        # The slot is only acquired once this deployment actually has
        # work (wait_for_work), so an idle model holds no capacity and
        # the pool flows to whichever deployments have traffic.
        while True:
            await lane.batcher.wait_for_work()
            await self._dispatch_slots.acquire()
            try:
                # wait=False: if every request this lane was holding
                # expired while we waited for the slot, hand the slot
                # back and re-park instead of blocking on an empty
                # queue with the slot held — that would starve every
                # other deployment of the pool.
                batch = await lane.batcher.next_batch(wait=False)
            except BaseException:
                self._dispatch_slots.release()
                raise
            if batch is None:
                self._dispatch_slots.release()
                continue
            task = asyncio.create_task(self._execute(lane, batch))
            self._dispatch_tasks.add(task)
            task.add_done_callback(self._finish_dispatch)

    def _finish_dispatch(self, task: asyncio.Task) -> None:
        self._dispatch_tasks.discard(task)
        self._dispatch_slots.release()

    async def _execute(self, lane: _DeploymentLane,
                       batch: list[_Request]) -> None:
        t_dispatch = time.perf_counter()
        images = np.stack([request.image for request in batch])
        started = time.perf_counter()
        # One traced request leads the batch: the batch-level execute
        # span lives in ITS trace and its context rides down into the
        # fabric (WorkItem.trace), so the lane that runs the batch —
        # thread, forked child or remote host — appends its own span to
        # the same tree.  Sibling traced requests get their own
        # (retroactive) execute stage spans after the batch returns.
        tracer = get_tracer()
        lead = None
        exec_span = None
        batch_trace = None
        if tracer.enabled:
            lead = next((r for r in batch if r.span), None)
            if lead is not None:
                exec_span = tracer.span(
                    "execute", parent=lead.span,
                    attrs={"batch_size": len(batch),
                           "deployment": lane.name},
                    started_at=started)
                batch_trace = exec_span.context()
        try:
            if lane.replicas > 1:
                logits, traces = await self.pool.run_batch_replicated(
                    images, deployment=lane.entry.index,
                    replicas=lane.replicas, quorum=self.quorum,
                    trace=batch_trace)
            else:
                logits, traces = await self.pool.run_batch(
                    images, deployment=lane.entry.index,
                    trace=batch_trace)
        except BaseException as error:
            # Fail the whole batch but keep serving — and on
            # cancellation (stop(drain=False) tears down in-flight
            # dispatches) still resolve every future so concurrent
            # submit() callers unblock instead of hanging forever.
            if isinstance(error, ReplicaDivergenceError):
                self.metrics.record_divergence()
                lane.metrics.record_divergence()
            if exec_span is not None:
                exec_span.set(error=repr(error))
                exec_span.finish(ok=False)
            for request in batch:
                if request.key:
                    self._inflight_keys.pop(request.key, None)
                if request.span:
                    request.span.set(error=repr(error))
                    request.span.finish(ok=False)
                if not request.future.done():
                    request.future.set_exception(
                        ServeError(f"batch execution failed: {error!r}"))
                self._request_done()
            if isinstance(error, asyncio.CancelledError):
                raise
            return
        finished = time.perf_counter()
        service_ms = (finished - started) * 1e3
        lane.policy.observe(len(batch), finished - started)
        if exec_span is not None:
            exec_span.set(service_ms=service_ms)
            exec_span.finish(at=finished)
        deployment = lane.entry.deployment
        weight_bits = deployment.network.weight_bits
        for i, request in enumerate(batch):
            trace = traces[i]  # already a per-image TraceMerge
            cycles = trace.total_cycles
            queue_wait_ms = (started - request.enqueued_at) * 1e3
            latency_ms = (finished - request.enqueued_at) * 1e3
            result = InferenceResult(
                request_id=request.request_id,
                prediction=int(logits[i].argmax()),
                logits=logits[i],
                trace=trace,
                cycles=cycles,
                energy_pj=trace_energy(trace,
                                       weight_bits=weight_bits).total_pj,
                model_latency_us=cycles * deployment.config.cycle_time_us,
                queue_wait_ms=queue_wait_ms,
                service_ms=service_ms,
                latency_ms=latency_ms,
                batch_size=len(batch),
                deployment=lane.name,
                trace_id=(request.span.trace_id if request.span
                          else None),
            )
            for metrics in (self.metrics, lane.metrics):
                metrics.record(latency_ms=latency_ms,
                               queue_wait_ms=queue_wait_ms,
                               service_ms=service_ms,
                               batch_size=len(batch))
            if request.span:
                self._finish_request_trace(
                    tracer, request, result,
                    is_lead=request is lead,
                    t_dispatch=t_dispatch, started=started,
                    finished=finished, batch_size=len(batch))
            if request.digest is not None:
                self.result_cache.put(
                    lane.entry.deployment.fingerprint, request.digest,
                    result)
            if request.key:
                # Record BEFORE resolving: a duplicate racing in after
                # the future resolves must find the ledger entry.
                self._request_ledger.record(request.key, result)
                self._inflight_keys.pop(request.key, None)
            if not request.future.done():
                request.future.set_result(result)
            self._request_done()

    @staticmethod
    def _finish_request_trace(tracer, request: _Request,
                              result: InferenceResult, is_lead: bool,
                              t_dispatch: float, started: float,
                              finished: float, batch_size: int) -> None:
        """Emit one request's *contiguous* stage spans retroactively.

        The boundaries are the timestamps the serve path already
        measures — enqueue, queue admission, batch pickup, execute
        start/end, resolution — so admission + batch + dispatch +
        execute + reply sums to the root span's duration *exactly* (the
        ±5 % acceptance bound holds by construction, the slack only
        covers the caller's own clock).
        """
        root = request.span
        t_admitted = (request.t_admitted
                      if request.t_admitted is not None
                      else request.enqueued_at)
        t_done = time.perf_counter()
        tracer.span("admission", parent=root,
                    started_at=request.enqueued_at).finish(at=t_admitted)
        tracer.span("batch", parent=root,
                    started_at=t_admitted).finish(at=t_dispatch)
        tracer.span("dispatch", parent=root,
                    started_at=t_dispatch).finish(at=started)
        if not is_lead:
            # The lead request owns the live batch-level execute span
            # (with the fabric subtree); siblings get their own stage
            # marker so every traced tree stays complete on its own.
            tracer.span("execute", parent=root,
                        attrs={"batch_size": batch_size, "shared": True},
                        started_at=started).finish(at=finished)
        tracer.span("reply", parent=root,
                    started_at=finished).finish(at=t_done)
        root.set(prediction=result.prediction, cycles=result.cycles,
                 energy_pj=result.energy_pj, batch_size=batch_size,
                 queue_wait_ms=result.queue_wait_ms,
                 service_ms=result.service_ms)
        root.finish(at=t_done)

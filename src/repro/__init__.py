"""repro — reproduction of "A Resource-efficient Spiking Neural Network
Accelerator Supporting Emerging Neural Encoding" (DATE 2022).

Subpackages
-----------
``repro.encoding``
    Radix (MSB-first binary) and rate spike-train encodings, quantization.
``repro.nn``
    Numpy ANN substrate with hand-written backprop (training side).
``repro.data``
    Synthetic MNIST / CIFAR-100 generators (offline dataset stand-ins).
``repro.models``
    LeNet-5, VGG-11, and the Fang/Ju comparison topologies.
``repro.snn``
    ANN-to-SNN conversion and functional radix / rate simulation.
``repro.core``
    The accelerator itself: functional hardware model, compiler, and
    latency / power / resource estimation.
``repro.baselines``
    Published comparison numbers and ablation cost models.
``repro.harness``
    Experiment runners regenerating every table and figure of the paper.
``repro.serve``
    Async inference serving: request coalescing, micro-batching,
    latency SLOs, warm engine pools and load generation.
"""

__version__ = "1.0.0"

from repro import errors

__all__ = ["errors", "__version__"]

"""Fault-injection sensitivity analysis.

Hardware accelerators care how gracefully accuracy degrades when bits go
wrong — configuration upsets in BRAM weight memories are the classic FPGA
failure mode.  This module flips random bits in the quantized weight
tensors of a converted SNN and measures the accuracy drop, producing the
robustness curve for the failure-injection benchmark.

The injector operates on the *deployed* representation (signed
``weight_bits``-bit integers), so a single flip changes a weight by a
power of two — exactly what a BRAM upset would do.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dataclass_replace

import numpy as np

from repro.data.dataset import Dataset
from repro.errors import SimulationError
from repro.snn.model import SNNModel
from repro.snn.spec import QuantizedNetwork

__all__ = ["FaultInjectionResult", "flip_weight_bits", "sensitivity_curve"]


@dataclass(frozen=True)
class FaultInjectionResult:
    """Accuracy under one fault rate."""

    flip_fraction: float
    num_flips: int
    accuracy: float


def _flip_in_tensor(weights: np.ndarray, positions: np.ndarray,
                    bits: np.ndarray, weight_bits: int) -> np.ndarray:
    """Flip ``bits[i]`` of the two's-complement value at ``positions[i]``."""
    flat = weights.reshape(-1).copy()
    mask = (1 << weight_bits) - 1
    encoded = flat[positions] & mask          # two's complement view
    encoded ^= (1 << bits).astype(flat.dtype)
    # Sign-extend back to int64.
    sign_bit = 1 << (weight_bits - 1)
    decoded = (encoded ^ sign_bit) - sign_bit
    flat[positions] = decoded
    return flat.reshape(weights.shape)


def flip_weight_bits(
    network: QuantizedNetwork,
    flip_fraction: float,
    seed: int = 0,
) -> tuple[QuantizedNetwork, int]:
    """Return a copy of ``network`` with random weight bits flipped.

    ``flip_fraction`` is the fraction of all weight *bits* that flip.
    """
    if not 0.0 <= flip_fraction <= 1.0:
        raise SimulationError(
            f"flip fraction must be in [0, 1], got {flip_fraction}")
    rng = np.random.default_rng(seed)
    wb = network.weight_bits
    total_flips = 0
    new_layers = []
    for spec in network.layers:
        if spec.kind not in ("conv", "linear"):
            new_layers.append(spec)
            continue
        total_bits = spec.weights.size * wb
        n_flips = int(round(total_bits * flip_fraction))
        if n_flips == 0:
            new_layers.append(spec)
            continue
        slots = rng.integers(0, total_bits, size=n_flips)
        positions = slots // wb
        bits = slots % wb
        flipped = _flip_in_tensor(
            spec.weights.astype(np.int64), positions, bits, wb)
        new_layers.append(dataclass_replace(spec, weights=flipped))
        total_flips += n_flips
    mutated = QuantizedNetwork(
        layers=tuple(new_layers), num_steps=network.num_steps,
        weight_bits=wb, input_shape=network.input_shape,
        num_classes=network.num_classes)
    return mutated, total_flips


def sensitivity_curve(
    snn: SNNModel,
    dataset: Dataset,
    flip_fractions: tuple = (0.0, 0.001, 0.005, 0.01, 0.05, 0.1),
    seed: int = 0,
    max_samples: int = 500,
) -> list[FaultInjectionResult]:
    """Accuracy vs weight-bit flip rate."""
    subset = dataset.subset(max_samples)
    results = []
    for fraction in flip_fractions:
        mutated, n_flips = flip_weight_bits(snn.network, fraction, seed)
        accuracy = SNNModel(mutated).accuracy(subset)
        results.append(FaultInjectionResult(
            flip_fraction=fraction, num_flips=n_flips, accuracy=accuracy))
    return results

"""Analysis extensions: fault injection, spike sparsity, design space."""

from repro.analysis.pareto import DesignPoint, pareto_front, sweep_design_space
from repro.analysis.sensitivity import (
    FaultInjectionResult,
    flip_weight_bits,
    sensitivity_curve,
)
from repro.analysis.sparsity import (
    LayerSparsity,
    SparsityReport,
    measure_sparsity,
)

__all__ = [
    "DesignPoint",
    "FaultInjectionResult",
    "LayerSparsity",
    "SparsityReport",
    "flip_weight_bits",
    "measure_sparsity",
    "pareto_front",
    "sensitivity_curve",
    "sweep_design_space",
]

"""Design-space exploration with Pareto-front extraction.

Generalizes the paper's Table II reasoning ("four convolution units ...
yielded one of the best latency-power-resource ratio") into a tool: sweep
unit count × clock × spike-train length, evaluate latency / power / LUTs
with the calibrated models, and extract the Pareto-optimal
configurations under those three objectives (all minimized; accuracy is
held fixed by the choice of T upstream).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import AcceleratorConfig
from repro.core.latency import LatencyModel
from repro.core.power import PowerModel
from repro.core.resources import ResourceModel
from repro.snn.spec import QuantizedNetwork

__all__ = ["DesignPoint", "sweep_design_space", "pareto_front"]


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration."""

    num_units: int
    clock_mhz: float
    latency_us: float
    power_w: float
    luts: int

    @property
    def energy_mj(self) -> float:
        return self.power_w * self.latency_us * 1e-3

    def objectives(self) -> tuple[float, float, float]:
        """(latency, power, LUTs) — all minimized."""
        return (self.latency_us, self.power_w, float(self.luts))

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance: no worse anywhere, better somewhere."""
        mine, theirs = self.objectives(), other.objectives()
        return (all(m <= t for m, t in zip(mine, theirs))
                and any(m < t for m, t in zip(mine, theirs)))


def sweep_design_space(
    network: QuantizedNetwork,
    unit_counts: tuple = (1, 2, 4, 8, 16),
    clocks_mhz: tuple = (100.0, 150.0, 200.0),
    weights_on_chip: bool = True,
    base_config: AcceleratorConfig | None = None,
) -> list[DesignPoint]:
    """Evaluate every (units, clock) combination for a network."""
    base = base_config or AcceleratorConfig.for_network(network)
    points = []
    for units in unit_counts:
        for clock in clocks_mhz:
            config = base.with_units(units).with_clock(clock)
            latency = LatencyModel(config).latency_us(
                network, weights_on_chip)
            power = PowerModel(config).average_power_w(
                dram_active=not weights_on_chip)
            luts = ResourceModel(config).estimate(weights_on_chip).luts
            points.append(DesignPoint(
                num_units=units, clock_mhz=clock, latency_us=latency,
                power_w=power, luts=luts))
    return points


def pareto_front(points: list[DesignPoint]) -> list[DesignPoint]:
    """The non-dominated subset, sorted by latency."""
    front = [p for p in points
             if not any(q.dominates(p) for q in points if q is not p)]
    return sorted(front, key=lambda p: p.latency_us)

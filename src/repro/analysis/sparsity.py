"""Spike-sparsity analysis.

The accelerator's adders only fire on incoming spikes (the multiplexer in
Fig. 2 feeds zero otherwise), so dynamic compute energy tracks the spike
density of the network.  This module measures per-layer spike rates of a
converted SNN over a dataset and relates them to the adder activity the
functional simulator would see — the quantitative side of the paper's
"low-power multiplication-free computing" claim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.snn.model import SNNModel

__all__ = ["LayerSparsity", "SparsityReport", "measure_sparsity"]


@dataclass(frozen=True)
class LayerSparsity:
    """Spike statistics of one layer's output train."""

    layer_index: int
    num_neurons: int
    mean_spikes_per_sample: float
    spike_rate: float  # spikes / (neurons * T), in [0, 1]


@dataclass(frozen=True)
class SparsityReport:
    """Network-wide spike statistics."""

    num_steps: int
    num_samples: int
    layers: tuple

    @property
    def overall_rate(self) -> float:
        """Network-wide fraction of (neuron, step) slots carrying a spike."""
        slots = sum(l.num_neurons for l in self.layers) * self.num_steps
        spikes = sum(l.mean_spikes_per_sample for l in self.layers)
        return spikes / slots if slots else 0.0

    def densest_layer(self) -> LayerSparsity:
        return max(self.layers, key=lambda l: l.spike_rate)


def measure_sparsity(
    snn: SNNModel,
    dataset: Dataset,
    max_samples: int = 64,
    batch_size: int = 16,
) -> SparsityReport:
    """Average per-layer spike rates over (a subset of) a dataset."""
    subset = dataset.subset(max_samples)
    totals: list[float] = []
    neurons: list[int] = []
    count = 0
    for images, _ in subset.batches(batch_size):
        _, stats = snn.forward_spikes(images, collect_stats=True)
        per_layer = np.array(stats.spikes_per_layer, dtype=np.float64)
        per_layer /= images.shape[0]
        if not totals:
            totals = per_layer.tolist()
            neurons = [n // images.shape[0]
                       for n in stats.neurons_per_layer]
        else:
            totals = [a + b for a, b in zip(totals, per_layer)]
        count += 1
    means = [t / max(count, 1) for t in totals]
    layers = tuple(
        LayerSparsity(
            layer_index=i,
            num_neurons=neurons[i],
            mean_spikes_per_sample=means[i],
            spike_rate=means[i] / (neurons[i] * snn.num_steps),
        )
        for i in range(len(means))
    )
    return SparsityReport(num_steps=snn.num_steps,
                          num_samples=len(subset), layers=layers)

"""Remote engine workers: the fabric over JSON-lines TCP.

A host joins the fabric two ways:

* **Listen** — run ``repro worker --listen host:port``
  (:class:`WorkerServer`); a driver attaches a :class:`RemoteWorker`
  lane to it.
* **Join** — run ``repro worker --join host:port`` (:func:`join_fabric`)
  against a driver whose :class:`~repro.runtime.WorkerGroup` opened a
  :class:`GroupListener`: the connection is initiated *by the worker*,
  which then serves the same protocol over it.  This is how a lane
  enters a sweep or a serving pool **mid-run** — the listener admits the
  socket as a new lane via ``WorkerGroup.add_lane``.

The protocol starts as newline-delimited JSON (``repro.runtime.codec``),
one request per line, answered in order::

    {"op": "hello", "frames": ["binary"]}  -> {"ok": true, "frames": "..."}
    {"op": "ping"}                         -> {"ok": true, "pid": ...}
    {"op": "deploy", "blob": "<b64>"}      -> {"ok": true, "deployments": N}
    {"op": "execute", "item_id": 7,
     "deployment": 0, "images": {...}}     -> {"ok": true, "item_id": 7,
                                               "logits": {...},
                                               "traces": [...],
                                               "elapsed_s": ..., "pid": ...}
    {"op": "execute_many",
     "items": [{"item_id", "deployment"},
               ...], "images:0": {...}}    -> {"ok": true, "results": [...],
                                               "logits:0": {...}, ...}

``hello`` negotiates the framing: a client that offers ``"binary"`` to a
server that allows it flips **both directions** of the connection to the
zero-copy binary frames of :func:`repro.runtime.codec.encode_frame`
(arrays as raw buffers, no base64) right after the JSON hello reply.  An
old server answers ``hello`` as an unknown op, an old client never sends
it — either peer falls back to JSON lines, so mixed-version fabrics keep
working.  ``execute_many`` ships one whole dispatch chunk per frame to
amortize framing and round-trips.

Task-level failures answer ``{"ok": false, "error": {"type", "message"}}``
and keep the connection; a known type (``DeploymentError``,
``FabricAuthError``) is resurrected client-side as the same typed
exception.  Transport-level failures (closed socket, blown timeout)
surface as :class:`~repro.errors.WorkerCrashError` so the group evicts
the lane and requeues its work.

Results are bit-identical to a local run: images and logits cross the
wire through the exact array codec, traces as integer counters.  The
``deploy`` blob is pickled — **only attach workers you trust, over
networks you trust**; this is a lab/cluster fabric, not a public API.
An optional shared secret softens the caveat: a server started with a
``token`` rejects every payload that does not carry the matching auth
proof (:func:`~repro.runtime.codec.attach_token`) *before* unpickling
anything, and the join handshake is verified in both directions.
"""

from __future__ import annotations

import json
import os
import random
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.engine.trace import TraceMerge
from repro.errors import (
    CodecError,
    DeploymentError,
    FabricAuthError,
    RemoteExecutionError,
    WorkerCrashError,
)
from repro.runtime.codec import (
    attach_token,
    check_token,
    decode_array,
    decode_blob,
    encode_array,
    encode_blob,
    encode_frame,
    encode_line,
    read_frame,
)
from repro.runtime.work import (Deployment, WorkItem, WorkResult,
                                chunk_timeout_s, execute_item)
from repro.runtime.workers import Worker

__all__ = ["GroupListener", "JoinStats", "RemoteWorker", "WorkerServer",
           "join_fabric"]

#: Error types a structured worker reply resurrects client-side;
#: anything else degrades to :class:`RemoteExecutionError`.
_REMOTE_ERROR_TYPES = {
    "DeploymentError": DeploymentError,
    "FabricAuthError": FabricAuthError,
}


def _error_reply(error: Exception) -> dict:
    return {"ok": False,
            "error": {"type": type(error).__name__,
                      "message": str(error)}}


def _configure_socket(sock: socket.socket) -> None:
    """Keepalive so a host that vanished without a FIN/RST (power loss,
    partition) surfaces as an OSError in about a minute instead of
    blocking an untimed readline forever."""
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
    for option, value in (("TCP_KEEPIDLE", 30),
                          ("TCP_KEEPINTVL", 10),
                          ("TCP_KEEPCNT", 3)):
        if hasattr(socket, option):
            sock.setsockopt(socket.IPPROTO_TCP,
                            getattr(socket, option), value)


# ----------------------------------------------------------------------
# Worker-side protocol core — shared by --listen and --join
# ----------------------------------------------------------------------
def _as_array(value) -> np.ndarray:
    """An array field as it arrives: raw ndarray (binary frames) or the
    base64 envelope of the JSON framing."""
    if isinstance(value, np.ndarray):
        return value
    return decode_array(value)


def _inline_arrays(payload: dict, arrays: dict) -> dict:
    """Fold arrays into a JSON-lines payload as base64 envelopes."""
    if not arrays:
        return payload
    merged = dict(payload)
    for key, array in arrays.items():
        merged[key] = encode_array(array)
    return merged


def _execute_one(deployments: list[Deployment], item_id, deployment,
                 images, trace: dict | None = None) -> WorkResult:
    item = WorkItem(item_id=int(item_id), deployment=int(deployment),
                    images=_as_array(images), trace=trace)
    if not 0 <= item.deployment < len(deployments):
        raise DeploymentError(
            f"deployment {item.deployment} is not registered "
            f"({len(deployments)} deployed); send a 'deploy' "
            "request first")
    return execute_item(deployments, item)


def _handle_request(deployments: list[Deployment], message: dict,
                    token: str | None = None,
                    state: dict | None = None,
                    frames: str = "binary",
                    window: int = 8) -> tuple[dict, dict]:
    """One decoded request -> ``(reply payload, reply arrays)``.

    ``state`` is the connection's mutable framing state (a ``hello``
    that lands on binary flips it); ``frames="json"`` pins the
    connection to JSON lines however eagerly the client offers.
    ``window`` is the in-flight chunk cap the hello reply advertises —
    how many pipelined chunks a driver may keep on the wire toward this
    host (``repro worker --window``; 1 forces stop-and-wait).
    """
    if not check_token(message, token):
        # Reject *before* touching any pickled blob the payload carries.
        raise FabricAuthError(
            "payload rejected: missing or invalid fabric token")
    op = message.get("op")
    if op == "hello":
        offered = message.get("frames") or []
        chosen = ("binary" if frames == "binary"
                  and isinstance(offered, list) and "binary" in offered
                  else "json")
        if chosen == "binary" and state is not None:
            state["binary"] = True
        return {"ok": True, "frames": chosen, "pid": os.getpid(),
                "window": max(1, int(window))}, {}
    if op == "ping":
        return {"ok": True, "pid": os.getpid(),
                "deployments": len(deployments)}, {}
    if op == "deploy":
        table = decode_blob(message["blob"])
        deployments[:] = list(table)
        return {"ok": True, "deployments": len(deployments)}, {}
    if op == "execute":
        result = _execute_one(deployments, message["item_id"],
                              message["deployment"], message["images"],
                              trace=message.get("trace"))
        return {
            "ok": True,
            "item_id": result.item_id,
            "traces": [t.to_dict() for t in result.image_traces],
            "elapsed_s": result.elapsed_s,
            "pid": result.pid,
            "spans": result.spans,
        }, {"logits": result.logits}
    if op == "execute_many":
        specs = message.get("items")
        if not isinstance(specs, list):
            raise ValueError("execute_many needs an 'items' list")
        results: list[dict] = []
        arrays: dict[str, np.ndarray] = {}
        for position, spec in enumerate(specs):
            try:
                result = _execute_one(deployments, spec["item_id"],
                                      spec["deployment"],
                                      message[f"images:{position}"],
                                      trace=spec.get("trace"))
            except Exception as error:  # noqa: BLE001 — per-item
                # failure inside a healthy chunk: the sibling items'
                # results must still come back.
                results.append(_error_reply(error))
                continue
            results.append({
                "ok": True,
                "item_id": result.item_id,
                "traces": [t.to_dict() for t in result.image_traces],
                "elapsed_s": result.elapsed_s,
                "pid": result.pid,
                "spans": result.spans,
            })
            arrays[f"logits:{position}"] = result.logits
        return {"ok": True, "results": results}, arrays
    raise ValueError(f"unknown op {op!r}")


def _serve_requests(conn: socket.socket, reader,
                    token: str | None = None,
                    frames: str = "binary",
                    binary: bool = False,
                    chaos=None, lane: str = "conn",
                    window: int = 8) -> None:
    """Answer requests on one connection until the peer goes away.

    Every request must answer: an unpicklable blob, a version-skewed or
    garbage frame, or a bad token is a *task* failure on a healthy host
    — killing the connection would make the driver misread it as a lane
    crash and requeue the item elsewhere.  The one exception is a
    corrupt **binary** frame: with length-prefixed framing there is no
    newline to resynchronize on, so the server answers once and hangs
    up.  ``frames="json"`` refuses binary negotiation outright;
    ``binary=True`` starts the connection already in binary mode (the
    join handshake negotiates before handing the socket over).
    ``chaos`` is an optional
    :class:`~repro.runtime.chaos.ChaosPolicy` consulted after each
    answered request — a ``server_conn`` hangup fault closes the
    connection so the driver sees a vanished host.
    """
    deployments: list[Deployment] = []
    state = {"binary": binary}
    while True:
        if state["binary"]:
            try:
                decoded = read_frame(reader)
            except CodecError as error:
                try:
                    conn.sendall(encode_frame(_error_reply(error)))
                except OSError:
                    pass
                return
            if decoded is None:
                return
            message, in_arrays = decoded
            message = dict(message)
            message.update(in_arrays)
        else:
            line = reader.readline()
            if not line:
                return
            try:
                message = json.loads(line)
                if not isinstance(message, dict):
                    raise ValueError("request must be a JSON object")
            except ValueError as error:
                conn.sendall(encode_line(_error_reply(error)))
                continue
        was_binary = state["binary"]
        try:
            reply, out_arrays = _handle_request(
                deployments, message, token, state=state, frames=frames,
                window=window)
        except Exception as error:  # noqa: BLE001 — see docstring
            reply, out_arrays = _error_reply(error), {}
        # A hello that negotiated binary still answers on the framing it
        # arrived on; everything after flows as binary frames.
        if was_binary:
            conn.sendall(encode_frame(reply, out_arrays))
        else:
            conn.sendall(encode_line(_inline_arrays(reply, out_arrays)))
        if chaos is not None and chaos.server_hangup(lane):
            return  # injected hangup: the reply landed, then we vanish


# ----------------------------------------------------------------------
# Server side — what `repro worker --listen` runs
# ----------------------------------------------------------------------
class WorkerServer:
    """A TCP engine worker: accepts connections, executes work items.

    Engines are built lazily per deployment through the process-wide
    warm cache, so repeated sweeps against the same worker recompile
    nothing.  Each connection carries its own deployment table (drivers
    deploy right after connecting); one handler thread per connection
    keeps the protocol strictly request/response ordered.  With a
    ``token``, payloads without the matching auth proof are rejected
    before any blob is unpickled.  ``frames`` selects the best framing
    this server will negotiate: ``"binary"`` (default) accepts the
    zero-copy binary frames, ``"json"`` pins every connection to the v1
    JSON-lines protocol (interop testing, ``repro worker --frames
    json``).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 token: str | None = None,
                 frames: str = "binary",
                 chaos=None,
                 window: int = 8) -> None:
        if frames not in ("binary", "json"):
            raise ValueError(f"frames must be 'binary' or 'json', "
                             f"got {frames!r}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.host = host
        self.port = port
        self.token = token
        self.frames = frames
        #: In-flight chunk cap advertised in the hello reply: how many
        #: pipelined chunks a driver may keep on the wire toward this
        #: host (``repro worker --window``; 1 forces stop-and-wait).
        self.window = window
        #: Optional ChaosPolicy: injected server_conn hangups per reply.
        self.chaos = chaos
        self._sock: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        # Live handler threads and their sockets, pruned as connections
        # close — the worker is a long-lived daemon, so per-connection
        # state must not accumulate.  Guarded by _conn_lock (accept
        # thread adds, handlers remove, close() snapshots).
        self._handlers: set[threading.Thread] = set()
        self._connections: set[socket.socket] = set()
        self._conn_lock = threading.Lock()
        self._closing = threading.Event()

    @property
    def running(self) -> bool:
        return self._sock is not None

    def start(self) -> "WorkerServer":
        """Bind and begin accepting; ``port=0`` picks an ephemeral port."""
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.host, self.port))
        sock.listen()
        self.port = sock.getsockname()[1]
        self._sock = sock
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-worker-accept",
            daemon=True)
        self._accept_thread.start()
        return self

    def __enter__(self) -> "WorkerServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return  # socket closed by close()
            handler = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="repro-worker-conn", daemon=True)
            with self._conn_lock:
                self._connections.add(conn)
                self._handlers.add(handler)
            handler.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            with conn, conn.makefile("rb") as reader:
                _serve_requests(conn, reader, token=self.token,
                                frames=self.frames, chaos=self.chaos,
                                lane=f"{self.host}:{self.port}",
                                window=self.window)
        except (ConnectionError, OSError):
            pass  # peer vanished; nothing to answer
        finally:
            with self._conn_lock:
                self._connections.discard(conn)
                self._handlers.discard(threading.current_thread())

    def close(self) -> None:
        self._closing.set()
        if self._sock is not None:
            # shutdown() before close(): closing an fd does NOT wake a
            # thread blocked in accept() on it (the kernel socket stays
            # in LISTEN and keeps taking connections); shutdown does.
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        # Drop live connections too, so attached lanes observe the death
        # promptly (heartbeat probes must fail, not hang).
        with self._conn_lock:
            connections = list(self._connections)
            handlers = list(self._handlers)
            self._connections.clear()
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=1.0)
            self._accept_thread = None
        for handler in handlers:
            handler.join(timeout=1.0)


# ----------------------------------------------------------------------
# Joining side — what `repro worker --join` runs
# ----------------------------------------------------------------------
@dataclass
class JoinStats:
    """What a :func:`join_fabric` daemon did, surfaced to the caller."""

    attempts: int = 0        # dial attempts (successful or not)
    connects: int = 0        # handshakes that became serve sessions
    disconnects: int = 0     # sessions ended by the group going away

    def to_dict(self) -> dict:
        return {"attempts": self.attempts, "connects": self.connects,
                "disconnects": self.disconnects}


def _backoff_delay(base: float, streak: int, cap: float) -> float:
    """Jittered exponential backoff: ``base * 2^(streak-1)`` capped at
    ``cap``, scaled by a uniform jitter in [0.5, 1.0) so a fleet of
    daemons losing one driver does not re-dial in lockstep."""
    delay = min(cap, base * (2 ** min(max(streak - 1, 0), 16)))
    return delay * (0.5 + random.random() * 0.5)


def join_fabric(
    host: str,
    port: int,
    token: str | None = None,
    name: str | None = None,
    retry_s: float | None = None,
    stop_event: threading.Event | None = None,
    connect_timeout_s: float = 5.0,
    frames: str = "binary",
    max_retry_s: float = 30.0,
    window: int = 8,
) -> JoinStats:
    """Connect out to a live group's :class:`GroupListener` and serve.

    The reverse of ``--listen``: the *worker* dials the driver, proves
    the shared ``token`` in a ``join`` hello (and verifies the group's
    counter-proof), and then answers deploy/execute requests over the
    same socket until the group goes away.  With ``retry_s`` the worker
    keeps re-dialing — before the listener exists and again after the
    group stops — so a fleet of ``repro worker --join`` daemons finds
    every run that opens a listener.  Consecutive failed dials back off
    exponentially from ``retry_s`` up to ``max_retry_s`` with jitter
    (see :func:`_backoff_delay`); a session that actually served resets
    the backoff, so a briefly-restarting driver is re-joined at the base
    delay while a gone-for-good one is probed ever more lazily.  A
    failed handshake raises :class:`~repro.errors.FabricAuthError`
    immediately (a wrong token never heals by retrying).
    ``frames="json"`` withholds the binary offer, pinning the connection
    to JSON lines.  Returns a :class:`JoinStats` with dial/serve/
    disconnect counts once the loop exits.
    """
    if frames not in ("binary", "json"):
        raise ValueError(f"frames must be 'binary' or 'json', "
                         f"got {frames!r}")
    worker_name = name or f"{socket.gethostname()}:{os.getpid()}"
    stats = JoinStats()
    streak = 0               # consecutive failures since the last serve
    while True:
        if stop_event is not None and stop_event.is_set():
            return stats
        stats.attempts += 1
        try:
            sock = socket.create_connection((host, port),
                                            timeout=connect_timeout_s)
        except OSError:
            if retry_s is None:
                raise WorkerCrashError(
                    f"cannot reach group listener {host}:{port} "
                    f"(attempt {stats.attempts})") from None
            streak += 1
            delay = _backoff_delay(retry_s, streak, max_retry_s)
            if stop_event is not None:
                if stop_event.wait(delay):
                    return stats
            else:
                time.sleep(delay)
            continue
        try:
            _configure_socket(sock)
            sock.settimeout(connect_timeout_s)
            sock.sendall(encode_line(attach_token(
                {"op": "join", "name": worker_name,
                 "frames": ["binary"] if frames == "binary" else [],
                 "window": max(1, int(window))},
                token)))
            reader = sock.makefile("rb")
            line = reader.readline()
            reply = json.loads(line) if line else {}
            if not reply.get("ok") or not check_token(reply, token):
                error = (reply.get("error") or {}).get(
                    "message", "group refused the join handshake")
                raise FabricAuthError(error)
            sock.settimeout(None)
            stats.connects += 1
            streak = 0       # a real session: back to the base delay
            # The handshake doubles as the framing negotiation: an old
            # group's reply has no "frames" field -> JSON lines.
            _serve_requests(sock, reader,
                            binary=reply.get("frames") == "binary",
                            window=window)
            # Clean EOF: the group hung up (run finished or driver
            # stopped) — counted the same as a mid-serve drop.
            stats.disconnects += 1
        except (ConnectionError, OSError):
            # The group went away MID-serve (reset, partition, driver
            # killed): record the disconnect and let the retry loop
            # decide — the explicit path the old silent fall-through
            # used to hide.
            stats.disconnects += 1
            streak += 1
        finally:
            try:
                sock.close()
            except OSError:
                pass
        if retry_s is None:
            return stats
        delay = _backoff_delay(retry_s, streak, max_retry_s)
        if stop_event is not None:
            if stop_event.wait(delay):
                return stats
        else:
            time.sleep(delay)


class GroupListener:
    """Admits ``repro worker --join`` hosts into a live :class:`WorkerGroup`.

    Owned by whoever owns the group (the sweep driver's ``accept=``
    knob, or any caller): each accepted connection performs the join
    handshake (token checked both ways) and, on success, becomes a
    :class:`RemoteWorker` lane via ``group.add_lane`` — from that moment
    it is a full fabric citizen: it steals work, answers heartbeats, and
    its eviction requeues exactly like any other lane.
    """

    def __init__(self, group, host: str = "127.0.0.1", port: int = 0,
                 token: str | None = None,
                 handshake_timeout_s: float = 5.0,
                 frames: str = "binary") -> None:
        self.group = group
        self.host = host
        self.port = port
        self.token = token
        self.frames = frames
        self.handshake_timeout_s = handshake_timeout_s
        self.joined: list[str] = []          # lane names, admission order
        self._sock: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._closing = threading.Event()

    @property
    def running(self) -> bool:
        return self._sock is not None

    def start(self) -> "GroupListener":
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.host, self.port))
        sock.listen()
        self.port = sock.getsockname()[1]
        self._sock = sock
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-group-listener",
            daemon=True)
        self._accept_thread.start()
        return self

    def __enter__(self) -> "GroupListener":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                conn, peer = self._sock.accept()
            except OSError:
                return  # socket closed by close()
            try:
                self._admit(conn, peer)
            except Exception:  # noqa: BLE001 — a bad joiner must not
                # kill the accept loop; the group keeps running on its
                # existing lanes.
                try:
                    conn.close()
                except OSError:
                    pass

    def _admit(self, conn: socket.socket, peer) -> None:
        """Handshake one joiner and hand its socket to the group."""
        conn.settimeout(self.handshake_timeout_s)
        reader = conn.makefile("rb")
        hello = json.loads(reader.readline() or b"null")
        if (not isinstance(hello, dict) or hello.get("op") != "join"
                or not check_token(hello, self.token)):
            conn.sendall(encode_line(_error_reply(FabricAuthError(
                "join rejected: missing or invalid fabric token"))))
            reader.close()
            conn.close()
            return
        name = str(hello.get("name") or f"joined@{peer[0]}:{peer[1]}")
        offered = hello.get("frames") or []
        chosen = ("binary" if self.frames == "binary"
                  and isinstance(offered, list) and "binary" in offered
                  else "json")
        conn.sendall(encode_line(attach_token(
            {"ok": True, "name": name, "frames": chosen}, self.token)))
        conn.settimeout(None)
        _configure_socket(conn)
        worker = RemoteWorker.from_socket(conn, reader, name=name,
                                          binary=chosen == "binary")
        # The joiner's hello caps the in-flight window toward it; an
        # old joiner advertises nothing and keeps the client-side cap.
        advertised = hello.get("window")
        if advertised is not None:
            try:
                worker.pipeline_depth = max(
                    1, min(_MAX_REMOTE_WINDOW, int(advertised)))
            except (TypeError, ValueError):
                pass
        try:
            lane_name = self.group.add_lane(worker)
        except Exception:
            worker.close()
            raise
        self.joined.append(lane_name)

    def close(self) -> None:
        self._closing.set()
        if self._sock is not None:
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=1.0)
            self._accept_thread = None


# ----------------------------------------------------------------------
# Client side — the lane a WorkerGroup schedules onto
# ----------------------------------------------------------------------
#: Most chunks a remote lane keeps on the wire at once.  The server
#: answers strictly in order per connection, so this is purely a
#: client-side credit cap; the hello negotiation can lower it per lane.
_MAX_REMOTE_WINDOW = 8


@dataclass
class _RemoteFlight:
    """One chunk on the wire awaiting its (in-order) reply."""

    items: list
    spans: dict = field(default_factory=dict)
    deadline: float | None = None


class RemoteWorker(Worker):
    """One fabric lane backed by a :class:`WorkerServer` connection.

    The protocol answers requests strictly in send order on a
    connection, so the lane pipelines: :meth:`send_chunk` puts a chunk
    on the wire without waiting and :meth:`collect_chunk` reads the
    oldest outstanding reply — chunk N+1 is encoded and in flight while
    the server computes chunk N.  ``pipeline_depth`` starts at the
    client cap and is lowered to whatever the server's hello advertises.
    """

    kind = "remote"

    def __init__(self, host: str, port: int, name: str | None = None,
                 connect_timeout_s: float = 5.0,
                 token: str | None = None,
                 frames: str = "binary") -> None:
        if frames not in ("binary", "json"):
            raise ValueError(f"frames must be 'binary' or 'json', "
                             f"got {frames!r}")
        super().__init__(name or f"remote@{host}:{port}")
        self.host = host
        self.port = port
        self.connect_timeout_s = connect_timeout_s
        self.token = token
        #: Best framing to negotiate ("binary") or "json" to skip the
        #: hello and speak the v1 protocol (old servers, interop tests).
        self.frames = frames
        #: Whether THIS connection negotiated binary frames.
        self.binary = False
        self.pipeline_depth = _MAX_REMOTE_WINDOW
        self._sock: socket.socket | None = None
        self._reader = None
        self._outstanding: deque[_RemoteFlight] = deque()
        # Serializes the request/response exchange: the group's monitor
        # may ping while the dispatcher thread owns the socket.  The
        # condition lets a whole-exchange request (deploy, negotiate)
        # wait for the in-flight window to drain — injecting one
        # between a pipelined send and its collect would desequence the
        # strictly-ordered replies.
        self._io_lock = threading.Lock()
        self._io_cond = threading.Condition(self._io_lock)

    @classmethod
    def from_socket(cls, sock: socket.socket, reader, name: str,
                    binary: bool = False) -> "RemoteWorker":
        """Wrap an already-connected socket (a joined host) as a lane.

        The peer initiated this connection, so the lane cannot re-dial
        it after a drop — ``restartable`` is False and probation is
        skipped; a recovered host simply joins again.  ``binary``
        records the framing the join handshake negotiated.
        """
        try:
            host, port = sock.getpeername()[:2]
        except OSError:
            host, port = "joined", 0
        worker = cls(host, int(port), name=name)
        worker._sock = sock
        worker._reader = reader
        worker.binary = binary
        worker.restartable = False
        return worker

    def start(self) -> None:
        if self._sock is not None:
            return  # pre-connected (joined) lane
        if not self.restartable:
            raise WorkerCrashError(
                f"worker {self.name!r} joined over its own connection "
                "and cannot be re-dialed")
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout_s)
            # An execute without a per-item timeout blocks in readline;
            # keepalive bounds how long a silently vanished host can
            # stall it (see _configure_socket).
            _configure_socket(self._sock)
            self._reader = self._sock.makefile("rb")
        except OSError as error:
            raise WorkerCrashError(
                f"cannot reach worker {self.host}:{self.port}: "
                f"{error}") from error
        # A fresh connection re-negotiates the window from the cap (the
        # previous server's advertisement died with the old socket).
        self.pipeline_depth = _MAX_REMOTE_WINDOW
        if self.frames == "binary":
            self._negotiate()

    def _negotiate(self) -> None:
        """Offer binary frames; any refusal falls back to JSON lines.

        An old server answers ``hello`` as an unknown op
        (``RemoteExecutionError``) and a token mismatch answers
        ``FabricAuthError`` — both leave the lane on the v1 framing (the
        auth failure resurfaces on ``deploy``, where the group already
        knows how to degrade it).  Only a dead connection propagates.
        """
        with self._io_lock:
            try:
                reply = self._request_locked(
                    {"op": "hello", "frames": ["binary"]},
                    timeout_s=self.connect_timeout_s)
            except (RemoteExecutionError, FabricAuthError):
                self.binary = False
                return
            self.binary = reply.get("frames") == "binary"
            advertised = reply.get("window")
            if advertised is not None:
                # The server caps how many chunks may be in flight
                # toward it (``repro worker --window``); an old server
                # advertises nothing and keeps the client cap.
                self.pipeline_depth = max(1, min(
                    self.pipeline_depth, int(advertised)))

    def _request(self, payload: dict,
                 timeout_s: float | None = None,
                 arrays: dict | None = None) -> dict:
        with self._io_cond:
            # Replies are strictly ordered per connection: a full
            # exchange must wait until every pipelined chunk has been
            # collected, else its read would consume a chunk reply.
            # The timed wait doubles as a poll for close() clearing the
            # window without holding the lock.
            while self._outstanding:
                self._io_cond.wait(timeout=0.1)
            return self._request_locked(payload, timeout_s, arrays)

    def _request_locked(self, payload: dict,
                        timeout_s: float | None = None,
                        arrays: dict | None = None) -> dict:
        """One exchange; caller must hold ``_io_lock``.

        ``arrays`` travel as raw buffers on a binary lane or inline
        base64 envelopes on a JSON lane; either way the reply comes back
        as one dict whose array fields :func:`_as_array` can read.
        """
        if self._sock is None:
            raise WorkerCrashError(
                f"worker {self.name!r} is not connected")
        if (self.chaos is not None
                and self.chaos.exchange_fate(self.name) == "sever"):
            # Injected partition: drop the socket mid-protocol so the
            # group sees the real dead-lane signature and evicts us.
            self.close()
            raise WorkerCrashError(
                f"worker {self.name!r} connection severed (chaos)")
        try:
            self._sock.settimeout(timeout_s)
            if self.binary:
                self._sock.sendall(encode_frame(
                    attach_token(payload, self.token), arrays or {}))
                decoded = read_frame(self._reader)
            else:
                self._sock.sendall(encode_line(_inline_arrays(
                    attach_token(payload, self.token), arrays or {})))
                decoded = self._reader.readline()
        except (OSError, ValueError, CodecError) as error:
            self.close()
            raise WorkerCrashError(
                f"worker {self.name!r} connection failed: "
                f"{error}") from error
        if not decoded:
            self.close()
            raise WorkerCrashError(
                f"worker {self.name!r} closed the connection")
        if self.binary:
            reply, reply_arrays = decoded
            reply = dict(reply)
            reply.update(reply_arrays)
        else:
            reply = json.loads(decoded)
        if not reply.get("ok"):
            error = reply.get("error") or {}
            cls = _REMOTE_ERROR_TYPES.get(error.get("type"),
                                          RemoteExecutionError)
            raise cls(
                f"{error.get('type', 'Error')}: "
                f"{error.get('message', 'remote worker failure')}")
        return reply

    def deploy(self, deployments: list[Deployment]) -> None:
        try:
            self._request({"op": "deploy",
                           "blob": encode_blob(list(deployments))},
                          timeout_s=self.connect_timeout_s * 4)
        except FabricAuthError as error:
            # An unauthenticated lane can never execute anything: treat
            # the handshake failure as lane-level so the group degrades
            # (dead lane, tolerated) instead of aborting the whole run.
            self.close()
            raise WorkerCrashError(
                f"worker {self.name!r} rejected the fabric token: "
                f"{error}") from error

    def _result_from(self, reply: dict, logits) -> WorkResult:
        spans = list(reply.get("spans") or [])
        # The server side executes with no knowledge of what this group
        # calls its lane, so its lane_execute spans come back with an
        # empty worker attribute.  Stamp the client-edge lane identity
        # here — the one place that knows both the spans and the name —
        # so traces attribute remote execution to ``remote@host:port``.
        for span in spans:
            attrs = span.get("attrs")
            if isinstance(attrs, dict) and not attrs.get("worker"):
                attrs["worker"] = self.name
        return WorkResult(
            item_id=int(reply["item_id"]),
            logits=_as_array(logits),
            image_traces=[TraceMerge.from_dict(t)
                          for t in reply["traces"]],
            elapsed_s=float(reply["elapsed_s"]),
            worker=self.name,
            pid=int(reply.get("pid", 0)),
            spans=spans,
        )

    def execute(self, item: WorkItem) -> WorkResult:
        payload = {
            "op": "execute",
            "item_id": item.item_id,
            "deployment": item.deployment,
        }
        exchange = None
        if item.trace:
            # The wire-side span: everything between handing the images
            # to the codec and having the reply decoded — serialization
            # plus network plus remote service.  The remote's own
            # lane_execute span (returned in the reply) nests inside it.
            from repro.telemetry import Span
            exchange = Span.child_of(item.trace, "exchange")
            payload["trace"] = exchange.context()
        reply = self._request(payload, timeout_s=item.timeout_s,
                              arrays={"images": item.images})
        result = self._result_from(reply, reply["logits"])
        if exchange is not None:
            exchange.set(worker=self.name, framing=(
                "binary" if self.binary else "json"),
                num_images=item.num_images)
            result.spans = [exchange.finish().to_dict(), *result.spans]
        return result

    def execute_many(self, items: list[WorkItem]) -> list:
        """One framed round-trip for a whole dispatch chunk.

        Returns one :class:`WorkResult` or :class:`Exception` per item
        (aligned); the chunk shares a single wire exchange, so framing
        and negotiation overhead is paid once.  The exchange deadline
        is the chunk's tightest surviving item budget
        (:func:`~repro.runtime.work.chunk_timeout_s`).
        """
        if len(items) == 1:
            try:
                return [self.execute(items[0])]
            except WorkerCrashError:
                raise
            except Exception as error:  # noqa: BLE001 — task failure
                return [error]
        self.send_chunk(items)
        return self.collect_chunk()

    def _chunk_payload(self, items: list[WorkItem]):
        """Build an ``execute_many`` payload: wire entries, array map
        and one exchange span per traced item.

        One wire round-trip serves the whole chunk, but each traced
        item still gets its own exchange span (all covering the same
        shared window, like the serve layer's shared execute spans) so
        every request's tree keeps the request -> ... -> exchange ->
        lane_execute shape regardless of how dispatch chunked it.
        """
        exchange_spans: dict = {}
        wire_items = []
        for item in items:
            entry = {"item_id": item.item_id,
                     "deployment": item.deployment}
            if item.trace:
                from repro.telemetry import Span
                span = Span.child_of(item.trace, "exchange")
                exchange_spans[item.item_id] = span
                entry["trace"] = span.context()
            wire_items.append(entry)
        payload = {"op": "execute_many", "items": wire_items}
        arrays = {f"images:{position}": item.images
                  for position, item in enumerate(items)}
        return payload, arrays, exchange_spans

    def send_chunk(self, items: list[WorkItem]) -> None:
        """Encode a chunk and put it on the wire without waiting.

        The server answers strictly in order, so replies collect FIFO;
        the caller keeps at most :attr:`pipeline_depth` chunks
        outstanding.  The chunk's deadline starts *now* — queue wait
        behind earlier windowed chunks counts against it.
        """
        payload, arrays, spans = self._chunk_payload(items)
        timeout_s = chunk_timeout_s(items)
        deadline = (None if timeout_s is None
                    else time.monotonic() + timeout_s)
        with self._io_lock:
            if self._sock is None:
                raise WorkerCrashError(
                    f"worker {self.name!r} is not connected")
            if len(self._outstanding) >= self.pipeline_depth:
                raise ValueError(
                    f"worker {self.name!r} already has "
                    f"{len(self._outstanding)} chunk(s) in flight "
                    f"(pipeline_depth={self.pipeline_depth})")
            if (self.chaos is not None
                    and self.chaos.exchange_fate(self.name) == "sever"):
                # Injected partition: drop the socket mid-protocol so
                # the group sees the real dead-lane signature — with a
                # window open, every outstanding chunk dies with it.
                self.close()
                raise WorkerCrashError(
                    f"worker {self.name!r} connection severed (chaos)")
            try:
                self._sock.settimeout(timeout_s)
                if self.binary:
                    self._sock.sendall(encode_frame(
                        attach_token(payload, self.token), arrays))
                else:
                    self._sock.sendall(encode_line(_inline_arrays(
                        attach_token(payload, self.token), arrays)))
            except (OSError, ValueError, CodecError) as error:
                self.close()
                raise WorkerCrashError(
                    f"worker {self.name!r} connection failed: "
                    f"{error}") from error
            self._outstanding.append(_RemoteFlight(
                list(items), spans, deadline))

    def collect_chunk(self) -> list:
        """Read the oldest outstanding chunk's reply and decode it."""
        with self._io_cond:
            if not self._outstanding:
                # The group believes a chunk is in flight; an empty
                # window here means close() tore the connection down
                # underneath it (monitor-driven eviction) — crash
                # semantics, so the caller requeues instead of failing.
                raise WorkerCrashError(
                    f"worker {self.name!r} has no chunk in flight "
                    "(connection was closed)")
            flight = self._outstanding[0]
            if self._sock is None:
                raise WorkerCrashError(
                    f"worker {self.name!r} is not connected")
            timeout_s = None
            if flight.deadline is not None:
                timeout_s = flight.deadline - time.monotonic()
                if timeout_s <= 0:
                    self.close()
                    raise WorkerCrashError(
                        f"worker {self.name!r} exceeded its chunk "
                        "deadline before replying")
            try:
                self._sock.settimeout(timeout_s)
                if self.binary:
                    decoded = read_frame(self._reader)
                else:
                    decoded = self._reader.readline()
            except (OSError, ValueError, CodecError) as error:
                self.close()
                raise WorkerCrashError(
                    f"worker {self.name!r} connection failed: "
                    f"{error}") from error
            if not decoded:
                self.close()
                raise WorkerCrashError(
                    f"worker {self.name!r} closed the connection")
            self._outstanding.popleft()
            self._io_cond.notify_all()
        if self.binary:
            reply, reply_arrays = decoded
            reply = dict(reply)
            reply.update(reply_arrays)
        else:
            reply = json.loads(decoded)
        if not reply.get("ok"):
            # A whole-chunk refusal (auth, malformed frame) on a live
            # connection: a task-level failure — the reply was consumed
            # in order, the lane stays healthy.
            error = reply.get("error") or {}
            cls = _REMOTE_ERROR_TYPES.get(error.get("type"),
                                          RemoteExecutionError)
            raise cls(
                f"{error.get('type', 'Error')}: "
                f"{error.get('message', 'remote worker failure')}")
        return self._decode_chunk(reply, flight)

    def _decode_chunk(self, reply: dict, flight: _RemoteFlight) -> list:
        """An ``execute_many`` reply -> aligned outcomes for a flight."""
        items = flight.items
        entries = reply.get("results")
        if not isinstance(entries, list) or len(entries) != len(items):
            raise WorkerCrashError(
                f"worker {self.name!r} answered "
                f"{len(entries) if isinstance(entries, list) else 0} "
                f"results for a {len(items)}-item chunk")
        outcomes: list = []
        for position, entry in enumerate(entries):
            if entry.get("ok"):
                outcomes.append(self._result_from(
                    entry, reply[f"logits:{position}"]))
            else:
                error = entry.get("error") or {}
                cls = _REMOTE_ERROR_TYPES.get(error.get("type"),
                                              RemoteExecutionError)
                outcomes.append(cls(
                    f"{error.get('type', 'Error')}: "
                    f"{error.get('message', 'remote worker failure')}"))
        if flight.spans:
            framing = "binary" if self.binary else "json"
            shared = len(items) > 1
            for position, item in enumerate(items):
                span = flight.spans.get(item.item_id)
                if span is None:
                    continue
                outcome = outcomes[position]
                span.set(worker=self.name, framing=framing,
                         num_images=item.num_images, shared=shared)
                finished = span.finish(
                    ok=isinstance(outcome, WorkResult)).to_dict()
                if isinstance(outcome, WorkResult):
                    outcome.spans = [finished, *outcome.spans]
        return outcomes

    def ping(self, timeout_s: float = 5.0) -> bool:
        # A lane busy executing is alive by definition; never block the
        # monitor behind a long-running item — probe only if the lock
        # can be taken NOW, and hold it for the whole exchange (a
        # release-then-reacquire would let an untimed execute slip in
        # and stall the monitor indefinitely).
        if not self._io_lock.acquire(blocking=False):
            return True
        try:
            if self._outstanding:
                # A lane with a window open is alive by definition;
                # injecting a ping between a pipelined send and its
                # collect would desequence the in-order replies.
                return True
            self._request_locked({"op": "ping"}, timeout_s=timeout_s)
            return True
        except (WorkerCrashError, RemoteExecutionError, FabricAuthError):
            return False
        finally:
            self._io_lock.release()

    def close(self) -> None:
        self.binary = False   # a re-dial renegotiates from scratch
        self._outstanding.clear()  # the window died with the connection
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

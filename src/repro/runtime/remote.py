"""Remote engine workers: the fabric over JSON-lines TCP.

A host joins the fabric by running ``repro worker --listen host:port``
(:class:`WorkerServer`); a driver attaches a :class:`RemoteWorker` lane
to it.  The protocol reuses the serving transport's newline-delimited
JSON framing (``repro.runtime.codec``), one request per line, answered
in order::

    {"op": "ping"}                         -> {"ok": true, "pid": ...}
    {"op": "deploy", "blob": "<b64>"}      -> {"ok": true, "deployments": N}
    {"op": "execute", "item_id": 7,
     "deployment": 0, "images": {...}}     -> {"ok": true, "item_id": 7,
                                               "logits": {...},
                                               "traces": [...],
                                               "elapsed_s": ..., "pid": ...}

Task-level failures answer ``{"ok": false, "error": {"type", "message"}}``
and keep the connection; transport-level failures (closed socket, blown
timeout) surface as :class:`~repro.errors.WorkerCrashError` so the group
evicts the lane and requeues its work.

Results are bit-identical to a local run: images and logits cross the
wire through the exact array codec, traces as integer counters.  The
``deploy`` blob is pickled — **only attach workers you trust, over
networks you trust**; this is a lab/cluster fabric, not a public API.
"""

from __future__ import annotations

import json
import os
import socket
import threading

from repro.core.engine.trace import TraceMerge
from repro.errors import RemoteExecutionError, WorkerCrashError
from repro.runtime.codec import (
    decode_array,
    decode_blob,
    encode_array,
    encode_blob,
    encode_line,
)
from repro.runtime.work import Deployment, WorkItem, WorkResult, execute_item
from repro.runtime.workers import Worker

__all__ = ["RemoteWorker", "WorkerServer"]


# ----------------------------------------------------------------------
# Server side — what `repro worker --listen` runs
# ----------------------------------------------------------------------
class WorkerServer:
    """A TCP engine worker: accepts connections, executes work items.

    Engines are built lazily per deployment through the process-wide
    warm cache, so repeated sweeps against the same worker recompile
    nothing.  Each connection carries its own deployment table (drivers
    deploy right after connecting); one handler thread per connection
    keeps the protocol strictly request/response ordered.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self.port = port
        self._sock: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        # Live handler threads and their sockets, pruned as connections
        # close — the worker is a long-lived daemon, so per-connection
        # state must not accumulate.  Guarded by _conn_lock (accept
        # thread adds, handlers remove, close() snapshots).
        self._handlers: set[threading.Thread] = set()
        self._connections: set[socket.socket] = set()
        self._conn_lock = threading.Lock()
        self._closing = threading.Event()

    @property
    def running(self) -> bool:
        return self._sock is not None

    def start(self) -> "WorkerServer":
        """Bind and begin accepting; ``port=0`` picks an ephemeral port."""
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.host, self.port))
        sock.listen()
        self.port = sock.getsockname()[1]
        self._sock = sock
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-worker-accept",
            daemon=True)
        self._accept_thread.start()
        return self

    def __enter__(self) -> "WorkerServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return  # socket closed by close()
            handler = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="repro-worker-conn", daemon=True)
            with self._conn_lock:
                self._connections.add(conn)
                self._handlers.add(handler)
            handler.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        deployments: list[Deployment] = []
        try:
            with conn, conn.makefile("rb") as reader:
                for line in reader:
                    try:
                        reply = self._handle(deployments, line)
                    except Exception as error:  # noqa: BLE001 — every
                        # request must answer: an unpicklable blob or a
                        # version-skewed payload is a *task* failure on
                        # a healthy host, and killing the connection
                        # would make the driver misread it as a lane
                        # crash and requeue the item elsewhere.
                        reply = _error_reply(error)
                    conn.sendall(encode_line(reply))
        except (ConnectionError, OSError):
            pass  # peer vanished; nothing to answer
        finally:
            with self._conn_lock:
                self._connections.discard(conn)
                self._handlers.discard(threading.current_thread())

    def _handle(self, deployments: list[Deployment], line: bytes) -> dict:
        message = json.loads(line)
        if not isinstance(message, dict):
            raise ValueError("request must be a JSON object")
        op = message.get("op")
        if op == "ping":
            return {"ok": True, "pid": os.getpid(),
                    "deployments": len(deployments)}
        if op == "deploy":
            table = decode_blob(message["blob"])
            deployments[:] = list(table)
            return {"ok": True, "deployments": len(deployments)}
        if op == "execute":
            item = WorkItem(
                item_id=int(message["item_id"]),
                deployment=int(message["deployment"]),
                images=decode_array(message["images"]))
            if not 0 <= item.deployment < len(deployments):
                raise RemoteExecutionError(
                    f"deployment {item.deployment} is not registered "
                    f"({len(deployments)} deployed); send a 'deploy' "
                    "request first")
            result = execute_item(deployments, item)
            return {
                "ok": True,
                "item_id": result.item_id,
                "logits": encode_array(result.logits),
                "traces": [t.to_dict() for t in result.image_traces],
                "elapsed_s": result.elapsed_s,
                "pid": result.pid,
            }
        raise ValueError(f"unknown op {op!r}")

    def close(self) -> None:
        self._closing.set()
        if self._sock is not None:
            # shutdown() before close(): closing an fd does NOT wake a
            # thread blocked in accept() on it (the kernel socket stays
            # in LISTEN and keeps taking connections); shutdown does.
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        # Drop live connections too, so attached lanes observe the death
        # promptly (heartbeat probes must fail, not hang).
        with self._conn_lock:
            connections = list(self._connections)
            handlers = list(self._handlers)
            self._connections.clear()
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=1.0)
            self._accept_thread = None
        for handler in handlers:
            handler.join(timeout=1.0)


def _error_reply(error: Exception) -> dict:
    return {"ok": False,
            "error": {"type": type(error).__name__,
                      "message": str(error)}}


# ----------------------------------------------------------------------
# Client side — the lane a WorkerGroup schedules onto
# ----------------------------------------------------------------------
class RemoteWorker(Worker):
    """One fabric lane backed by a :class:`WorkerServer` connection."""

    kind = "remote"

    def __init__(self, host: str, port: int, name: str | None = None,
                 connect_timeout_s: float = 5.0) -> None:
        super().__init__(name or f"remote@{host}:{port}")
        self.host = host
        self.port = port
        self.connect_timeout_s = connect_timeout_s
        self._sock: socket.socket | None = None
        self._reader = None
        # Serializes the request/response exchange: the group's monitor
        # may ping while the dispatcher thread owns the socket.
        self._io_lock = threading.Lock()

    def start(self) -> None:
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout_s)
            # An execute without a per-item timeout blocks in readline;
            # keepalive makes a host that vanished without a FIN/RST
            # (power loss, network partition) surface as an OSError in
            # about a minute instead of blocking forever.
            self._sock.setsockopt(socket.SOL_SOCKET,
                                  socket.SO_KEEPALIVE, 1)
            for option, value in (("TCP_KEEPIDLE", 30),
                                  ("TCP_KEEPINTVL", 10),
                                  ("TCP_KEEPCNT", 3)):
                if hasattr(socket, option):
                    self._sock.setsockopt(socket.IPPROTO_TCP,
                                          getattr(socket, option), value)
            self._reader = self._sock.makefile("rb")
        except OSError as error:
            raise WorkerCrashError(
                f"cannot reach worker {self.host}:{self.port}: "
                f"{error}") from error

    def _request(self, payload: dict,
                 timeout_s: float | None = None) -> dict:
        with self._io_lock:
            return self._request_locked(payload, timeout_s)

    def _request_locked(self, payload: dict,
                        timeout_s: float | None = None) -> dict:
        """One exchange; caller must hold ``_io_lock``."""
        if self._sock is None:
            raise WorkerCrashError(
                f"worker {self.name!r} is not connected")
        try:
            self._sock.settimeout(timeout_s)
            self._sock.sendall(encode_line(payload))
            line = self._reader.readline()
        except (OSError, ValueError) as error:
            self.close()
            raise WorkerCrashError(
                f"worker {self.name!r} connection failed: "
                f"{error}") from error
        if not line:
            self.close()
            raise WorkerCrashError(
                f"worker {self.name!r} closed the connection")
        reply = json.loads(line)
        if not reply.get("ok"):
            error = reply.get("error") or {}
            raise RemoteExecutionError(
                f"{error.get('type', 'Error')}: "
                f"{error.get('message', 'remote worker failure')}")
        return reply

    def deploy(self, deployments: list[Deployment]) -> None:
        self._request({"op": "deploy",
                       "blob": encode_blob(list(deployments))},
                      timeout_s=self.connect_timeout_s * 4)

    def execute(self, item: WorkItem) -> WorkResult:
        reply = self._request({
            "op": "execute",
            "item_id": item.item_id,
            "deployment": item.deployment,
            "images": encode_array(item.images),
        }, timeout_s=item.timeout_s)
        return WorkResult(
            item_id=int(reply["item_id"]),
            logits=decode_array(reply["logits"]),
            image_traces=[TraceMerge.from_dict(t)
                          for t in reply["traces"]],
            elapsed_s=float(reply["elapsed_s"]),
            worker=self.name,
            pid=int(reply.get("pid", 0)),
        )

    def ping(self, timeout_s: float = 5.0) -> bool:
        # A lane busy executing is alive by definition; never block the
        # monitor behind a long-running item — probe only if the lock
        # can be taken NOW, and hold it for the whole exchange (a
        # release-then-reacquire would let an untimed execute slip in
        # and stall the monitor indefinitely).
        if not self._io_lock.acquire(blocking=False):
            return True
        try:
            self._request_locked({"op": "ping"}, timeout_s=timeout_s)
            return True
        except (WorkerCrashError, RemoteExecutionError):
            return False
        finally:
            self._io_lock.release()

    def close(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

"""Wire codecs shared by the worker fabric and the serving transport.

Everything that crosses a socket in this repo is **newline-delimited
JSON** — one message per line, encoded by :func:`encode_line` and parsed
by :func:`decode_line`.  The serving front-end (``repro.serve.transport``)
and the runtime worker protocol (``repro.runtime.remote``) share these
helpers, so the two wire surfaces can never drift apart in framing.

Numeric payloads ride inside the JSON as compact, bit-exact envelopes:

* :func:`encode_array` / :func:`decode_array` — a numpy array as
  ``{dtype, shape, data}`` with the raw buffer base64-encoded.  The
  decoded array is byte-for-byte identical to the original, which is
  what lets a remote engine worker produce results bit-identical to a
  local run (the fabric's acceptance contract).
* :func:`encode_blob` / :func:`decode_blob` — an arbitrary picklable
  object (deployment specs: quantized networks, configs, calibrations)
  as base64-wrapped pickle.  **Blobs are code-adjacent data: only
  exchange them between mutually trusted hosts.**  The worker fabric is
  a lab/cluster tool, not an internet-facing service.
"""

from __future__ import annotations

import base64
import json
import pickle

import numpy as np

__all__ = [
    "decode_array",
    "decode_blob",
    "decode_line",
    "encode_array",
    "encode_blob",
    "encode_line",
]


def encode_line(payload: dict) -> bytes:
    """One JSON message, newline-terminated (the shared framing)."""
    return (json.dumps(payload) + "\n").encode()


def decode_line(line: bytes | str) -> dict:
    """Parse one framed line; raises ``ValueError`` on non-object JSON."""
    message = json.loads(line)
    if not isinstance(message, dict):
        raise ValueError("message must be a JSON object")
    return message


def encode_array(array: np.ndarray) -> dict:
    """A numpy array as a JSON-safe ``{dtype, shape, data}`` envelope."""
    array = np.ascontiguousarray(array)
    return {
        "dtype": str(array.dtype),
        "shape": list(array.shape),
        "data": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def decode_array(payload: dict) -> np.ndarray:
    """Rebuild an array bit-identically from its wire envelope."""
    raw = base64.b64decode(payload["data"])
    array = np.frombuffer(raw, dtype=np.dtype(payload["dtype"]))
    return array.reshape(tuple(payload["shape"])).copy()


def encode_blob(obj) -> str:
    """Pickle + base64 an object (deployments; trusted fabric only)."""
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)).decode("ascii")


def decode_blob(text: str) -> object:
    """Inverse of :func:`encode_blob` (trusted fabric only)."""
    return pickle.loads(base64.b64decode(text))

"""Wire codecs shared by the worker fabric and the serving transport.

Everything that crosses a socket in this repo is **newline-delimited
JSON** — one message per line, encoded by :func:`encode_line` and parsed
by :func:`decode_line`.  The serving front-end (``repro.serve.transport``)
and the runtime worker protocol (``repro.runtime.remote``) share these
helpers, so the two wire surfaces can never drift apart in framing.

Numeric payloads ride inside the JSON as compact, bit-exact envelopes:

* :func:`encode_array` / :func:`decode_array` — a numpy array as
  ``{dtype, shape, data}`` with the raw buffer base64-encoded.  The
  decoded array is byte-for-byte identical to the original, which is
  what lets a remote engine worker produce results bit-identical to a
  local run (the fabric's acceptance contract).
* :func:`encode_blob` / :func:`decode_blob` — an arbitrary picklable
  object (deployment specs: quantized networks, configs, calibrations)
  as base64-wrapped pickle.  **Blobs are code-adjacent data: only
  exchange them between mutually trusted hosts.**  The worker fabric is
  a lab/cluster tool, not an internet-facing service.

An optional shared secret softens that caveat: with a token configured
(``repro worker --listen --token T``), every payload must carry a valid
``auth`` field (:func:`attach_token`) or the server rejects it before
any blob is unpickled (:func:`check_token`).  The auth value is an HMAC
of the token, compared in constant time — a fabric membership proof
against accidental or opportunistic connections, not a substitute for a
trusted network (payloads are neither encrypted nor replay-protected).
"""

from __future__ import annotations

import base64
import hashlib
import hmac
import json
import pickle

import numpy as np

__all__ = [
    "attach_token",
    "check_token",
    "decode_array",
    "decode_blob",
    "decode_line",
    "encode_array",
    "encode_blob",
    "encode_line",
    "fabric_auth",
]


def encode_line(payload: dict) -> bytes:
    """One JSON message, newline-terminated (the shared framing)."""
    return (json.dumps(payload) + "\n").encode()


def decode_line(line: bytes | str) -> dict:
    """Parse one framed line; raises ``ValueError`` on non-object JSON."""
    message = json.loads(line)
    if not isinstance(message, dict):
        raise ValueError("message must be a JSON object")
    return message


def encode_array(array: np.ndarray) -> dict:
    """A numpy array as a JSON-safe ``{dtype, shape, data}`` envelope."""
    array = np.ascontiguousarray(array)
    return {
        "dtype": str(array.dtype),
        "shape": list(array.shape),
        "data": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def decode_array(payload: dict) -> np.ndarray:
    """Rebuild an array bit-identically from its wire envelope."""
    raw = base64.b64decode(payload["data"])
    array = np.frombuffer(raw, dtype=np.dtype(payload["dtype"]))
    return array.reshape(tuple(payload["shape"])).copy()


def encode_blob(obj) -> str:
    """Pickle + base64 an object (deployments; trusted fabric only)."""
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)).decode("ascii")


def decode_blob(text: str) -> object:
    """Inverse of :func:`encode_blob` (trusted fabric only)."""
    return pickle.loads(base64.b64decode(text))


# ----------------------------------------------------------------------
# Shared-secret handshake (optional fabric authentication)
# ----------------------------------------------------------------------
_AUTH_CONTEXT = b"repro-fabric-v1"


def fabric_auth(token: str) -> str:
    """The ``auth`` proof a payload must carry for a given token."""
    return hmac.new(token.encode(), _AUTH_CONTEXT,
                    hashlib.sha256).hexdigest()


def attach_token(payload: dict, token: str | None) -> dict:
    """Return ``payload`` carrying the auth proof (no-op without token)."""
    if token is None:
        return payload
    return dict(payload, auth=fabric_auth(token))


def check_token(payload: dict, token: str | None) -> bool:
    """Whether a payload satisfies the configured token (constant-time).

    With no token configured every payload passes; with one, the payload
    must carry a matching ``auth`` field.  Callers reject failing
    payloads with :class:`~repro.errors.FabricAuthError` *before*
    touching any pickled blob they carry.
    """
    if token is None:
        return True
    auth = payload.get("auth")
    if not isinstance(auth, str):
        return False
    return hmac.compare_digest(auth, fabric_auth(token))

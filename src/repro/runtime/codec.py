"""Wire codecs shared by the worker fabric and the serving transport.

Two framings cross sockets in this repo, both defined here so the wire
surfaces can never drift apart:

* **JSON lines** (the v1 framing, and the negotiation fallback) — one
  JSON object per line, encoded by :func:`encode_line` and parsed by
  :func:`decode_line`, arrays riding as base64 envelopes
  (:func:`encode_array`).
* **Binary frames** (negotiated per connection) — a length-prefixed
  frame carrying a small JSON header plus the raw ndarray buffers
  appended verbatim: :func:`encode_frame` / :func:`decode_frame` /
  :func:`read_frame`.  No base64, no pickle for arrays; decoding maps
  each buffer back with ``np.frombuffer`` (zero copies), and arrays
  whose contents are mostly zeros — spike-sparse workloads, the paper's
  whole premise — ship as lossless COO (flat indices + values) when
  that is smaller.  Either representation rebuilds the array
  byte-for-byte, so binary lanes stay inside the fabric's bit-exactness
  contract.

Frame layout (all integers little-endian)::

    magic   4 bytes  b"RBF1"
    hlen    4 bytes  uint32   header length
    blen    8 bytes  uint64   body length
    header  hlen bytes        JSON: {"payload": {...}, "arrays": {...}}
    body    blen bytes        concatenated raw buffers

Every structural property — magic, both lengths against hard caps, each
array descriptor's dtype (whitelist), shape and byte accounting — is
validated **before any buffer is allocated or copied**; violations raise
:class:`~repro.errors.CodecError`.  A hostile peer can therefore make a
connection fail typed, but cannot make it allocate gigabytes or
interpret bytes as objects.

Numeric payloads ride inside the JSON as compact, bit-exact envelopes:

* :func:`encode_array` / :func:`decode_array` — a numpy array as
  ``{dtype, shape, data}`` with the raw buffer base64-encoded.  The
  decoded array is byte-for-byte identical to the original, which is
  what lets a remote engine worker produce results bit-identical to a
  local run (the fabric's acceptance contract).
* :func:`encode_blob` / :func:`decode_blob` — an arbitrary picklable
  object (deployment specs: quantized networks, configs, calibrations)
  as base64-wrapped pickle.  **Blobs are code-adjacent data: only
  exchange them between mutually trusted hosts.**  The worker fabric is
  a lab/cluster tool, not an internet-facing service.

An optional shared secret softens that caveat: with a token configured
(``repro worker --listen --token T``), every payload must carry a valid
``auth`` field (:func:`attach_token`) or the server rejects it before
any blob is unpickled (:func:`check_token`).  The auth value is an HMAC
of the token, compared in constant time — a fabric membership proof
against accidental or opportunistic connections, not a substitute for a
trusted network (payloads are neither encrypted nor replay-protected).
"""

from __future__ import annotations

import base64
import hashlib
import hmac
import json
import os
import pickle
import struct

import numpy as np

from repro.errors import CodecError

__all__ = [
    "DEFAULT_COO_RATIO",
    "FRAME_MAGIC",
    "FRAME_PREFIX_LEN",
    "attach_token",
    "check_token",
    "decode_array",
    "decode_blob",
    "decode_frame",
    "decode_line",
    "encode_array",
    "encode_blob",
    "encode_frame",
    "encode_line",
    "fabric_auth",
    "get_coo_ratio",
    "parse_frame_prefix",
    "read_frame",
    "set_coo_ratio",
]


#: Cached telemetry children, one per (direction, encoding) — allocated
#: lazily on first use, so the codec stays import-cheap and the hot path
#: pays one dict lookup + one counter add per message.
_BYTE_COUNTERS: dict[tuple[str, str], object] = {}


def _count_bytes(direction: str, encoding: str, nbytes: int) -> None:
    child = _BYTE_COUNTERS.get((direction, encoding))
    if child is None:
        from repro.telemetry import get_registry
        child = get_registry().counter(
            "repro_codec_bytes_total",
            "Bytes crossing the wire codecs, by direction and encoding",
            labelnames=("direction", "encoding"),
        ).labels(direction=direction, encoding=encoding)
        _BYTE_COUNTERS[(direction, encoding)] = child
    child.inc(nbytes)


def encode_line(payload: dict) -> bytes:
    """One JSON message, newline-terminated (the shared framing)."""
    data = (json.dumps(payload) + "\n").encode()
    _count_bytes("sent", "json", len(data))
    return data


def decode_line(line: bytes | str) -> dict:
    """Parse one framed line; raises ``ValueError`` on non-object JSON."""
    message = json.loads(line)
    if not isinstance(message, dict):
        raise ValueError("message must be a JSON object")
    _count_bytes("received", "json", len(line))
    return message


def encode_array(array: np.ndarray) -> dict:
    """A numpy array as a JSON-safe ``{dtype, shape, data}`` envelope."""
    array = np.ascontiguousarray(array)
    return {
        "dtype": str(array.dtype),
        "shape": list(array.shape),
        "data": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def decode_array(payload: dict) -> np.ndarray:
    """Rebuild an array bit-identically from its wire envelope.

    The returned array is a **read-only** view over the decoded buffer:
    wrapping the base64 output directly (instead of the historical
    ``frombuffer(...).copy()``) saves one full-buffer copy per message.
    Fabric consumers only ever read decoded arrays (engines quantize
    into fresh tensors, result handling argmaxes/merges); a caller that
    needs to mutate one copies explicitly.
    """
    raw = base64.b64decode(payload["data"])
    array = np.frombuffer(raw, dtype=np.dtype(payload["dtype"]))
    return array.reshape(tuple(payload["shape"]))


def encode_blob(obj) -> str:
    """Pickle + base64 an object (deployments; trusted fabric only)."""
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)).decode("ascii")


def decode_blob(text: str) -> object:
    """Inverse of :func:`encode_blob` (trusted fabric only)."""
    return pickle.loads(base64.b64decode(text))


# ----------------------------------------------------------------------
# Binary frames — the negotiated zero-copy framing
# ----------------------------------------------------------------------
FRAME_MAGIC = b"RBF1"
FRAME_PREFIX_LEN = 16                    # magic + uint32 hlen + uint64 blen
_PREFIX_STRUCT = struct.Struct("<4sIQ")

#: Hard caps enforced before any allocation.  Generous for this fabric
#: (the largest legitimate frames are sweep shards of float64 images)
#: yet small enough that a hostile length prefix cannot OOM the host.
MAX_HEADER_BYTES = 1 << 20               # 1 MiB of JSON header
MAX_BODY_BYTES = 1 << 31                 # 2 GiB of array buffers

#: The only dtypes allowed on the wire.  Names are matched as exact
#: strings *before* ``np.dtype`` ever sees attacker input, so a frame
#: cannot smuggle object/void/structured dtypes (arbitrary-code or
#: arbitrary-width surprises) through the decoder.
_WIRE_DTYPES = frozenset({
    "bool",
    "int8", "int16", "int32", "int64",
    "uint8", "uint16", "uint32", "uint64",
    "float16", "float32", "float64",
})

#: Below this density a numeric array ships as COO (indices + values);
#: chosen so the sparse form is only used when it is actually smaller
#: (uint32 index + value per element vs. itemsize per element, plus
#: slack for the longer descriptor).
_SPARSE_MIN_ELEMENTS = 256

#: An array ships as COO when its COO bytes come in under this fraction
#: of the raw buffer (slack covers the longer descriptor).  Resolution
#: order: ``coo_ratio=`` keyword on :func:`encode_frame`, then the
#: ``REPRO_COO_RATIO`` environment pin, then the calibrated value wired
#: in by :func:`~repro.core.engine.calibrate.install_table` via
#: :func:`set_coo_ratio`, then this default.
DEFAULT_COO_RATIO = 0.9
_COO_RATIO_PINNED = "REPRO_COO_RATIO" in os.environ
_COO_RATIO = float(os.environ.get("REPRO_COO_RATIO", DEFAULT_COO_RATIO))


def get_coo_ratio() -> float:
    """The COO-vs-raw byte ratio currently in effect."""
    return _COO_RATIO


def set_coo_ratio(ratio: float, force: bool = False) -> None:
    """Adopt a (calibrated) COO byte-ratio threshold, process-wide.

    A ``REPRO_COO_RATIO`` environment pin outranks calibration and makes
    this a no-op unless ``force`` is set.  Encoding choice only affects
    wire bytes — either representation rebuilds the array
    byte-for-byte.
    """
    global _COO_RATIO
    if _COO_RATIO_PINNED and not force:
        return
    _COO_RATIO = float(ratio)


def _sparse_wins(array: np.ndarray, nnz: int,
                 ratio: float | None = None) -> bool:
    """Whether COO encoding beats the raw buffer for this array."""
    if array.size < _SPARSE_MIN_ELEMENTS or array.size >= 1 << 32:
        return False
    coo_bytes = nnz * (4 + array.itemsize)
    return coo_bytes < array.nbytes * (
        _COO_RATIO if ratio is None else ratio)


def encode_frame(payload: dict,
                 arrays: dict[str, np.ndarray] | None = None,
                 *, coo_ratio: float | None = None) -> bytes:
    """One binary frame: JSON header + raw array buffers.

    ``arrays`` ride outside the JSON as contiguous buffers (or lossless
    COO index/value pairs when mostly zero); ``payload`` must be
    JSON-serializable.  ``coo_ratio`` overrides the COO-vs-raw
    threshold for this frame only.  The inverse is :func:`decode_frame`.
    """
    descriptors: dict[str, dict] = {}
    buffers: list[bytes | memoryview] = []
    offset = 0

    def _append(buffer) -> tuple[int, int]:
        nonlocal offset
        view = memoryview(buffer).cast("B")
        start, nbytes = offset, view.nbytes
        buffers.append(view)
        offset += nbytes
        return start, nbytes

    for name, array in (arrays or {}).items():
        array = np.ascontiguousarray(array)
        dtype = str(array.dtype)
        if dtype not in _WIRE_DTYPES:
            raise CodecError(
                f"array {name!r} has non-wire dtype {dtype!r}")
        descriptor = {"dtype": dtype, "shape": list(array.shape)}
        flat = array.reshape(-1)
        nnz = int(np.count_nonzero(flat)) if array.size else 0
        if _sparse_wins(array, nnz, coo_ratio):
            indices = np.flatnonzero(flat).astype(np.uint32)
            values = np.ascontiguousarray(flat[indices])
            descriptor["enc"] = "coo"
            descriptor["count"] = int(indices.size)
            (descriptor["index_offset"],
             descriptor["index_nbytes"]) = _append(indices)
            descriptor["offset"], descriptor["nbytes"] = _append(values)
        else:
            descriptor["enc"] = "raw"
            descriptor["offset"], descriptor["nbytes"] = _append(array)
        descriptors[name] = descriptor

    header = json.dumps({"payload": payload,
                         "arrays": descriptors}).encode()
    if len(header) > MAX_HEADER_BYTES:
        raise CodecError(f"frame header is {len(header)} bytes "
                         f"(cap {MAX_HEADER_BYTES})")
    if offset > MAX_BODY_BYTES:
        raise CodecError(f"frame body is {offset} bytes "
                         f"(cap {MAX_BODY_BYTES})")
    prefix = _PREFIX_STRUCT.pack(FRAME_MAGIC, len(header), offset)
    _count_bytes("sent", "binary",
                 FRAME_PREFIX_LEN + len(header) + offset)
    return b"".join([prefix, header, *buffers])


def parse_frame_prefix(prefix: bytes) -> tuple[int, int]:
    """Validate a 16-byte frame prefix; returns ``(hlen, blen)``.

    This is the pre-allocation gate: callers check the declared lengths
    against the caps *before* reading (or even reserving) the rest of
    the frame, so a hostile length prefix is rejected typed without a
    single oversized allocation.
    """
    if len(prefix) != FRAME_PREFIX_LEN:
        raise CodecError(
            f"truncated frame prefix ({len(prefix)}/{FRAME_PREFIX_LEN} "
            "bytes)")
    magic, header_len, body_len = _PREFIX_STRUCT.unpack(prefix)
    if magic != FRAME_MAGIC:
        raise CodecError(f"bad frame magic {magic!r}")
    if header_len == 0 or header_len > MAX_HEADER_BYTES:
        raise CodecError(f"frame header length {header_len} outside "
                         f"(0, {MAX_HEADER_BYTES}]")
    if body_len > MAX_BODY_BYTES:
        raise CodecError(f"frame body length {body_len} exceeds cap "
                         f"{MAX_BODY_BYTES}")
    return header_len, body_len


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise CodecError(message)


def _decode_descriptor(name: str, descriptor, body: memoryview
                       ) -> np.ndarray:
    """One validated array from its descriptor + the body buffer."""
    _require(isinstance(descriptor, dict),
             f"array descriptor {name!r} must be an object")
    dtype_name = descriptor.get("dtype")
    _require(dtype_name in _WIRE_DTYPES,
             f"array {name!r} smuggles dtype {dtype_name!r}")
    dtype = np.dtype(dtype_name)
    shape = descriptor.get("shape")
    _require(isinstance(shape, list)
             and all(isinstance(s, int) and s >= 0 for s in shape),
             f"array {name!r} has a malformed shape")
    size = 1
    for extent in shape:
        size *= extent
    _require(size * dtype.itemsize <= MAX_BODY_BYTES,
             f"array {name!r} declares {size} elements (over cap)")

    def _slice(offset, nbytes) -> memoryview:
        _require(isinstance(offset, int) and isinstance(nbytes, int)
                 and offset >= 0 and nbytes >= 0
                 and offset + nbytes <= body.nbytes,
                 f"array {name!r} buffer [{offset}, +{nbytes}] falls "
                 f"outside the {body.nbytes}-byte body")
        return body[offset:offset + nbytes]

    encoding = descriptor.get("enc")
    if encoding == "raw":
        raw = _slice(descriptor.get("offset"), descriptor.get("nbytes"))
        _require(raw.nbytes == size * dtype.itemsize,
                 f"array {name!r} buffer holds {raw.nbytes} bytes but "
                 f"shape {shape} needs {size * dtype.itemsize}")
        return np.frombuffer(raw, dtype=dtype).reshape(shape)
    if encoding == "coo":
        count = descriptor.get("count")
        _require(isinstance(count, int) and 0 <= count <= size,
                 f"array {name!r} declares {count!r} sparse entries "
                 f"for {size} elements")
        raw_idx = _slice(descriptor.get("index_offset"),
                         descriptor.get("index_nbytes"))
        raw_val = _slice(descriptor.get("offset"),
                         descriptor.get("nbytes"))
        _require(raw_idx.nbytes == count * 4
                 and raw_val.nbytes == count * dtype.itemsize,
                 f"array {name!r} sparse buffers disagree with its "
                 f"entry count {count}")
        indices = np.frombuffer(raw_idx, dtype=np.uint32)
        _require(count == 0 or int(indices.max()) < size,
                 f"array {name!r} sparse index out of range")
        flat = np.zeros(size, dtype=dtype)
        flat[indices] = np.frombuffer(raw_val, dtype=dtype)
        return flat.reshape(shape)
    raise CodecError(f"array {name!r} uses unknown encoding "
                     f"{encoding!r}")


def decode_frame(header: bytes | memoryview,
                 body: bytes | memoryview
                 ) -> tuple[dict, dict[str, np.ndarray]]:
    """Rebuild ``(payload, arrays)`` from a frame's header + body.

    Raw-encoded arrays are **read-only zero-copy views** into ``body``;
    COO arrays are scattered into fresh buffers.  Both are bit-identical
    to what :func:`encode_frame` was given.
    """
    try:
        parsed = json.loads(bytes(header))
    except (ValueError, UnicodeDecodeError) as error:
        raise CodecError(f"frame header is not valid JSON: {error}") \
            from error
    _require(isinstance(parsed, dict)
             and isinstance(parsed.get("payload"), dict)
             and isinstance(parsed.get("arrays"), dict),
             "frame header must carry 'payload' and 'arrays' objects")
    body_view = memoryview(body).cast("B")
    arrays = {str(name): _decode_descriptor(str(name), descriptor,
                                            body_view)
              for name, descriptor in parsed["arrays"].items()}
    _count_bytes("received", "binary",
                 FRAME_PREFIX_LEN + len(header) + body_view.nbytes)
    return parsed["payload"], arrays


def read_frame(reader) -> tuple[dict, dict[str, np.ndarray]] | None:
    """Read one frame from a blocking binary file object.

    Returns ``None`` on clean EOF (peer hung up between frames); raises
    :class:`~repro.errors.CodecError` on a truncated or hostile frame.
    The declared lengths are validated against the caps *before* the
    header/body reads, so no oversized buffer is ever allocated.
    """
    prefix = reader.read(FRAME_PREFIX_LEN)
    if not prefix:
        return None
    header_len, body_len = parse_frame_prefix(prefix)
    header = reader.read(header_len)
    _require(len(header) == header_len,
             f"frame truncated in header ({len(header)}/{header_len} "
             "bytes)")
    body = reader.read(body_len)
    _require(len(body) == body_len,
             f"frame truncated in body ({len(body)}/{body_len} bytes)")
    return decode_frame(header, body)


# ----------------------------------------------------------------------
# Shared-secret handshake (optional fabric authentication)
# ----------------------------------------------------------------------
_AUTH_CONTEXT = b"repro-fabric-v1"


def fabric_auth(token: str) -> str:
    """The ``auth`` proof a payload must carry for a given token."""
    return hmac.new(token.encode(), _AUTH_CONTEXT,
                    hashlib.sha256).hexdigest()


def attach_token(payload: dict, token: str | None) -> dict:
    """Return ``payload`` carrying the auth proof (no-op without token)."""
    if token is None:
        return payload
    return dict(payload, auth=fabric_auth(token))


def check_token(payload: dict, token: str | None) -> bool:
    """Whether a payload satisfies the configured token (constant-time).

    With no token configured every payload passes; with one, the payload
    must carry a matching ``auth`` field.  Callers reject failing
    payloads with :class:`~repro.errors.FabricAuthError` *before*
    touching any pickled blob they carry.
    """
    if token is None:
        return True
    auth = payload.get("auth")
    if not isinstance(auth, str):
        return False
    return hmac.compare_digest(auth, fabric_auth(token))

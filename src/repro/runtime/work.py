"""The fabric's unit of work: deployments, work items, work results.

Serving and sweeps used to speak different worker dialects; the fabric
reduces both to one sentence: *run this batch of images on that
deployment and send back logits plus per-image trace aggregates*.

* :class:`Deployment` — everything that determines a result: the
  quantized network, the accelerator config, the engine backend and the
  latency calibration.  Registered with every worker once, up front, so
  work items only need an index into the table.
* :class:`WorkItem` — one executable batch: a deployment index, the
  image array, an optional execution timeout and opaque caller metadata
  (the sweep driver parks its shard bookkeeping there; metadata never
  crosses a process or host boundary).
* :class:`WorkResult` — integer logits, one
  :class:`~repro.core.engine.trace.TraceMerge` per image, wall time and
  the identity of whoever ran it.  Per-image merges are the smallest
  aggregate that still lets serving slice per-request accounting and
  sweeps fold shard totals — both bit-identical to a local run.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.core.calibration import DEFAULT_LATENCY, LatencyCalibration
from repro.core.config import AcceleratorConfig
from repro.core.engine import warm_engine
from repro.core.engine.trace import TraceMerge
from repro.errors import DeploymentError

__all__ = ["Deployment", "ResultLedger", "WorkItem", "WorkResult",
           "chunk_timeout_s", "execute_item", "next_idempotency_key"]


def chunk_timeout_s(items) -> float | None:
    """The execution budget for a chunk shipped as one exchange.

    A chunk answers in a single reply, so the item with the *tightest*
    budget bounds when the whole reply must land — the old aggregation
    (sum the budgets; unbounded if any is) both inflated the deadline
    linearly with chunk size and let one unbounded item disable every
    sibling's protection, which turns into unbounded stalls once
    windowed dispatch keeps several chunks in flight.  ``None`` only
    when *no* item carries a budget.
    """
    budgets = [item.timeout_s for item in items
               if item.timeout_s is not None]
    return float(min(budgets)) if budgets else None

_KEY_COUNTER = itertools.count()


def next_idempotency_key() -> str:
    """A process-unique idempotency key (``pid-counter``).

    Every :class:`WorkItem` carries one by default; two *distinct*
    submissions never share a key, while a re-submission of the *same*
    item (crash requeue, duplicated frame, client retry) carries the
    original key — which is what lets a completed-result ledger answer
    the duplicate without executing it twice.
    """
    return f"{os.getpid():x}-{next(_KEY_COUNTER):x}"


@dataclass(frozen=True)
class Deployment:
    """One runnable model: network + config + engine + calibration."""

    network: object                      # QuantizedNetwork (picklable)
    config: AcceleratorConfig
    backend: str = "vectorized"
    calibration: LatencyCalibration = DEFAULT_LATENCY

    def engine(self):
        """This deployment's engine, via the warm-instance cache.

        Workers call this lazily per item; the cache makes repeat calls
        O(1) and reuse bit-identical (the warm-cache contract), whether
        the worker is a thread, a forked process or a remote host.
        """
        return warm_engine(self.network, self.config, self.backend,
                           self.calibration)

    @cached_property
    def fingerprint(self) -> str:
        """Content fingerprint: the warm-cache key plus the backend name.

        Two deployments with the same fingerprint produce bit-identical
        results by the warm-cache contract — the registry and the group
        use this to share one deployment-table slot between
        content-equal registrations, however many names point at it.
        (``cached_property`` writes straight into ``__dict__``, so the
        hash over a VGG's weights is paid once per instance even though
        the dataclass is frozen.)
        """
        from repro.core.engine.cache import content_key  # avoid cycle

        return f"{self.backend}:{content_key(self.network, self.config, self.calibration)}"


@dataclass(frozen=True)
class WorkItem:
    """One batch to execute on one registered deployment."""

    item_id: int
    deployment: int                      # index into the worker's table
    images: np.ndarray                   # (N, C, H, W) floats in [0, 1]
    timeout_s: float | None = None       # per-item execution budget
    meta: dict = field(default_factory=dict)  # caller-side only
    #: Trace propagation context (``{"trace_id", "span_id"}``) — unlike
    #: ``meta`` this *does* cross process and host boundaries, so the
    #: lane-side execute span lands in the submitter's trace whether the
    #: lane is a thread, a forked child or a remote TCP worker.
    trace: dict | None = None
    #: Idempotency key — stable across re-submissions of the *same*
    #: logical item, unique across distinct ones.  The group's result
    #: ledger dedups on it, so a duplicated or retried item is answered
    #: from the ledger instead of executing twice.
    key: str = field(default_factory=next_idempotency_key)

    @property
    def num_images(self) -> int:
        return int(self.images.shape[0])


@dataclass
class WorkResult:
    """What comes back for one completed :class:`WorkItem`."""

    item_id: int
    logits: np.ndarray                   # (N, classes) integer logits
    image_traces: list[TraceMerge]       # one single-image merge each
    elapsed_s: float
    worker: str = ""                     # group-unique worker name
    pid: int = 0                         # executing process id
    #: Lane-side span dicts for a traced item (empty when the submitter
    #: did not trace).  Rides the pickle back from process children and
    #: the ``spans`` reply field back from remote workers, then merges
    #: into the submitter's flight recorder.
    spans: list = field(default_factory=list)

    @property
    def predictions(self) -> np.ndarray:
        return self.logits.argmax(axis=1).astype(np.int64)

    def merged_trace(self) -> TraceMerge:
        """Fold the per-image merges (order-independent integer sums)."""
        merged = TraceMerge()
        for trace in self.image_traces:
            merged.merge(trace)
        return merged


class ResultLedger:
    """Bounded completed-result map keyed by idempotency key.

    The exactly-once backstop: whoever completes work records the result
    under the item's key; whoever is handed the *same* key again — a
    crash-requeued item that already finished, a duplicated wire frame,
    a client re-submission after reconnect — is answered from the ledger
    instead of executing again.  Results are bit-identical either way
    (the fabric contract), so the ledger changes *work done*, never
    *answers given*.

    Capacity-bounded LRU: the oldest entry falls out once ``capacity``
    is exceeded, keeping a long-lived server's memory flat.  A key
    falling out re-opens the (tiny) window for duplicate execution —
    which is safe, just wasteful — so size the capacity to cover the
    client retry horizon, not the full run.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"ledger capacity must be >= 1, "
                             f"got {capacity}")
        self.capacity = capacity
        self.duplicates = 0              # lookups answered from the ledger
        self._entries: OrderedDict[str, object] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def record(self, key: str, result) -> bool:
        """Store a completed result; False if the key was already there
        (a duplicate execution completed — the stored result wins)."""
        if not key:
            return True
        with self._lock:
            if key in self._entries:
                self.duplicates += 1
                return False
            self._entries[key] = result
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
            return True

    def get(self, key: str):
        """The recorded result for a key (None = never completed here);
        a hit counts as a deduplicated answer."""
        if not key:
            return None
        with self._lock:
            result = self._entries.get(key)
            if result is not None:
                self._entries.move_to_end(key)
                self.duplicates += 1
            return result

    def peek(self, key: str) -> bool:
        """Whether a key has completed, without counting a duplicate."""
        with self._lock:
            return key in self._entries

    def to_dict(self) -> dict:
        with self._lock:
            return {"entries": len(self._entries),
                    "capacity": self.capacity,
                    "duplicates": self.duplicates}


def execute_item(deployments, item: WorkItem,
                 worker: str = "") -> WorkResult:
    """Run one item against a deployment table (any executor's core).

    Thread workers call this inline, process workers call it in the
    child, the TCP worker server calls it per request — one code path,
    so every executor produces byte-identical results by construction.
    A deployment index outside the registered table raises a typed
    :class:`~repro.errors.DeploymentError` (a task-level failure: the
    lane stays healthy, only the misrouted item's future fails).
    """
    if not 0 <= item.deployment < len(deployments):
        raise DeploymentError(
            f"work item {item.item_id} routed to deployment "
            f"{item.deployment}, but the table holds "
            f"{len(deployments)} deployment(s)")
    deployment = deployments[item.deployment]
    engine = deployment.engine()
    span = None
    if item.trace:
        # Trace on request: the item carries context, so the lane-side
        # execute span is created whether or not *this* process has
        # tracing switched on (remote daemons usually don't).
        from repro.telemetry import Span
        span = Span.child_of(item.trace, "lane_execute")
    started = time.perf_counter()
    logits, image_traces = engine.run_merged(item.images)
    elapsed_s = time.perf_counter() - started
    spans: list = []
    if span is not None:
        from repro.core.energy import trace_energy
        merged = TraceMerge()
        for trace in image_traces:
            merged.merge(trace)
        span.set(worker=worker, backend=deployment.backend,
                 deployment=item.deployment, num_images=item.num_images,
                 cycles=int(merged.total_cycles),
                 spikes=int(merged.total_adder_ops),
                 energy_pj=float(trace_energy(merged).total_pj))
        spans.append(span.finish().to_dict())
    return WorkResult(
        item_id=item.item_id,
        logits=logits,
        image_traces=image_traces,
        elapsed_s=elapsed_s,
        worker=worker,
        pid=os.getpid(),
        spans=spans,
    )

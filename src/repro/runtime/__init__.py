"""The worker fabric: one executor/transport layer for serving and sweeps.

``repro.runtime`` owns the worker abstraction for the whole codebase.
A :class:`Worker` executes :class:`WorkItem` batches on warm engines and
returns logits plus per-image trace aggregates; three interchangeable
executors ship (``thread``, ``process``, ``remote`` — the last over
TCP to a host running ``repro worker --listen``, negotiating zero-copy
binary frames with a JSON-lines fallback for old peers); a
:class:`WorkerGroup` schedules items across any mix of them with work
stealing, heartbeat liveness tracking and crash requeueing.

The serving pool (``repro.serve.pool.EnginePool``) and the sweep driver
(``repro.harness.sweep.SweepDriver``) are thin policy layers over this
fabric — serving keeps its micro-batch flush policies, sweeps keep
sharding and the persistent store — and both inherit the fabric's
contract: **any executor mix merges bit-identically to a serial
single-process run.**

Quick tour::

    from repro.runtime import (Deployment, WorkItem, WorkerGroup,
                               create_workers)

    group = WorkerGroup(create_workers(["thread", "host:7601"]),
                        deployments=[Deployment(network, config)])
    with group:
        results = group.run([WorkItem(0, 0, images)])
"""

from repro.runtime.codec import (
    attach_token,
    check_token,
    decode_array,
    decode_blob,
    decode_frame,
    decode_line,
    encode_array,
    encode_blob,
    encode_frame,
    encode_line,
    fabric_auth,
    parse_frame_prefix,
    read_frame,
)
from repro.runtime.chaos import ChaosEvent, ChaosPolicy
from repro.runtime.group import GroupMetrics, WorkerGroup
from repro.runtime.registry import DeploymentRegistry, RegisteredDeployment
from repro.runtime.remote import (
    GroupListener,
    JoinStats,
    RemoteWorker,
    WorkerServer,
    join_fabric,
)
from repro.runtime.shm import ShmArena, shm_available
from repro.runtime.work import (
    Deployment,
    ResultLedger,
    WorkItem,
    WorkResult,
    execute_item,
    next_idempotency_key,
)
from repro.runtime.workers import (
    ProcessWorker,
    ThreadWorker,
    Worker,
    create_workers,
    normalize_worker_specs,
)

__all__ = [
    "ChaosEvent",
    "ChaosPolicy",
    "Deployment",
    "DeploymentRegistry",
    "GroupListener",
    "GroupMetrics",
    "JoinStats",
    "ProcessWorker",
    "RegisteredDeployment",
    "RemoteWorker",
    "ResultLedger",
    "ShmArena",
    "ThreadWorker",
    "WorkItem",
    "WorkResult",
    "Worker",
    "WorkerGroup",
    "WorkerServer",
    "attach_token",
    "check_token",
    "create_workers",
    "decode_array",
    "decode_blob",
    "decode_frame",
    "decode_line",
    "encode_array",
    "encode_blob",
    "encode_frame",
    "encode_line",
    "execute_item",
    "fabric_auth",
    "join_fabric",
    "next_idempotency_key",
    "normalize_worker_specs",
    "parse_frame_prefix",
    "read_frame",
    "shm_available",
]

"""Shared-memory lanes for local process workers.

A :class:`ProcessWorker` used to pickle every image batch into its child
and every logit tensor back out — two full serializations per item on a
transport that never leaves the machine.  This module gives each worker
a small **arena**: one ``multiprocessing.shared_memory`` segment, owned
by the parent, into which image buffers are written once and mapped by
the child with ``np.frombuffer`` (zero copies, no pickle for arrays).
A reply region reserved behind the inputs carries the logits back the
same way.

Design constraints that keep this simple and safe:

* One batch in flight per **arena** — no free lists.  A stop-and-wait
  worker has one arena (its ``_exec_lock`` holds the invariant); a
  pipelined worker double-buffers with one arena per in-flight chunk,
  alternating slots so each arena is still reused wholesale only after
  its chunk was collected.
* The segment only grows (capacity doubles; a new segment replaces the
  old under a fresh name), so descriptors never dangle: the child
  attaches segments by name on demand and keeps a small bounded cache
  of mappings (large enough for every live arena slot plus a growth
  epoch), dropping the oldest beyond that.
* Everything degrades: if shared memory is unavailable (locked-down
  ``/dev/shm``, exotic platforms) or ``REPRO_NO_SHM=1`` is set, callers
  fall back to the pickle path — same results, fabric contract intact.

Children are forked, so they share the parent's ``resource_tracker``
process: the parent's create-time registration and unlink-time
unregistration balance on their own (a child's attach-time register is
an idempotent set-add in the shared tracker).  Children therefore must
NOT unregister segments themselves — that would cancel the parent's
entry and make the parent's unlink trip a tracker ``KeyError``.  For
the sharing to hold, the tracker must exist *before* the fork:
``ProcessWorker.start`` ensures it is running before its pool spawns
children, else each child's first attach would launch a private
tracker holding a registration nobody balances.
"""

from __future__ import annotations

import os
import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

__all__ = ["ShmArena", "ShmView", "attach_view", "shm_available"]

_MIN_CAPACITY = 1 << 20          # 1 MiB floor; doubles as needed
_ALIGN = 64                      # cache-line align each buffer

_available: bool | None = None


def shm_available() -> bool:
    """Whether shared-memory lanes can be used on this host."""
    global _available
    if os.environ.get("REPRO_NO_SHM"):
        return False
    if _available is None:
        try:
            probe = shared_memory.SharedMemory(create=True, size=16)
            probe.close()
            probe.unlink()
            _available = True
        except (OSError, ValueError):
            _available = False
    return _available


@dataclass(frozen=True)
class ShmView:
    """A picklable pointer to one array inside a named segment."""

    segment: str
    offset: int
    dtype: str
    shape: tuple

    @property
    def nbytes(self) -> int:
        size = 1
        for extent in self.shape:
            size *= extent
        return size * np.dtype(self.dtype).itemsize


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


class ShmArena:
    """A grow-only scratch segment owned by the parent process.

    ``place`` lays arrays out back to back (aligned) and returns one
    :class:`ShmView` per array plus a reply view sized by the caller;
    ``read`` maps a view of the *current* segment back to an array.
    The parent must copy anything it wants to keep out of a view before
    the next ``place`` reuses the space.
    """

    def __init__(self) -> None:
        self._shm: shared_memory.SharedMemory | None = None

    @property
    def segment(self) -> str | None:
        return self._shm.name if self._shm is not None else None

    def _reserve(self, nbytes: int) -> shared_memory.SharedMemory:
        if self._shm is not None and self._shm.size >= nbytes:
            return self._shm
        capacity = _MIN_CAPACITY
        while capacity < nbytes:
            capacity *= 2
        self.close()
        self._shm = shared_memory.SharedMemory(
            name=f"repro-arena-{os.getpid()}-{secrets.token_hex(4)}",
            create=True, size=capacity)
        return self._shm

    def place(self, arrays: list[np.ndarray],
              reply_nbytes: int = 0) -> tuple[list[ShmView], ShmView]:
        """Write arrays into the arena; returns their views + the reply
        view (a raw byte region the child may answer through)."""
        arrays = [np.ascontiguousarray(array) for array in arrays]
        offsets: list[int] = []
        cursor = 0
        for array in arrays:
            offsets.append(cursor)
            cursor = _align(cursor + array.nbytes)
        reply_offset = cursor
        shm = self._reserve(cursor + reply_nbytes)
        views: list[ShmView] = []
        for array, offset in zip(arrays, offsets):
            target = np.frombuffer(shm.buf, dtype=array.dtype,
                                   count=array.size, offset=offset)
            target[:] = array.reshape(-1)
            views.append(ShmView(shm.name, offset, str(array.dtype),
                                 tuple(array.shape)))
        reply = ShmView(shm.name, reply_offset, "uint8",
                        (reply_nbytes,))
        return views, reply

    def read(self, view: ShmView) -> np.ndarray:
        """Map a view of the current segment (zero-copy, read-only use).

        The caller copies out what it keeps; the buffer is recycled by
        the next ``place``.
        """
        if self._shm is None or view.segment != self._shm.name:
            raise ValueError(
                f"view references segment {view.segment!r} but the "
                f"arena holds {self.segment!r}")
        dtype = np.dtype(view.dtype)
        count = 1
        for extent in view.shape:
            count *= extent
        return np.frombuffer(self._shm.buf, dtype=dtype, count=count,
                             offset=view.offset).reshape(view.shape)

    def close(self) -> None:
        if self._shm is not None:
            try:
                self._shm.close()
            except (OSError, BufferError):
                pass
            try:
                self._shm.unlink()
            except (OSError, FileNotFoundError):
                pass
            self._shm = None


# ----------------------------------------------------------------------
# Child side: attach segments by name, cache the mappings
# ----------------------------------------------------------------------
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}

#: How many distinct segments a child keeps mapped.  A double-buffered
#: worker alternates between two live arenas (one per in-flight chunk),
#: so the cache must hold both; the small headroom above that absorbs a
#: growth epoch where an old and its replacement segment briefly
#: coexist.  Anything older has been replaced by the parent — dropping
#: the oldest attachment keeps a long-lived child from accumulating
#: dead segments.
_MAX_ATTACHED = 4


def _attach(segment: str) -> shared_memory.SharedMemory:
    shm = _ATTACHED.get(segment)
    if shm is not None:
        return shm
    while len(_ATTACHED) >= _MAX_ATTACHED:
        name = next(iter(_ATTACHED))
        try:
            _ATTACHED[name].close()
        except (OSError, BufferError):
            pass
        del _ATTACHED[name]
    shm = shared_memory.SharedMemory(name=segment)
    _ATTACHED[segment] = shm
    return shm


def attach_view(view: ShmView) -> np.ndarray:
    """Map a :class:`ShmView` in the child (zero-copy, read-only use)."""
    shm = _attach(view.segment)
    dtype = np.dtype(view.dtype)
    count = 1
    for extent in view.shape:
        count *= extent
    return np.frombuffer(shm.buf, dtype=dtype, count=count,
                         offset=view.offset).reshape(view.shape)

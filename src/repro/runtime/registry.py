"""The deployment registry: named models as the public unit of the stack.

Everything that runs work — the :class:`~repro.runtime.WorkerGroup`, the
serving pool, the sweep driver — executes against a *deployment table*:
a list of :class:`~repro.runtime.work.Deployment` entries that work
items index into.  :class:`DeploymentRegistry` is the named, shared view
of that table:

* **Names are the API.**  Serving requests say ``deployment="lenet:3"``,
  sweep cells and CLI flags name models the same way; indices stay an
  internal fabric detail.
* **Content-fingerprinted.**  Entries are keyed by the warm cache's
  content fingerprint (:attr:`Deployment.fingerprint` — backend plus a
  SHA-256 over weights, config and calibration).  Registering
  content-identical deployments under two names aliases both names to
  **one** table slot, so one warm engine serves both and the table never
  carries duplicates.  Re-registering a name with *different* content is
  an error — a name points at exactly one model.
* **Append-only.**  Indices never shift, which is what lets a live
  :class:`~repro.runtime.WorkerGroup` grow its table mid-run
  (``add_deployments``) without invalidating queued work items.

One registry instance is meant to be shared across layers: build it
once, hand it to the server *and* the sweep driver, and both schedule
onto the same worker lanes with per-deployment routing.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.core.calibration import DEFAULT_LATENCY, LatencyCalibration
from repro.core.config import AcceleratorConfig
from repro.errors import ConfigurationError, DeploymentError, RolloutError
from repro.runtime.work import Deployment

__all__ = ["DeploymentRegistry", "RegisteredDeployment"]


@dataclass(frozen=True)
class RegisteredDeployment:
    """One named entry: the deployment plus its routing metadata.

    ``index`` is the slot in the fabric's deployment table (shared by
    every alias of the same content); ``max_queue`` optionally caps the
    serving queue depth admitted for this name (``None`` = the server's
    global depth).
    """

    name: str
    index: int
    deployment: Deployment
    max_queue: int | None = None
    #: How many independent executions answer each request for this
    #: name.  ``1`` = plain serving; ``N > 1`` makes the pool run every
    #: request N times (distinct lanes when possible), runtime-assert
    #: the answers bit-identical, and only then reply.
    replicas: int = 1

    @property
    def fingerprint(self) -> str:
        return self.deployment.fingerprint

    def describe(self) -> dict:
        """JSON-ready summary (the ``repro deployments`` row)."""
        network = self.deployment.network
        return {
            "name": self.name,
            "index": self.index,
            "backend": self.deployment.backend,
            "fingerprint": self.fingerprint.split(":", 1)[1][:12],
            "input_shape": list(getattr(network, "input_shape", ())),
            "num_steps": getattr(network, "num_steps", None),
            "layers": len(getattr(network, "layers", ())),
            "max_queue": self.max_queue,
            "replicas": self.replicas,
        }


class DeploymentRegistry:
    """Named deployments over one shared, append-only table."""

    def __init__(self) -> None:
        self._table: list[Deployment] = []       # unique content, by index
        self._index_by_fp: dict[str, int] = {}
        self._entries: dict[str, RegisteredDeployment] = {}  # insertion order
        self._aliases: dict[str, str] = {}       # alias -> registered name
        # Aliases flip while requests resolve concurrently (blue/green
        # under live load) — every read/write of the maps is atomic.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        deployment: Deployment | None = None,
        *,
        network=None,
        config: AcceleratorConfig | None = None,
        backend: str = "vectorized",
        calibration: LatencyCalibration = DEFAULT_LATENCY,
        max_queue: int | None = None,
        replicas: int = 1,
    ) -> RegisteredDeployment:
        """Register a named deployment; returns its entry (idempotent).

        Pass a ready :class:`Deployment`, or its parts (``network`` is
        unwrapped from an ``SNNModel`` if needed).  Registering the same
        name with the same content returns the existing entry; the same
        name with different content raises; new names over existing
        content alias the existing table slot.
        """
        if not name or not isinstance(name, str):
            raise ConfigurationError(
                f"deployment name must be a non-empty string, got {name!r}")
        if replicas < 1:
            raise ConfigurationError(
                f"deployment {name!r} needs replicas >= 1, got {replicas}")
        if deployment is None:
            if network is None:
                raise ConfigurationError(
                    f"deployment {name!r} needs a Deployment or a network")
            network = getattr(network, "network", network)
            deployment = Deployment(
                network=network,
                config=config or AcceleratorConfig.for_network(network),
                backend=backend, calibration=calibration)
        fingerprint = deployment.fingerprint
        with self._lock:
            if name in self._aliases:
                raise ConfigurationError(
                    f"{name!r} is an alias (-> {self._aliases[name]!r}); "
                    "aliases and deployment names share one namespace")
            existing = self._entries.get(name)
            if existing is not None:
                if existing.fingerprint != fingerprint:
                    raise ConfigurationError(
                        f"deployment name {name!r} is already registered "
                        "with different content; names point at exactly "
                        "one model")
                return existing
            index = self._index_by_fp.get(fingerprint)
            if index is None:
                index = len(self._table)
                self._table.append(deployment)
                self._index_by_fp[fingerprint] = index
            entry = RegisteredDeployment(name=name, index=index,
                                         deployment=self._table[index],
                                         max_queue=max_queue,
                                         replicas=replicas)
            self._entries[name] = entry
            return entry

    # ------------------------------------------------------------------
    # Aliases — the blue/green unit
    # ------------------------------------------------------------------
    def alias(self, alias: str, target: str) -> str | None:
        """Point ``alias`` at the registered name ``target``; returns
        the alias's previous target (``None`` if new).

        The flip is atomic under the registry lock: every request that
        resolves the alias sees either the old target or the new one,
        never neither — which is what makes a blue/green rollout a
        zero-drop operation.  An alias over a registered deployment
        name, or at an unregistered/aliased target, is refused with
        :class:`~repro.errors.RolloutError`.
        """
        if not alias or not isinstance(alias, str):
            raise ConfigurationError(
                f"alias must be a non-empty string, got {alias!r}")
        with self._lock:
            if alias in self._entries:
                raise RolloutError(
                    f"cannot alias {alias!r}: a deployment is registered "
                    "under that name")
            if target not in self._entries:
                raise RolloutError(
                    f"cannot alias {alias!r} -> {target!r}: target is "
                    f"not a registered deployment (registered: "
                    f"{', '.join(self._entries) or '(none)'})")
            previous = self._aliases.get(alias)
            self._aliases[alias] = target
            return previous

    def alias_target(self, alias: str) -> str | None:
        """The registered name an alias points at (None = no alias)."""
        with self._lock:
            return self._aliases.get(alias)

    def aliases(self) -> dict[str, str]:
        """Snapshot of the alias map (alias -> registered name)."""
        with self._lock:
            return dict(self._aliases)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def resolve(self, deployment: str | int | None = None
                ) -> RegisteredDeployment:
        """Entry for a name, a table index, or the default (first) entry.

        Unknown names and out-of-table indices raise the same typed
        :class:`~repro.errors.DeploymentError` the executors raise for
        misrouted work items.  A name that is an **alias** resolves to
        its current target (one hop, read atomically — the blue/green
        contract).
        """
        with self._lock:
            if not self._entries:
                raise DeploymentError("no deployments registered")
            if deployment is None:
                return next(iter(self._entries.values()))
            if isinstance(deployment, str):
                entry = self._entries.get(deployment)
                if entry is None and deployment in self._aliases:
                    entry = self._entries.get(self._aliases[deployment])
                if entry is None:
                    raise DeploymentError(
                        f"unknown deployment {deployment!r}; registered: "
                        f"{', '.join(self.names()) or '(none)'}")
                return entry
            if not 0 <= int(deployment) < len(self._table):
                raise DeploymentError(
                    f"deployment index {deployment} outside the table "
                    f"({len(self._table)} deployment(s))")
            index = int(deployment)
            for entry in self._entries.values():
                if entry.index == index:
                    return entry
            raise DeploymentError(
                f"deployment index {index} has no registered name")

    def names(self) -> list[str]:
        with self._lock:
            return list(self._entries)

    def entries(self) -> list[RegisteredDeployment]:
        """All named entries, in registration order."""
        with self._lock:
            return list(self._entries.values())

    def table(self) -> list[Deployment]:
        """The fabric's deployment table (unique content, index order)."""
        with self._lock:
            return list(self._table)

    def describe(self) -> list[dict]:
        """JSON-ready rows for every entry (CLI listing, TCP op)."""
        return [entry.describe() for entry in self.entries()]

    def __len__(self) -> int:
        """Number of *named* entries (aliases not counted)."""
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries or name in self._aliases

    def __iter__(self):
        return iter(self._entries.values())

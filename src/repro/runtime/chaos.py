"""Deterministic fault injection for the worker fabric.

The fabric promises exactly-once, bit-identical results under lane
churn; :class:`ChaosPolicy` is how that promise gets *tested* instead of
asserted.  A policy is a seeded schedule of faults consulted at fixed
injection sites:

* ``dispatch`` — before a lane executes a chunk the group asks for the
  lane's fate; ``"kill"`` hard-kills the executor (SIGKILL for a process
  child, a closed socket for a remote lane) so the *real* crash
  machinery — eviction, requeue, probation re-admission — runs, not a
  simulation of it.
* ``exchange`` — before a remote lane's wire exchange; ``"sever"``
  closes the connection mid-protocol (the partition case).
* ``heartbeat`` — the monitor asks whether to corrupt a lane's liveness
  probe; a corrupted probe reads as a dead lane and triggers eviction
  even though the host is healthy (the false-positive case the
  probation machinery must absorb).
* ``client_frame`` — the serve TCP client asks for each outbound
  frame's fate: ``"dup"`` sends the frame twice (the exactly-once
  ledger must answer both identically while executing once), ``"delay"``
  sleeps before sending, ``"drop"`` swallows the frame (the reconnect /
  re-submission path must recover it).
* ``server_conn`` — the worker server asks, after answering a request,
  whether to hang up (the driver sees a vanished host).

**Determinism.**  Every decision is a pure function of ``(seed, site,
lane, k)`` where ``k`` counts that site+lane's prior draws — a SHA-256
over those four values, mapped to a uniform float.  Thread interleaving
can reorder *when* draws happen but never *what* the k-th draw for a
given site and lane decides, so the same seed replays the same fault
schedule exactly — the property the chaos suite's bit-equality
assertions stand on.

Explicit schedules override the dice: ``kill={"process-1": 3}`` kills
lane ``process-1`` on its 3rd dispatch, whatever the probabilities say.
``max_faults`` bounds the total injected faults so a long run cannot be
chewed to nothing, and every injected fault is appended to
:attr:`ChaosPolicy.events` for post-run assertions.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["ChaosEvent", "ChaosPolicy"]

#: The injection sites a policy may be consulted at.
SITES = ("dispatch", "exchange", "heartbeat", "client_frame",
         "server_conn")


@dataclass(frozen=True)
class ChaosEvent:
    """One injected fault, recorded for post-run assertions."""

    site: str                 # injection site name
    lane: str                 # lane / connection identity
    action: str               # "kill" | "sever" | "corrupt" | "dup" | ...
    draw: int                 # the site+lane draw index that fired
    at_monotonic: float = field(default_factory=time.monotonic)

    def to_dict(self) -> dict:
        return {"site": self.site, "lane": self.lane,
                "action": self.action, "draw": self.draw}


def _uniform(seed: int, site: str, lane: str, draw: int) -> float:
    """The k-th uniform for (seed, site, lane): stable under threading."""
    digest = hashlib.sha256(
        f"{seed}:{site}:{lane}:{draw}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


class ChaosPolicy:
    """A seeded, replayable fault schedule for the fabric.

    Parameters
    ----------
    seed:
        Drives every probabilistic draw; the same seed replays the same
        schedule exactly.
    kill:
        Explicit kill schedule ``{lane_name: k}`` — the lane is killed
        on its k-th dispatch (1-based).  Fires once per lane.
    sever:
        Explicit sever schedule ``{lane_name: k}`` — the remote lane's
        connection is closed on its k-th wire exchange (1-based).
    kill_prob / sever_prob / heartbeat_corrupt_prob:
        Per-draw probabilities for the probabilistic faults.
    dup_frame_prob / delay_frame_prob / drop_frame_prob:
        Per-frame probabilities on the serve client's outbound frames.
    delay_s:
        Sleep applied to a delayed frame.
    server_hangup_prob:
        Per-request probability that a worker server hangs the
        connection up after answering.
    max_faults:
        Hard cap on injected faults across all sites (``None`` = no
        cap); the cap makes long chaos runs converge instead of
        starving.
    """

    def __init__(
        self,
        seed: int = 0,
        kill: dict | None = None,
        sever: dict | None = None,
        kill_prob: float = 0.0,
        sever_prob: float = 0.0,
        heartbeat_corrupt_prob: float = 0.0,
        dup_frame_prob: float = 0.0,
        delay_frame_prob: float = 0.0,
        drop_frame_prob: float = 0.0,
        delay_s: float = 0.01,
        server_hangup_prob: float = 0.0,
        max_faults: int | None = None,
    ) -> None:
        for name, prob in (("kill_prob", kill_prob),
                           ("sever_prob", sever_prob),
                           ("heartbeat_corrupt_prob",
                            heartbeat_corrupt_prob),
                           ("dup_frame_prob", dup_frame_prob),
                           ("delay_frame_prob", delay_frame_prob),
                           ("drop_frame_prob", drop_frame_prob),
                           ("server_hangup_prob", server_hangup_prob)):
            if not 0.0 <= prob <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {prob}")
        self.seed = int(seed)
        self.kill = dict(kill or {})
        self.sever = dict(sever or {})
        self.kill_prob = kill_prob
        self.sever_prob = sever_prob
        self.heartbeat_corrupt_prob = heartbeat_corrupt_prob
        self.dup_frame_prob = dup_frame_prob
        self.delay_frame_prob = delay_frame_prob
        self.drop_frame_prob = drop_frame_prob
        self.delay_s = delay_s
        self.server_hangup_prob = server_hangup_prob
        self.max_faults = max_faults
        self.events: list[ChaosEvent] = []
        self._draws: dict[tuple[str, str], int] = {}
        self._fired: set[tuple[str, str]] = set()   # one-shot schedules
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Core draw machinery
    # ------------------------------------------------------------------
    def _next_draw(self, site: str, lane: str) -> int:
        key = (site, lane)
        draw = self._draws.get(key, 0) + 1
        self._draws[key] = draw
        return draw

    def _budget_left(self) -> bool:
        return (self.max_faults is None
                or len(self.events) < self.max_faults)

    def _record(self, site: str, lane: str, action: str,
                draw: int) -> None:
        self.events.append(ChaosEvent(site=site, lane=lane,
                                      action=action, draw=draw))
        # Mirror every fault into the unified telemetry plane: a counter
        # series per (site, action) and a flight-recorder event, so
        # ``repro top`` and the scrape endpoint see the drill live.
        from repro.telemetry import get_registry, get_tracer
        get_registry().counter(
            "repro_chaos_faults_total",
            "Faults injected by the chaos policy, by site and action",
            labelnames=("site", "action"),
        ).labels(site=site, action=action).inc()
        get_tracer().event("chaos_fault", site=site, lane=lane,
                           action=action, draw=draw)

    def _decide(self, site: str, lane: str, prob: float,
                schedule: dict | None, action: str) -> bool:
        """One draw at a site; True means the fault fires (and is
        recorded).  Lock-held bookkeeping keeps the per-(site, lane)
        draw counter exact under concurrent dispatchers."""
        with self._lock:
            draw = self._next_draw(site, lane)
            if not self._budget_left():
                return False
            if schedule is not None and lane in schedule:
                if (site, lane) not in self._fired \
                        and draw >= int(schedule[lane]):
                    self._fired.add((site, lane))
                    self._record(site, lane, action, draw)
                    return True
            if prob > 0.0 and _uniform(self.seed, site, lane,
                                       draw) < prob:
                self._record(site, lane, action, draw)
                return True
            return False

    # ------------------------------------------------------------------
    # Injection sites
    # ------------------------------------------------------------------
    def dispatch_fate(self, lane: str) -> str | None:
        """Consulted by the group before a lane executes a chunk."""
        if self._decide("dispatch", lane, self.kill_prob, self.kill,
                        "kill"):
            return "kill"
        return None

    def exchange_fate(self, lane: str) -> str | None:
        """Consulted by a remote lane before each wire exchange."""
        if self._decide("exchange", lane, self.sever_prob, self.sever,
                        "sever"):
            return "sever"
        return None

    def corrupt_heartbeat(self, lane: str) -> bool:
        """Consulted by the monitor: report this healthy lane as dead?"""
        return self._decide("heartbeat", lane,
                            self.heartbeat_corrupt_prob, None, "corrupt")

    def frame_fate(self, lane: str = "client") -> str | None:
        """Consulted by the serve TCP client per outbound frame.

        At most one fate per frame, drawn in fixed order (drop beats dup
        beats delay) so a schedule replays exactly.
        """
        if self._decide("client_frame", lane, self.drop_frame_prob,
                        None, "drop"):
            return "drop"
        if self._decide("client_frame", lane, self.dup_frame_prob,
                        None, "dup"):
            return "dup"
        if self._decide("client_frame", lane, self.delay_frame_prob,
                        None, "delay"):
            return "delay"
        return None

    def server_hangup(self, lane: str = "conn") -> bool:
        """Consulted by the worker server after answering a request."""
        return self._decide("server_conn", lane,
                            self.server_hangup_prob, None, "hangup")

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """JSON-ready fault counts by site and action."""
        counts: dict[str, int] = {}
        for event in list(self.events):
            key = f"{event.site}:{event.action}"
            counts[key] = counts.get(key, 0) + 1
        return {"seed": self.seed, "faults": len(self.events),
                "by_site": counts}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ChaosPolicy(seed={self.seed}, "
                f"faults={len(self.events)})")

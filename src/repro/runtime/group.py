"""The WorkerGroup scheduler: one queue, many lanes, no deadlocks.

:class:`WorkerGroup` is the single worker-lifecycle owner for the whole
codebase — the serving pool and the sweep driver are thin policy layers
over it.  Mechanics:

* **Per-lane queues + work stealing.**  Every worker has a deque;
  ``submit`` places items on the shortest live queue (or an explicit
  lane for static assignment).  An idle lane steals from the tail of the
  longest peer queue, so a skewed cost distribution cannot tail-block
  the group.  Stealing only moves *scheduling*; results are keyed by
  item and merged by integer counters, so any interleaving is
  bit-identical (the fabric's acceptance contract).
* **Crash containment.**  A lane whose ``execute`` raises
  :class:`~repro.errors.WorkerCrashError` (child killed, connection
  dropped, budget blown) is evicted: its in-flight item and queued
  backlog are requeued on healthy lanes and ``metrics.worker_crashes``
  counts the event.  Only when *no* healthy lane remains do the orphaned
  futures fail.  An item that has crashed ``max_attempts`` lanes is
  treated as poison and failed instead of requeued.
* **Heartbeats.**  A monitor thread pings idle lanes every
  ``heartbeat_s`` seconds; a lane that stops answering is evicted the
  same way, so a silently dead remote host cannot strand queued work.
* **Elasticity.**  The lane set is not fixed at ``start()``:
  :meth:`WorkerGroup.add_lane` admits a new worker (or a joining remote
  host, via :class:`~repro.runtime.remote.GroupListener`) into a running
  group, :meth:`WorkerGroup.remove_lane` drains one out (its queued work
  requeues on peers; its in-flight item finishes first), and
  :meth:`WorkerGroup.add_deployments` grows the deployment table
  mid-run, re-registering it with every live lane.  An evicted lane is
  not gone for good: the monitor keeps it on **probation** and, after a
  successful probe (reconnect + redeploy + ping), re-admits it with a
  fresh dispatcher — a host that rebooted rejoins by itself.  Lane churn
  only ever moves *scheduling*; any mid-run join/leave/re-admission
  merges bit-identically to a serial run (the fabric's acceptance
  contract, extended).

Results come back as :class:`concurrent.futures.Future` objects, which
both the synchronous sweep driver (``future.result()``) and the asyncio
serving pool (``asyncio.wrap_future``) consume directly.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, ReproError, WorkerCrashError
from repro.runtime.chaos import ChaosPolicy
from repro.telemetry import get_registry
from repro.telemetry import get_tracer as _get_tracer
from repro.runtime.registry import DeploymentRegistry
from repro.runtime.work import (Deployment, ResultLedger, WorkItem,
                                WorkResult)
from repro.runtime.workers import Worker, create_workers

__all__ = ["GroupMetrics", "WorkerGroup"]


def _fabric_executed(kind: str, lane: str, completed: int) -> None:
    """Feed the unified registry's fabric counter (one cached child per
    lane — never a per-item allocation)."""
    if completed:
        get_registry().counter(
            "repro_fabric_items_executed_total",
            "Work items completed by the fabric, by lane",
            labelnames=("lane", "kind"),
        ).labels(lane=lane, kind=kind).inc(completed)


def _fabric_inflight(lane: str, depth: int) -> None:
    """Per-lane in-flight-depth gauge: how many dispatch chunks the lane
    currently has on the wire / in its child."""
    get_registry().gauge(
        "repro_fabric_inflight_chunks",
        "Dispatch chunks currently in flight, by lane",
        labelnames=("lane",),
    ).labels(lane=lane).set(depth)


_WINDOW_BUCKETS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0)


def _fabric_window_occupancy(lane: str, depth: int) -> None:
    """Window-occupancy histogram, observed at each chunk send: the
    in-flight depth the chunk joined (1 = stop-and-wait behavior)."""
    get_registry().histogram(
        "repro_fabric_window_occupancy",
        "In-flight window depth observed at each chunk send, by lane",
        labelnames=("lane",),
        buckets=_WINDOW_BUCKETS,
    ).labels(lane=lane).observe(float(depth))


#: Fallback per-chunk dispatch overhead for the credit derivation when
#: no calibrated figure was supplied — mirrors
#: ``repro.core.engine.calibrate.DEFAULT_DISPATCH_COST_S`` (importing it
#: here would cycle: calibrate measures dispatch cost *through* a
#: process group).
_DEFAULT_DISPATCH_COST_S = 2e-3

#: Hard ceiling on any lane's in-flight window, credit-derived or not.
_MAX_WINDOW = 8


@dataclass
class GroupMetrics:
    """Scheduling counters, updated live under the group lock."""

    executed: dict = field(default_factory=dict)   # worker name -> items
    stolen: int = 0                                # items taken from peers
    requeued: int = 0                              # items moved off a crash
    retries: int = 0                               # re-executions (attempt>1)
    poisoned: int = 0                              # retry budget exhausted
    deduped: int = 0                               # answered from the ledger
    worker_crashes: int = 0                        # lanes evicted
    lanes_added: int = 0                           # lanes admitted live
    lanes_removed: int = 0                         # lanes drained out live
    readmitted: int = 0                            # evictions undone
    batched: int = 0                               # items shipped in chunks
    pipelined: int = 0                             # items sent with >=1
                                                   # chunk already in flight
    last_heartbeat: dict = field(default_factory=dict)  # name -> monotonic

    def to_dict(self) -> dict:
        # last_heartbeat holds raw time.monotonic() readings — opaque
        # outside this process — so liveness is exported as an *age* in
        # seconds per lane, which a snapshot reader can act on directly.
        now = time.monotonic()
        return {
            "executed": dict(self.executed),
            "stolen": self.stolen,
            "requeued": self.requeued,
            "retries": self.retries,
            "poisoned": self.poisoned,
            "deduped": self.deduped,
            "worker_crashes": self.worker_crashes,
            "lanes_added": self.lanes_added,
            "lanes_removed": self.lanes_removed,
            "readmitted": self.readmitted,
            "batched": self.batched,
            "pipelined": self.pipelined,
            "heartbeat_age_s": {
                name: round(max(0.0, now - seen), 3)
                for name, seen in self.last_heartbeat.items()},
        }


class _Pending:
    """One queued item plus its completion future and retry budget."""

    __slots__ = ("item", "future", "attempts")

    def __init__(self, item: WorkItem) -> None:
        self.item = item
        self.future: Future = Future()
        self.attempts = 0


class WorkerGroup:
    """Schedules :class:`WorkItem` batches across worker lanes.

    Parameters
    ----------
    workers:
        Started-or-not :class:`~repro.runtime.workers.Worker` lanes (the
        group starts them).  Build from specs with
        :func:`~repro.runtime.workers.create_workers`.
    deployments:
        The deployment table registered with every lane at start — a
        plain list (positional indices, the sweep driver's contract) or
        a :class:`~repro.runtime.registry.DeploymentRegistry` (named
        multi-model routing; the group schedules against its table).
    steal:
        Idle lanes steal queued items from the busiest peer (default).
        ``False`` pins items to their assigned lane — the static-shard
        baseline the stealing benchmark is measured against (crash
        requeues still move work; correctness beats pinning).
    heartbeat_s:
        Liveness-probe period for idle lanes.
    max_attempts:
        Crash-requeue budget per item before it is failed as poison.
    readmit:
        Keep evicted lanes on probation and re-admit one whose probe
        (restart + redeploy + ping) succeeds (default).  ``False``
        restores permanent eviction.
    probation_s:
        Delay before the first re-admission probe of an evicted lane
        (default: ``2 * heartbeat_s``); failed probes retry each period.
    max_batch_items:
        How many queued items a dispatcher may drain from its **own**
        queue into one ``execute_many`` chunk (one wire frame / child
        round-trip per chunk).  ``1`` restores strict item-at-a-time
        dispatch.  Stolen items always execute alone — batching never
        changes which lane runs what, so results stay bit-identical.
    window:
        In-flight chunk window per lane.  ``None`` (default) derives a
        credit per lane from the calibrated dispatch cost vs. that
        lane's measured service time — enough chunks in flight to hide
        dispatch/wire overhead behind compute, no more.  An explicit
        integer overrides the credit (``1`` = stop-and-wait).  Either
        way the window clamps at the executor's ``pipeline_depth``
        (inline thread lanes never pipeline) and at 8.  Windowed-but-
        unsent items stay on the lane's queue, so peers steal them
        exactly as before; an eviction requeues the *entire* in-flight
        window exactly-once through the result ledger.
    dispatch_cost_s:
        Calibrated per-chunk dispatch overhead (encode + transfer) used
        by the credit derivation; ``None`` falls back to the historical
        constant.  Pass ``CalibrationTable.dispatch_cost_s`` when a
        measured figure exists.
    chaos:
        Optional :class:`~repro.runtime.chaos.ChaosPolicy` consulted at
        the group's injection sites (dispatch kills, heartbeat
        corruption) and propagated to every lane (remote lanes consult
        it per wire exchange).  A kill or corrupted heartbeat is only
        honored while at least one *other* healthy lane exists — chaos
        degrades the group, it never totals it.
    ledger:
        Completed-result ledger keyed by :attr:`WorkItem.key` (one is
        created when omitted).  Re-submissions, crash-requeues and
        duplicated frames whose key already completed are answered from
        the ledger instead of executing again — the exactly-once
        guarantee (``metrics.deduped`` counts those answers).
    """

    def __init__(
        self,
        workers: list[Worker],
        deployments: list[Deployment] | tuple | DeploymentRegistry = (),
        steal: bool = True,
        heartbeat_s: float = 2.0,
        ping_timeout_s: float = 5.0,
        max_attempts: int = 3,
        readmit: bool = True,
        probation_s: float | None = None,
        max_batch_items: int = 8,
        window: int | None = None,
        dispatch_cost_s: float | None = None,
        chaos: ChaosPolicy | None = None,
        ledger: ResultLedger | None = None,
    ) -> None:
        if not workers:
            raise ConfigurationError("worker group needs >= 1 worker")
        names = [worker.name for worker in workers]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"worker names must be unique, got {names}")
        self.workers = list(workers)
        if isinstance(deployments, DeploymentRegistry):
            self.registry: DeploymentRegistry | None = deployments
            self._table = deployments.table()
        else:
            self.registry = None
            self._table = list(deployments)
        self.steal = steal
        self.heartbeat_s = heartbeat_s
        self.ping_timeout_s = ping_timeout_s
        self.max_attempts = max_attempts
        self.readmit = readmit
        self.probation_s = (2 * heartbeat_s if probation_s is None
                            else probation_s)
        if max_batch_items < 1:
            raise ConfigurationError(
                f"max_batch_items must be >= 1, got {max_batch_items}")
        self.max_batch_items = max_batch_items
        if window is not None and window < 1:
            raise ConfigurationError(
                f"window must be >= 1, got {window}")
        self.window = window
        self.dispatch_cost_s = dispatch_cost_s
        # Per-lane EWMA of chunk service time (lane-side compute
        # seconds), feeding the credit derivation.  Keyed by lane index;
        # guarded by the group lock.
        self._service_ewma: dict[int, float] = {}
        self.chaos = chaos
        self.ledger = ledger if ledger is not None else ResultLedger()
        for worker in self.workers:
            worker.chaos = chaos
        self.metrics = GroupMetrics(
            executed={name: 0 for name in names})

        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._queues: list[deque] = [deque() for _ in self.workers]
        # Per lane: the list of _Pending items currently in flight
        # (None when idle; a chunk is the whole list).
        self._busy: list[list[_Pending] | None] = [None] * len(self.workers)
        self._dead: set[int] = set()
        self._removed: set[int] = set()      # drained out, never readmitted
        self._probation_due: dict[int, float] = {}
        self._stopping = False
        self._threads: list[threading.Thread] = []
        self._monitor_stop = threading.Event()
        self._started = False
        # Serializes table growth and lane admission against each other
        # (both re-register the deployment table with live lanes).
        self._elastic_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        return self._started

    @property
    def size(self) -> int:
        return len(self.workers)

    @property
    def deployments(self) -> list[Deployment]:
        """The current deployment table (snapshot, index order)."""
        with self._lock:
            return list(self._table)

    def alive_workers(self) -> list[str]:
        with self._lock:
            return [worker.name for index, worker
                    in enumerate(self.workers) if index not in self._dead]

    def start(self) -> "WorkerGroup":
        """Start every lane, register deployments, spin up dispatchers.

        A lane that fails to start (e.g. an unreachable remote host) is
        marked dead immediately and counted as a crash; the group comes
        up as long as at least one lane is healthy.
        """
        if self._started:
            raise ConfigurationError("worker group already started")
        table = self.deployments
        for index, worker in enumerate(self.workers):
            try:
                worker.start()
                worker.deploy(table)
            except WorkerCrashError:
                with self._cond:
                    self._dead.add(index)
                    self.metrics.worker_crashes += 1
                    self._probation_due[index] = (time.monotonic()
                                                  + self.probation_s)
                continue
            self.metrics.last_heartbeat[worker.name] = time.monotonic()
        if len(self._dead) == len(self.workers):
            raise WorkerCrashError(
                "no worker in the group could be started")
        for index in range(len(self.workers)):
            self._spawn_dispatcher(index)
        monitor = threading.Thread(target=self._monitor,
                                   name="repro-runtime-monitor",
                                   daemon=True)
        monitor.start()
        self._threads.append(monitor)
        self._started = True
        return self

    def _spawn_dispatcher(self, index: int) -> None:
        thread = threading.Thread(
            target=self._dispatch, args=(index,),
            name=f"repro-runtime-{self.workers[index].name}",
            daemon=True)
        thread.start()
        self._threads.append(thread)

    def __enter__(self) -> "WorkerGroup":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def stop(self) -> None:
        """Stop dispatching; queued-but-unstarted items fail fast."""
        with self._cond:
            self._stopping = True
            orphans = [pending for queue in self._queues
                       for pending in queue]
            for queue in self._queues:
                queue.clear()
            self._cond.notify_all()
        self._monitor_stop.set()
        for pending in orphans:
            if not pending.future.done():
                pending.future.set_exception(
                    WorkerCrashError("worker group stopped before the "
                                     "item was executed"))
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads.clear()
        for worker in list(self.workers):
            worker.close()
        self._started = False

    # ------------------------------------------------------------------
    # Elasticity: lane churn and table growth on a live group
    # ------------------------------------------------------------------
    def add_lane(self, worker: Worker | str,
                 token: str | None = None) -> str:
        """Admit a worker into the (possibly running) group; returns its
        group-unique name.

        ``worker`` is a started-or-not :class:`Worker` or a spec string
        (``"thread"``, ``"process"``, ``"host:port"``; ``token`` rides to
        remote specs).  On a running group the lane is started, receives
        the current deployment table and gets its own dispatcher; before
        ``start()`` it simply joins the initial lane set.  Admission
        failures (unreachable host, bad handshake) raise
        :class:`~repro.errors.WorkerCrashError` without touching the
        group.
        """
        if isinstance(worker, str):
            worker = create_workers([worker], token=token)[0]
        worker.chaos = self.chaos
        with self._elastic_lock:
            existing = {peer.name for peer in self.workers}
            if worker.name in existing:
                base, suffix = worker.name, 2
                while f"{base}~{suffix}" in existing:
                    suffix += 1
                worker.name = f"{base}~{suffix}"
            if not self._started:
                self.workers.append(worker)
                self._queues.append(deque())
                self._busy.append(None)
                self.metrics.executed[worker.name] = 0
                return worker.name
            worker.start()
            worker.deploy(self.deployments)
            with self._cond:
                if self._stopping:
                    worker.close()
                    raise ConfigurationError("worker group is stopped")
                self.workers.append(worker)
                self._queues.append(deque())
                self._busy.append(None)
                index = len(self.workers) - 1
                self.metrics.executed[worker.name] = 0
                self.metrics.lanes_added += 1
                self.metrics.last_heartbeat[worker.name] = time.monotonic()
                self._cond.notify_all()
            self._spawn_dispatcher(index)
        return worker.name

    def remove_lane(self, name: str) -> None:
        """Drain a lane out of a running group.

        Its queued items requeue on live peers immediately; an item it
        is executing right now completes normally (the result is kept —
        removal is graceful, not an eviction).  The lane is closed once
        its dispatcher parks and is never put on probation.  Removing
        the last live lane is refused — a group must keep executing.
        """
        with self._cond:
            matches = [i for i, worker in enumerate(self.workers)
                       if worker.name == name]
            if not matches:
                raise ConfigurationError(
                    f"no lane named {name!r} in the group")
            index = matches[0]
            if index in self._removed:
                return
            alive = [i for i in range(len(self.workers))
                     if i not in self._dead and i != index]
            if not alive:
                raise ConfigurationError(
                    f"cannot remove {name!r}: it is the last live lane")
            already_dead = index in self._dead
            self._dead.add(index)
            self._removed.add(index)
            self._probation_due.pop(index, None)
            orphans = list(self._queues[index])
            self._queues[index].clear()
            if not already_dead:
                self.metrics.lanes_removed += 1
            for pending in orphans:
                target = min(alive,
                             key=lambda i: (len(self._queues[i]), i))
                self._queues[target].append(pending)
                self.metrics.requeued += 1
            self._cond.notify_all()

    def add_deployments(self, deployments) -> list[int]:
        """Grow the deployment table mid-run; returns one table index per
        input deployment (content-equal inputs share a slot).

        The table is append-only, so indices already baked into queued
        work items stay valid; genuinely new entries are re-registered
        with every live lane before this returns (a lane that fails the
        re-deploy is evicted exactly like a crashed one).  This is what
        lets one shared group serve a heterogeneous stream of sweeps and
        serving traffic: each caller appends its models and routes by
        the returned indices.
        """
        deployments = list(deployments)
        with self._elastic_lock:
            with self._lock:
                known = {dep.fingerprint: i
                         for i, dep in enumerate(self._table)}
                indices: list[int] = []
                grew = False
                for deployment in deployments:
                    index = known.get(deployment.fingerprint)
                    if index is None:
                        index = len(self._table)
                        self._table.append(deployment)
                        known[deployment.fingerprint] = index
                        grew = True
                    indices.append(index)
                table = list(self._table)
            if grew and self._started:
                for lane, worker in enumerate(list(self.workers)):
                    with self._lock:
                        dead = lane in self._dead
                    if dead:
                        continue
                    try:
                        worker.deploy(table)
                    except WorkerCrashError as error:
                        self._evict(lane, error)
        return indices

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, item: WorkItem, worker: int | None = None) -> Future:
        """Enqueue one item; returns its completion future.

        ``worker`` pins the item to a lane index (static assignment);
        the default picks the live lane with the shortest queue.

        An item whose idempotency key already completed here is
        answered from the result ledger without touching a lane — a
        re-submitted (retried, duplicated) request costs one lookup.
        """
        pending = _Pending(item)
        recorded = self.ledger.get(item.key)
        if recorded is not None:
            with self._cond:
                self.metrics.deduped += 1
            pending.future.set_result(recorded)
            return pending.future
        with self._cond:
            if self._stopping:
                raise ConfigurationError("worker group is stopped")
            index = self._pick_lane(worker)
            if index is None:
                pending.future.set_exception(WorkerCrashError(
                    "no healthy worker left in the group"))
                return pending.future
            self._queues[index].append(pending)
            self._cond.notify_all()
        return pending.future

    def submit_many(self, items) -> list[Future]:
        """Enqueue a whole batch under one lock pass; returns futures.

        Items spread across live lanes by current load, landing as
        contiguous runs per lane — which is exactly what lets each
        dispatcher drain its queue into ``execute_many`` chunks (one
        wire frame per chunk) instead of paying per-item framing.
        """
        pendings = [_Pending(item) for item in items]
        if not pendings:
            return []
        fresh = []
        for pending in pendings:
            recorded = self.ledger.get(pending.item.key)
            if recorded is not None:
                pending.future.set_result(recorded)
            else:
                fresh.append(pending)
        with self._cond:
            if self._stopping:
                raise ConfigurationError("worker group is stopped")
            self.metrics.deduped += len(pendings) - len(fresh)
            alive = [i for i in range(len(self.workers))
                     if i not in self._dead]
            if not alive:
                for pending in fresh:
                    pending.future.set_exception(WorkerCrashError(
                        "no healthy worker left in the group"))
                return [pending.future for pending in pendings]
            loads = {i: len(self._queues[i]) for i in alive}
            for pending in fresh:
                target = min(alive, key=lambda i: (
                    loads[i], self._busy[i] is not None, i))
                self._queues[target].append(pending)
                loads[target] += 1
            self._cond.notify_all()
        return [pending.future for pending in pendings]

    def run(self, items, assignment=None, result_callback=None) -> list:
        """Execute a batch of items; returns results in input order.

        ``assignment`` optionally maps each item to a lane index (static
        sharding); ``result_callback`` fires once per completed item
        from a dispatcher thread (progress reporting).
        """
        items = list(items)
        if assignment is not None and len(assignment) != len(items):
            raise ConfigurationError(
                f"{len(items)} items but {len(assignment)} assignments")
        if assignment is None:
            futures = self.submit_many(items)
        else:
            futures = [self.submit(item, worker=assignment[position])
                       for position, item in enumerate(items)]
        if result_callback is not None:
            for future in futures:
                future.add_done_callback(
                    lambda f: (result_callback(f.result())
                               if f.exception() is None else None))
        return [future.result() for future in futures]

    def _pick_lane(self, explicit: int | None) -> int | None:
        """Lane index for a new item (under the lock); None = all dead."""
        alive = [i for i in range(len(self.workers))
                 if i not in self._dead]
        if not alive:
            return None
        if explicit is not None:
            if not 0 <= explicit < len(self.workers):
                raise ConfigurationError(
                    f"worker index {explicit} out of range "
                    f"(0..{len(self.workers) - 1})")
            if explicit not in self._dead:
                return explicit
            # Pinned lane is dead: fall through to least-loaded.
        return min(alive, key=lambda i: (len(self._queues[i]),
                                         self._busy[i] is not None, i))

    # ------------------------------------------------------------------
    # Dispatch + stealing
    # ------------------------------------------------------------------
    def _next_pending(self, index: int) -> _Pending | None:
        """Own queue first, then (if enabled) steal; lock must be held."""
        queue = self._queues[index]
        if queue:
            return queue.popleft()
        if not self.steal:
            return None
        donors = [i for i in range(len(self.workers))
                  if i != index and i not in self._dead
                  and self._queues[i]]
        if not donors:
            return None
        donor = max(donors, key=lambda i: (len(self._queues[i]), -i))
        self.metrics.stolen += 1
        return self._queues[donor].pop()  # steal from the tail

    def _build_batch_locked(self, index: int, pending: _Pending):
        """Grow a dispatch chunk behind ``pending``; lock must be held.

        Chunking drains more of the OWN queue behind the first item (a
        stolen item arrives alone — its donor's queue is not ours to
        drain).  With stealing on and live peers around, take at most
        half the backlog: a chunk must amortize framing, not vacuum up
        the queue idle peers would have stolen from.  Exactly-once: an
        already-answered item (resolved by a peer while this copy sat
        queued) or a key the ledger has completed never reaches the
        lane — those come back in ``ledgered`` for the caller to
        resolve outside the lock.
        """
        candidates = [pending]
        queue = self._queues[index]
        budget = self.max_batch_items - 1
        if self.steal and any(
                i != index and i not in self._dead
                for i in range(len(self.workers))):
            budget = min(budget, (len(queue) + 1) // 2)
        while queue and budget > 0:
            candidates.append(queue.popleft())
            budget -= 1
        batch: list[_Pending] = []
        ledgered: list[tuple[_Pending, WorkResult]] = []
        for candidate in candidates:
            if candidate.future.done():
                continue
            recorded = self.ledger.get(candidate.item.key)
            if recorded is not None:
                self.metrics.deduped += 1
                ledgered.append((candidate, recorded))
            else:
                batch.append(candidate)
        return batch, ledgered

    def _settle_chunk(self, index: int, worker: Worker,
                      batch: list[_Pending], outcomes: list) -> None:
        """Book a completed chunk: metrics, spans, ledger, futures."""
        completed = sum(1 for outcome in outcomes
                        if isinstance(outcome, WorkResult))
        with self._cond:
            self.metrics.executed[worker.name] += completed
            if len(batch) > 1:
                self.metrics.batched += len(batch)
            self.metrics.last_heartbeat[worker.name] = time.monotonic()
            # Feed the credit derivation: EWMA of lane-side compute
            # seconds per chunk (wire/dispatch overhead excluded — the
            # window exists to hide exactly that behind this).
            service = sum(float(outcome.elapsed_s) for outcome in outcomes
                          if isinstance(outcome, WorkResult))
            if service > 0:
                prior = self._service_ewma.get(index)
                self._service_ewma[index] = (
                    service if prior is None
                    else 0.5 * prior + 0.5 * service)
        # Lane-side spans (lane_execute, remote exchange) come home on
        # the results; merge them so the submitter's flight recorder
        # holds the whole tree.  No-ops unless this process has tracing
        # on.
        tracer = _get_tracer()
        if tracer.enabled:
            for outcome in outcomes:
                if isinstance(outcome, WorkResult):
                    tracer.record_foreign(outcome.spans)
        _fabric_executed(worker.kind, worker.name, completed)
        for pending, outcome in zip(batch, outcomes):
            if isinstance(outcome, WorkResult):
                self.ledger.record(pending.item.key, outcome)
            if pending.future.done():
                continue
            if isinstance(outcome, WorkResult):
                pending.future.set_result(outcome)
            elif isinstance(outcome, Exception):
                pending.future.set_exception(outcome)
            else:
                pending.future.set_exception(WorkerCrashError(
                    f"worker {worker.name!r} returned no "
                    f"result for item {pending.item.item_id}"))

    def _lane_window_locked(self, index: int, worker: Worker) -> int:
        """The lane's in-flight chunk credit; lock must be held.

        Explicit ``window`` wins; otherwise the credit covers the
        calibrated dispatch cost with chunks of measured service time —
        ``1 + ceil(dispatch / service)`` — so a lane whose compute
        dwarfs its dispatch overhead stays effectively stop-and-wait
        while a wire-bound lane keeps enough chunks in flight to never
        idle.  Always clamped to the executor's ``pipeline_depth`` and
        the group-wide ceiling; an uncalibrated lane (no chunk served
        yet) starts stop-and-wait.
        """
        depth = max(1, int(getattr(worker, "pipeline_depth", 1)))
        cap = min(depth, _MAX_WINDOW)
        if self.window is not None:
            return max(1, min(self.window, cap))
        service = self._service_ewma.get(index)
        if not service:
            return 1
        dispatch = (self.dispatch_cost_s if self.dispatch_cost_s
                    else _DEFAULT_DISPATCH_COST_S)
        credit = 1 + math.ceil(dispatch / max(service, 1e-9))
        return max(1, min(credit, cap))

    def _dispatch(self, index: int) -> None:
        worker = self.workers[index]
        if getattr(worker, "pipeline_depth", 1) > 1:
            self._dispatch_windowed(index, worker)
        else:
            self._dispatch_serial(index, worker)

    def _dispatch_serial(self, index: int, worker: Worker) -> None:
        """Stop-and-wait dispatch: one chunk in flight, blocking."""
        while True:
            with self._cond:
                pending = None
                removed = False
                while pending is None:
                    if self._stopping or index in self._dead:
                        removed = index in self._removed
                        break
                    pending = self._next_pending(index)
                    if pending is None:
                        self._cond.wait(timeout=0.1)
                batch = None
                ledgered: list[tuple[_Pending, WorkResult]] = []
                if pending is not None:
                    batch, ledgered = self._build_batch_locked(index,
                                                               pending)
                    self._busy[index] = batch if batch else None
            for stale, recorded in ledgered:
                if not stale.future.done():
                    stale.future.set_result(recorded)
            if batch is None:
                if removed:
                    # Graceful drain: the dispatcher owns the close (an
                    # in-flight item was allowed to finish first).
                    worker.close()
                return
            if not batch:
                continue
            with self._cond:
                for pending in batch:
                    pending.attempts += 1
                    if pending.attempts > 1:
                        self.metrics.retries += 1
            if (self.chaos is not None and self._others_alive(index)
                    and self.chaos.dispatch_fate(worker.name) == "kill"):
                # Hard-kill the executor, then dispatch anyway: the
                # execute below fails with the lane's *real* crash
                # signature (broken child pool, dead socket), driving
                # the genuine evict → requeue → probation path.
                worker.kill()
            try:
                if len(batch) == 1:
                    outcomes: list = [worker.execute(batch[0].item)]
                else:
                    outcomes = worker.execute_many(
                        [pending.item for pending in batch])
                    if (not isinstance(outcomes, list)
                            or len(outcomes) != len(batch)):
                        raise WorkerCrashError(
                            f"worker {worker.name!r} answered "
                            "a misaligned chunk")
            except WorkerCrashError as error:
                self._evict(index, error, in_flight=batch)
                return
            except Exception as error:  # noqa: BLE001 — fail the items,
                # not the group: a task-level error (bad shapes, an
                # engine bug) leaves the lane healthy.
                with self._cond:
                    self._busy[index] = None
                for pending in batch:
                    if not pending.future.done():
                        pending.future.set_exception(error)
            else:
                with self._cond:
                    self._busy[index] = None
                self._settle_chunk(index, worker, batch, outcomes)

    def _dispatch_windowed(self, index: int, worker: Worker) -> None:
        """Pipelined dispatch: keep up to W chunks in flight.

        ``send_chunk`` puts chunk N+1 on the wire (or in the child's
        submission queue) while chunk N computes; ``collect_chunk``
        reaps strictly in send order.  The window only holds chunks
        that have actually been *sent* — queued items stay on the
        lane's deque until the moment of send, so peers steal them
        exactly as in stop-and-wait.  ``self._busy[index]`` always
        mirrors the full in-flight window (flattened), and an eviction
        hands the whole window to the requeue machinery in one piece.
        """
        window: deque[list[_Pending]] = deque()

        def _sync_busy_locked() -> None:
            flat = [pending for chunk in window for pending in chunk]
            self._busy[index] = flat or None
            _fabric_inflight(worker.name, len(window))

        while True:
            batch = None
            ledgered: list[tuple[_Pending, WorkResult]] = []
            parked = False
            removed = False
            with self._cond:
                while True:
                    if self._stopping or index in self._dead:
                        parked = True
                        removed = index in self._removed
                        break
                    if len(window) < self._lane_window_locked(index,
                                                              worker):
                        pending = self._next_pending(index)
                        if pending is not None:
                            batch, ledgered = self._build_batch_locked(
                                index, pending)
                            for item in batch:
                                item.attempts += 1
                                if item.attempts > 1:
                                    self.metrics.retries += 1
                            break
                    if window:
                        break  # window full or queue empty: collect
                    self._cond.wait(timeout=0.1)
            for stale, recorded in ledgered:
                if not stale.future.done():
                    stale.future.set_result(recorded)
            if parked:
                self._drain_window(index, worker, window, removed)
                return
            if batch is not None and not batch:
                continue  # the whole pull was answered from the ledger
            if batch:
                if (self.chaos is not None and self._others_alive(index)
                        and self.chaos.dispatch_fate(worker.name)
                        == "kill"):
                    # Hard-kill with a window open: the send (or a later
                    # collect) fails with the lane's real crash
                    # signature and the WHOLE window requeues.
                    worker.kill()
                try:
                    worker.send_chunk(
                        [pending.item for pending in batch])
                except WorkerCrashError as error:
                    in_flight = [pending for chunk in window
                                 for pending in chunk]
                    in_flight.extend(batch)
                    self._evict(index, error, in_flight=in_flight)
                    return
                except Exception as error:  # noqa: BLE001 — task-level
                    # encode failure on a healthy lane: fail the chunk,
                    # keep the lane (and its window) going.
                    for pending in batch:
                        if not pending.future.done():
                            pending.future.set_exception(error)
                    continue
                window.append(batch)
                with self._cond:
                    if len(window) > 1:
                        self.metrics.pipelined += len(batch)
                    _sync_busy_locked()
                _fabric_window_occupancy(worker.name, len(window))
                continue  # try to fill the window before collecting
            chunk = window[0]
            try:
                outcomes = worker.collect_chunk()
                if (not isinstance(outcomes, list)
                        or len(outcomes) != len(chunk)):
                    raise WorkerCrashError(
                        f"worker {worker.name!r} answered "
                        "a misaligned chunk")
            except WorkerCrashError as error:
                in_flight = [pending for c in window for pending in c]
                self._evict(index, error, in_flight=in_flight)
                return
            except Exception as error:  # noqa: BLE001 — whole-chunk
                # task failure (typed refusal on a live connection):
                # the reply was consumed in order, the lane and the
                # rest of the window stay healthy.
                window.popleft()
                with self._cond:
                    _sync_busy_locked()
                for pending in chunk:
                    if not pending.future.done():
                        pending.future.set_exception(error)
                continue
            window.popleft()
            with self._cond:
                _sync_busy_locked()
            self._settle_chunk(index, worker, chunk, outcomes)

    def _drain_window(self, index: int, worker: Worker,
                      window: deque, removed: bool) -> None:
        """Park a windowed dispatcher: reap what is already in flight.

        Graceful exits (stop, ``remove_lane``) let in-flight chunks
        finish and resolve normally — matching the serial dispatcher,
        which only parks between chunks.  A crash mid-drain hands the
        rest of the window to eviction (or fails it outright when the
        group is stopping — there is nowhere left to requeue).
        """
        while window:
            chunk = window[0]
            try:
                outcomes = worker.collect_chunk()
                if (not isinstance(outcomes, list)
                        or len(outcomes) != len(chunk)):
                    raise WorkerCrashError(
                        f"worker {worker.name!r} answered "
                        "a misaligned chunk")
            except Exception as error:  # noqa: BLE001 — the window is
                # lost with the lane; route every chunk to requeue.
                in_flight = [pending for c in window for pending in c]
                window.clear()
                with self._cond:
                    self._busy[index] = None
                    _fabric_inflight(worker.name, 0)
                if self._stopping:
                    for pending in in_flight:
                        if not pending.future.done():
                            pending.future.set_exception(WorkerCrashError(
                                "worker group stopped before the "
                                "item was executed"))
                else:
                    crash = (error if isinstance(error, WorkerCrashError)
                             else WorkerCrashError(str(error)))
                    self._evict(index, crash, in_flight=in_flight)
                break
            window.popleft()
            with self._cond:
                flat = [pending for c in window for pending in c]
                self._busy[index] = flat or None
                _fabric_inflight(worker.name, len(window))
            self._settle_chunk(index, worker, chunk, outcomes)
        if removed:
            worker.close()

    # ------------------------------------------------------------------
    # Crash handling + heartbeats
    # ------------------------------------------------------------------
    def _evict(self, index: int, error: Exception,
               in_flight: _Pending | list[_Pending] | None = None) -> None:
        """Mark a lane dead; requeue its work on healthy lanes.

        Monitor (heartbeat) and dispatcher (failed execute) can both
        report the same death; the first caller evicts and drains the
        queue, but the dispatcher's ``in_flight`` item — or whole chunk
        — must be placed either way: dropping one would leave its
        future unresolved forever, which is exactly the deadlock
        eviction exists to prevent.
        """
        worker = self.workers[index]
        if in_flight is None:
            in_flight = []
        elif isinstance(in_flight, _Pending):
            in_flight = [in_flight]
        with self._cond:
            first_report = index not in self._dead
            orphans: list[_Pending] = []
            if first_report:
                self._dead.add(index)
                self.metrics.worker_crashes += 1
                self._probation_due[index] = (time.monotonic()
                                              + self.probation_s)
                orphans = list(self._queues[index])
                self._queues[index].clear()
            self._busy[index] = None
            orphans[:0] = in_flight
            alive = [i for i in range(len(self.workers))
                     if i not in self._dead]
            failures = []
            ledgered = []
            for pending in orphans:
                recorded = (None if pending.future.done()
                            else self.ledger.get(pending.item.key))
                if recorded is not None:
                    # The dying lane (or a peer) already completed this
                    # key — answer from the ledger, don't re-execute.
                    self.metrics.deduped += 1
                    ledgered.append((pending, recorded))
                elif pending.attempts >= self.max_attempts:
                    self.metrics.poisoned += 1
                    failures.append((pending, WorkerCrashError(
                        f"item {pending.item.item_id} crashed "
                        f"{pending.attempts} lane(s) — retry budget "
                        f"(max_attempts={self.max_attempts}) exhausted; "
                        f"last: worker {worker.name!r} died ({error})")))
                elif not alive:
                    failures.append((pending, WorkerCrashError(
                        f"worker {worker.name!r} died "
                        f"({error}) and no healthy worker could take "
                        f"item {pending.item.item_id}")))
                else:
                    target = min(alive,
                                 key=lambda i: (len(self._queues[i]), i))
                    self._queues[target].append(pending)
                    self.metrics.requeued += 1
            self._cond.notify_all()
        for pending, recorded in ledgered:
            if not pending.future.done():
                pending.future.set_result(recorded)
        for pending, failure in failures:
            if not pending.future.done():
                pending.future.set_exception(failure)
        if first_report:
            worker.close()

    def _others_alive(self, index: int) -> bool:
        """Whether any healthy lane other than ``index`` exists."""
        with self._lock:
            return any(i != index and i not in self._dead
                       for i in range(len(self.workers)))

    def _monitor(self) -> None:
        """Ping idle lanes; evict the unresponsive, readmit the recovered."""
        while not self._monitor_stop.wait(self.heartbeat_s):
            for index, worker in list(enumerate(self.workers)):
                with self._lock:
                    if (self._stopping or index in self._dead
                            or self._busy[index] is not None):
                        continue
                try:
                    alive = worker.ping(timeout_s=self.ping_timeout_s)
                except WorkerCrashError:
                    alive = False
                if (alive and self.chaos is not None
                        and self._others_alive(index)
                        and self.chaos.corrupt_heartbeat(worker.name)):
                    # A corrupted probe reads as a dead lane: evict a
                    # healthy host and make probation earn it back.
                    alive = False
                if alive:
                    with self._lock:
                        self.metrics.last_heartbeat[worker.name] = \
                            time.monotonic()
                else:
                    self._evict(index, WorkerCrashError(
                        "heartbeat probe failed"))
            if self.readmit:
                self._probe_probation()

    def _probe_probation(self) -> None:
        """Try to re-admit evicted lanes whose probation delay elapsed.

        A probe is a full bring-up: restart the executor, re-register
        the current deployment table, answer a ping.  Success restores
        the lane with a fresh dispatcher (``metrics.readmitted``);
        failure closes it again and re-arms the probation timer — a host
        that stays down just keeps failing cheap connect attempts.
        """
        now = time.monotonic()
        with self._lock:
            due = [index for index in self._dead
                   if index not in self._removed
                   and self.workers[index].restartable
                   and self._probation_due.get(index, 0.0) <= now]
        for index in due:
            worker = self.workers[index]
            # The slow bring-up (TCP connect, pickled-table deploy) runs
            # WITHOUT the elastic lock — an unreachable host must not
            # stall add_lane/add_deployments for its connect timeout.
            try:
                worker.close()
                worker.start()
                probed_table = self.deployments
                worker.deploy(probed_table)
                if not worker.ping(timeout_s=self.ping_timeout_s):
                    raise WorkerCrashError("probation ping failed")
            except (ReproError, OSError):
                worker.close()
                with self._lock:
                    self._probation_due[index] = (time.monotonic()
                                                  + self.probation_s)
                continue
            # Admission is serialized against table growth: if
            # add_deployments ran mid-probe (it skips dead lanes), the
            # probed table is stale and the lane would fail new-model
            # items typed instead of requeueing — re-deploy the current
            # table (append-only, so a length check suffices) before
            # the lane goes live.
            with self._elastic_lock:
                current_table = self.deployments
                if len(current_table) != len(probed_table):
                    try:
                        worker.deploy(current_table)
                    except (ReproError, OSError):
                        worker.close()
                        with self._lock:
                            self._probation_due[index] = (
                                time.monotonic() + self.probation_s)
                        continue
                with self._cond:
                    # remove_lane() may have decommissioned the lane
                    # while the probe was in flight — removal wins.
                    if (self._stopping or index not in self._dead
                            or index in self._removed):
                        worker.close()
                        continue
                    self._dead.discard(index)
                    self._probation_due.pop(index, None)
                    self.metrics.readmitted += 1
                    self.metrics.last_heartbeat[worker.name] = \
                        time.monotonic()
                    self._cond.notify_all()
                self._spawn_dispatcher(index)

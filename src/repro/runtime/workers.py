"""Workers: the three interchangeable executors of the fabric.

A :class:`Worker` owns one execution lane — it is started once, receives
the deployment table once, and then executes one :class:`~repro.runtime.
work.WorkItem` at a time.  Three kinds ship:

* :class:`ThreadWorker` — runs items inline on the caller's dispatcher
  thread.  numpy releases the GIL inside its kernels, so several thread
  workers overlap real work; zero serialization cost, shares the
  process-wide warm-engine cache.  Also the ``workers=1`` determinism
  baseline every other executor mix is compared against.
* :class:`ProcessWorker` — one dedicated forked (or spawned) child
  process holding warm engines, fed over pickled numpy arrays.
  Sidesteps the GIL; a killed child surfaces as
  :class:`~repro.errors.WorkerCrashError`, which the group turns into
  eviction + requeue instead of a deadlock.
* ``RemoteWorker`` (``repro.runtime.remote``) — the same protocol over a
  JSON-lines TCP connection to a host running ``repro worker --listen``.

Spec strings name workers uniformly across the CLI, the sweep driver and
the serving pool: ``"thread"``, ``"process"``, ``"thread:4"`` /
``"process:4"`` (multipliers), or ``"host:port"`` for a remote worker.
An integer worker count keeps its historical meaning — ``1`` is the
inline baseline, ``N`` is ``N`` process workers.
"""

from __future__ import annotations

import abc
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool

import multiprocessing as mp

from repro.errors import ConfigurationError, WorkerCrashError
from repro.runtime.work import Deployment, WorkItem, WorkResult, execute_item

__all__ = [
    "ProcessWorker",
    "ThreadWorker",
    "Worker",
    "create_workers",
    "normalize_worker_specs",
]


class Worker(abc.ABC):
    """One execution lane: start, deploy once, execute items, ping."""

    #: Executor kind ("thread" | "process" | "remote").
    kind: str = "abstract"

    #: Whether an evicted lane can be brought back by ``close()`` +
    #: ``start()`` (the group's probation re-admission).  Lanes built
    #: around a connection *they* did not initiate (a joined host's
    #: socket) set this False — the host re-joins on its own instead.
    restartable: bool = True

    def __init__(self, name: str) -> None:
        self.name = name

    @abc.abstractmethod
    def start(self) -> None:
        """Acquire the lane's resources (executor, connection)."""

    @abc.abstractmethod
    def deploy(self, deployments: list[Deployment]) -> None:
        """Register the deployment table this lane will execute against."""

    @abc.abstractmethod
    def execute(self, item: WorkItem) -> WorkResult:
        """Run one item; raises :class:`WorkerCrashError` if the lane
        itself died (process killed, connection dropped, budget blown) —
        any other :class:`~repro.errors.ReproError` is a task-level
        failure on a healthy lane."""

    def ping(self, timeout_s: float = 5.0) -> bool:
        """Liveness probe; ``False``/``WorkerCrashError`` marks the lane
        dead.  In-process lanes are alive by definition."""
        return True

    def close(self) -> None:
        """Release the lane's resources; idempotent."""


class ThreadWorker(Worker):
    """Inline execution on the group's dispatcher thread."""

    kind = "thread"

    def __init__(self, name: str = "thread") -> None:
        super().__init__(name)
        self._deployments: list[Deployment] = []

    def start(self) -> None:
        pass

    def deploy(self, deployments: list[Deployment]) -> None:
        self._deployments = list(deployments)

    def execute(self, item: WorkItem) -> WorkResult:
        return execute_item(self._deployments, item, worker=self.name)


# ----------------------------------------------------------------------
# Process-worker child side (module-level for picklability).  One child
# per ProcessWorker, so a plain global table is per-lane state.
# ----------------------------------------------------------------------
_CHILD_DEPLOYMENTS: list[Deployment] = []


def _child_deploy(deployments: list[Deployment]) -> int:
    global _CHILD_DEPLOYMENTS
    _CHILD_DEPLOYMENTS = list(deployments)
    return os.getpid()


def _child_execute(item: WorkItem) -> WorkResult:
    return execute_item(_CHILD_DEPLOYMENTS, item)


class ProcessWorker(Worker):
    """One dedicated child process holding warm engines."""

    kind = "process"

    def __init__(self, name: str = "process") -> None:
        super().__init__(name)
        self._pool: ProcessPoolExecutor | None = None
        self.pid: int | None = None
        # Held while a batch runs in the child.  The group's monitor
        # pings "idle" lanes, but a batch may start between its idle
        # check and the ping; a ping queued behind a long batch on this
        # single-child pool would time out and falsely evict a healthy
        # lane, so ping only probes when it can take this lock.
        self._exec_lock = threading.Lock()

    def start(self) -> None:
        methods = mp.get_all_start_methods()
        context = mp.get_context("fork" if "fork" in methods else None)
        self._pool = ProcessPoolExecutor(max_workers=1,
                                         mp_context=context)

    def _submit(self, fn, *args, timeout_s: float | None = None):
        if self._pool is None:
            raise WorkerCrashError(f"worker {self.name!r} is not started")
        try:
            return self._pool.submit(fn, *args).result(timeout=timeout_s)
        except BrokenProcessPool as error:
            raise WorkerCrashError(
                f"worker {self.name!r} (pid {self.pid}) died: "
                f"{error}") from error
        except FutureTimeout as error:
            # A blown budget is indistinguishable from a hung child;
            # treat the lane as dead so the group can requeue elsewhere.
            self.close()
            raise WorkerCrashError(
                f"worker {self.name!r} (pid {self.pid}) exceeded its "
                f"{timeout_s} s execution budget") from error

    def deploy(self, deployments: list[Deployment]) -> None:
        self.pid = self._submit(_child_deploy, list(deployments))

    def execute(self, item: WorkItem) -> WorkResult:
        # Strip caller-side metadata before pickling: it is documented
        # as never crossing the boundary (and may be unpicklable).
        wire_item = WorkItem(item_id=item.item_id,
                             deployment=item.deployment,
                             images=item.images,
                             timeout_s=item.timeout_s)
        with self._exec_lock:
            result = self._submit(_child_execute, wire_item,
                                  timeout_s=item.timeout_s)
        result.worker = self.name
        return result

    def ping(self, timeout_s: float = 5.0) -> bool:
        # A lane mid-batch is alive by definition; never queue a probe
        # behind a running shard (see _exec_lock above).
        if not self._exec_lock.acquire(blocking=False):
            return True
        try:
            self._submit(os.getpid, timeout_s=timeout_s)
            return True
        except WorkerCrashError:
            return False
        finally:
            self._exec_lock.release()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None


# ----------------------------------------------------------------------
# Worker specs — the one grammar the CLI, sweeps and serving share
# ----------------------------------------------------------------------
_LOCAL_KINDS = ("thread", "process")


def normalize_worker_specs(workers) -> list[str]:
    """Expand a worker request into one spec string per lane.

    ``workers`` may be an integer (``1`` → one inline thread lane, the
    determinism baseline; ``N`` → ``N`` process lanes), a single spec
    string, or a sequence of spec strings.  Multipliers expand here:
    ``"process:4"`` → four process lanes.
    """
    if isinstance(workers, int):
        if workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {workers}")
        return ["thread"] if workers == 1 else ["process"] * workers
    if isinstance(workers, str):
        workers = [workers]
    specs: list[str] = []
    for token in workers:
        token = str(token).strip()
        if not token:
            continue
        kind, _, tail = token.partition(":")
        if kind in _LOCAL_KINDS:
            count = 1
            if tail:
                try:
                    count = int(tail)
                except ValueError:
                    raise ConfigurationError(
                        f"bad worker multiplier in {token!r}") from None
                if count < 1:
                    raise ConfigurationError(
                        f"worker multiplier must be >= 1 in {token!r}")
            specs.extend([kind] * count)
        elif ":" in token:
            host, _, port = token.rpartition(":")
            try:
                int(port)
            except ValueError:
                raise ConfigurationError(
                    f"bad remote worker spec {token!r}; expected "
                    "host:port") from None
            if not host:
                raise ConfigurationError(
                    f"bad remote worker spec {token!r}; expected "
                    "host:port")
            specs.append(f"{host}:{int(port)}")
        else:
            raise ConfigurationError(
                f"unknown worker spec {token!r}; expected 'thread', "
                "'process', 'kind:N' or 'host:port'")
    if not specs:
        raise ConfigurationError("worker spec list selected no workers")
    return specs


def create_workers(workers, token: str | None = None) -> list[Worker]:
    """Build (unstarted) workers from specs; names are group-unique.

    ``token`` is the fabric's optional shared secret: it rides to every
    remote lane, which attaches the auth proof to each payload (a host
    started with ``repro worker --listen --token T`` rejects the rest).
    """
    from repro.runtime.remote import RemoteWorker  # avoid module cycle

    built: list[Worker] = []
    for index, spec in enumerate(normalize_worker_specs(workers)):
        if spec == "thread":
            built.append(ThreadWorker(name=f"thread-{index}"))
        elif spec == "process":
            built.append(ProcessWorker(name=f"process-{index}"))
        else:
            host, _, port = spec.rpartition(":")
            built.append(RemoteWorker(host, int(port),
                                      name=f"remote-{index}@{spec}",
                                      token=token))
    return built

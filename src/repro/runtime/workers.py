"""Workers: the three interchangeable executors of the fabric.

A :class:`Worker` owns one execution lane — it is started once, receives
the deployment table once, and then executes one :class:`~repro.runtime.
work.WorkItem` at a time.  Three kinds ship:

* :class:`ThreadWorker` — runs items inline on the caller's dispatcher
  thread.  numpy releases the GIL inside its kernels, so several thread
  workers overlap real work; zero serialization cost, shares the
  process-wide warm-engine cache.  Also the ``workers=1`` determinism
  baseline every other executor mix is compared against.
* :class:`ProcessWorker` — one dedicated forked (or spawned) child
  process holding warm engines.  Image and logit tensors travel through
  a shared-memory arena (``repro.runtime.shm``) instead of pickle when
  the host allows it (``REPRO_NO_SHM=1`` forces the pickle path), so
  the per-item serialization tax is a few hundred bytes of work-item
  metadata.  Sidesteps the GIL; a killed child surfaces as
  :class:`~repro.errors.WorkerCrashError`, which the group turns into
  eviction + requeue instead of a deadlock.
* ``RemoteWorker`` (``repro.runtime.remote``) — the same protocol over a
  JSON-lines TCP connection to a host running ``repro worker --listen``.

Spec strings name workers uniformly across the CLI, the sweep driver and
the serving pool: ``"thread"``, ``"process"``, ``"thread:4"`` /
``"process:4"`` (multipliers), or ``"host:port"`` for a remote worker.
An integer worker count keeps its historical meaning — ``1`` is the
inline baseline, ``N`` is ``N`` process workers.
"""

from __future__ import annotations

import abc
import os
import signal
import threading
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

import multiprocessing as mp
from multiprocessing import resource_tracker

import numpy as np

from repro.errors import ConfigurationError, WorkerCrashError
from repro.runtime.shm import ShmArena, ShmView, attach_view, shm_available
from repro.runtime.work import (Deployment, WorkItem, WorkResult,
                                chunk_timeout_s, execute_item)

__all__ = [
    "ProcessWorker",
    "ThreadWorker",
    "Worker",
    "create_workers",
    "normalize_worker_specs",
]


class Worker(abc.ABC):
    """One execution lane: start, deploy once, execute items, ping."""

    #: Executor kind ("thread" | "process" | "remote").
    kind: str = "abstract"

    #: Whether an evicted lane can be brought back by ``close()`` +
    #: ``start()`` (the group's probation re-admission).  Lanes built
    #: around a connection *they* did not initiate (a joined host's
    #: socket) set this False — the host re-joins on its own instead.
    restartable: bool = True

    #: Optional :class:`~repro.runtime.chaos.ChaosPolicy` the owning
    #: group injects; executors that model connection faults consult it
    #: per exchange.  ``None`` = no chaos.
    chaos = None

    #: Largest in-flight chunk window this executor supports.  ``1``
    #: means stop-and-wait (the dispatcher waits for each chunk before
    #: shipping the next); executors that implement the split
    #: :meth:`send_chunk` / :meth:`collect_chunk` path raise it so the
    #: group can pipeline encode + transfer of chunk N+1 behind the
    #: compute of chunk N.
    pipeline_depth: int = 1

    def __init__(self, name: str) -> None:
        self.name = name

    @abc.abstractmethod
    def start(self) -> None:
        """Acquire the lane's resources (executor, connection)."""

    @abc.abstractmethod
    def deploy(self, deployments: list[Deployment]) -> None:
        """Register the deployment table this lane will execute against."""

    @abc.abstractmethod
    def execute(self, item: WorkItem) -> WorkResult:
        """Run one item; raises :class:`WorkerCrashError` if the lane
        itself died (process killed, connection dropped, budget blown) —
        any other :class:`~repro.errors.ReproError` is a task-level
        failure on a healthy lane."""

    def execute_many(self, items: list[WorkItem]) -> list:
        """Run a dispatch chunk; returns one :class:`WorkResult` **or**
        :class:`Exception` per item, aligned with ``items``.

        Task-level failures are returned in place so sibling items in a
        healthy chunk still complete; a lane death raises
        :class:`WorkerCrashError` for the whole chunk (results would be
        lost with the lane anyway — the group requeues everything).
        Executors that can amortize per-chunk overhead (one wire frame,
        one child round-trip) override this; the default just loops.
        """
        outcomes: list = []
        for item in items:
            try:
                outcomes.append(self.execute(item))
            except WorkerCrashError:
                raise
            except Exception as error:  # noqa: BLE001 — task failure
                outcomes.append(error)
        return outcomes

    def send_chunk(self, items: list[WorkItem]) -> None:
        """Ship a chunk without waiting for its outcome (windowed
        dispatch).  Chunks collect strictly in send order; the caller
        must keep at most :attr:`pipeline_depth` chunks outstanding.
        Only meaningful on executors with ``pipeline_depth > 1``.
        """
        raise NotImplementedError(
            f"worker kind {self.kind!r} does not pipeline")

    def collect_chunk(self) -> list:
        """Block for the *oldest* outstanding chunk; returns one
        :class:`WorkResult` or :class:`Exception` per item, aligned
        with the chunk :meth:`send_chunk` shipped.  A lane death raises
        :class:`WorkerCrashError` (every outstanding chunk is lost with
        the lane — the group requeues the whole window)."""
        raise NotImplementedError(
            f"worker kind {self.kind!r} does not pipeline")

    def ping(self, timeout_s: float = 5.0) -> bool:
        """Liveness probe; ``False``/``WorkerCrashError`` marks the lane
        dead.  In-process lanes are alive by definition."""
        return True

    def kill(self) -> None:
        """Hard-kill the lane mid-run (chaos injection).

        Unlike :meth:`close`, this models a *failure*, not a shutdown:
        the executor dies the way a real one would (SIGKILLed child,
        severed socket) so the next ``execute``/``ping`` surfaces
        :class:`WorkerCrashError` and the group's eviction + requeue
        machinery runs for real.  Default: ``close()`` — good enough
        for lanes whose next use fails once resources are gone.
        """
        self.close()

    def close(self) -> None:
        """Release the lane's resources; idempotent."""


class ThreadWorker(Worker):
    """Inline execution on the group's dispatcher thread."""

    kind = "thread"

    def __init__(self, name: str = "thread") -> None:
        super().__init__(name)
        self._deployments: list[Deployment] = []
        self._killed = False

    def start(self) -> None:
        # A probation restart revives a chaos-killed inline lane.
        self._killed = False

    def deploy(self, deployments: list[Deployment]) -> None:
        self._deployments = list(deployments)

    def execute(self, item: WorkItem) -> WorkResult:
        if self._killed:
            raise WorkerCrashError(
                f"worker {self.name!r} was killed (chaos)")
        return execute_item(self._deployments, item, worker=self.name)

    def ping(self, timeout_s: float = 5.0) -> bool:
        return not self._killed

    def kill(self) -> None:
        # An inline lane has no process to SIGKILL; the flag makes the
        # next execute/ping crash the same way a dead one would.
        self._killed = True


# ----------------------------------------------------------------------
# Process-worker child side (module-level for picklability).  One child
# per ProcessWorker, so a plain global table is per-lane state.
# ----------------------------------------------------------------------
_CHILD_DEPLOYMENTS: list[Deployment] = []

#: Logits wider than this per-image bound fall back to pickled replies
#: (the shm reply region is pre-sized before the class count is known).
_REPLY_CLASSES_CAP = 256


@dataclass
class _WireItem:
    """The picklable skeleton of one item crossing into the child.

    Exactly one of ``images`` (pickle path) or ``view`` (shared-memory
    path) is set; ``reply`` is the shm region the child may answer
    through when it is big enough for the logits.
    """

    item_id: int
    deployment: int
    timeout_s: float | None
    images: np.ndarray | None = None
    view: ShmView | None = None
    reply: ShmView | None = None
    trace: dict | None = None


def _child_deploy(deployments: list[Deployment]) -> int:
    global _CHILD_DEPLOYMENTS
    _CHILD_DEPLOYMENTS = list(deployments)
    return os.getpid()


def _child_execute_batch(wire_items: list[_WireItem]) -> list:
    """Run a chunk in the child; one ``(logits_view, result)`` or
    ``Exception`` per item.  Logits that fit the item's reply region are
    written there (``result.logits`` comes back ``None``); otherwise
    they ride home pickled."""
    outcomes: list = []
    for wire in wire_items:
        try:
            images = (attach_view(wire.view) if wire.view is not None
                      else wire.images)
            item = WorkItem(item_id=wire.item_id,
                            deployment=wire.deployment,
                            images=images, timeout_s=wire.timeout_s,
                            trace=wire.trace)
            result = execute_item(_CHILD_DEPLOYMENTS, item)
            logits_view = None
            if (wire.reply is not None
                    and result.logits.nbytes <= wire.reply.nbytes):
                logits = np.ascontiguousarray(result.logits)
                region = attach_view(wire.reply)
                region[:logits.nbytes] = logits.reshape(-1).view(np.uint8)
                logits_view = ShmView(wire.reply.segment,
                                      wire.reply.offset,
                                      str(logits.dtype), logits.shape)
                result.logits = None
            outcomes.append((logits_view, result))
        except Exception as error:  # noqa: BLE001 — task failure; the
            # chunk's sibling items must still answer
            outcomes.append(error)
    return outcomes


@dataclass
class _ProcessFlight:
    """One chunk in flight to the child: its pool future plus what is
    needed to collect it (alignment, arena slot, deadline)."""

    future: object
    items: list
    slot: int
    deadline: float | None


class ProcessWorker(Worker):
    """One dedicated child process holding warm engines.

    Pipelines up to two chunks (``pipeline_depth = 2``): the shm arena
    is double-buffered, one slot per in-flight chunk, so the parent
    packs chunk N+1 into the idle slot while the child computes chunk N
    out of the other.  A slot is only reused after its chunk was
    collected (the window bound enforces this), which preserves the
    wholesale-reuse invariant from :mod:`repro.runtime.shm` per slot.
    """

    kind = "process"
    pipeline_depth = 2

    def __init__(self, name: str = "process") -> None:
        super().__init__(name)
        self._pool: ProcessPoolExecutor | None = None
        self.pid: int | None = None
        # Double-buffered arenas: chunk k packs into slot k % 2.
        self._arenas: list[ShmArena | None] = [None, None]
        self._slot = 0
        self._outstanding: deque[_ProcessFlight] = deque()
        # Serializes submissions (pack + pool.submit) against the
        # monitor's ping.  The group's monitor pings "idle" lanes, but
        # a chunk may start between its idle check and the ping; a ping
        # queued behind outstanding chunks on this single-child pool
        # would time out and falsely evict a healthy lane, so ping only
        # probes when it can take this lock AND no chunk is in flight.
        self._exec_lock = threading.Lock()

    def start(self) -> None:
        # Spawn the resource tracker *before* the pool forks children:
        # a child whose first shm attach finds no inherited tracker
        # would start a private one, whose lone registration nobody
        # unregisters (leak warnings at shutdown).  With the tracker
        # alive pre-fork, every register/unregister lands in the one
        # shared tracker and balances (see repro.runtime.shm).
        if shm_available():
            resource_tracker.ensure_running()
        methods = mp.get_all_start_methods()
        context = mp.get_context("fork" if "fork" in methods else None)
        self._pool = ProcessPoolExecutor(max_workers=1,
                                         mp_context=context)

    def _submit(self, fn, *args, timeout_s: float | None = None):
        if self._pool is None:
            raise WorkerCrashError(f"worker {self.name!r} is not started")
        try:
            return self._pool.submit(fn, *args).result(timeout=timeout_s)
        except BrokenProcessPool as error:
            raise WorkerCrashError(
                f"worker {self.name!r} (pid {self.pid}) died: "
                f"{error}") from error
        except FutureTimeout as error:
            # A blown budget is indistinguishable from a hung child;
            # treat the lane as dead so the group can requeue elsewhere.
            self.close()
            raise WorkerCrashError(
                f"worker {self.name!r} (pid {self.pid}) exceeded its "
                f"{timeout_s} s execution budget") from error

    def deploy(self, deployments: list[Deployment]) -> None:
        self.pid = self._submit(_child_deploy, list(deployments))

    def _pack(self, items: list[WorkItem],
              slot: int = 0) -> list[_WireItem]:
        """Wire items for a chunk: shm-backed when available.

        All image buffers are placed in one write into the ``slot``
        arena; each item gets an aligned slice of a shared reply region
        sized for ``_REPLY_CLASSES_CAP`` classes.  Any shm hiccup
        (exhausted ``/dev/shm``, races with teardown) falls back to
        pickling — slower, never wrong.  Caller-side ``meta`` is
        stripped here: it is documented as never crossing the boundary
        (and may be unpicklable).
        """
        wires = [_WireItem(item_id=item.item_id,
                           deployment=item.deployment,
                           timeout_s=item.timeout_s,
                           trace=item.trace)
                 for item in items]
        if shm_available():
            if self._arenas[slot] is None:
                self._arenas[slot] = ShmArena()
            arena = self._arenas[slot]
            caps = [max(4096, -(-item.num_images
                                * _REPLY_CLASSES_CAP * 8 // 64) * 64)
                    for item in items]
            try:
                views, reply = arena.place(
                    [item.images for item in items],
                    reply_nbytes=sum(caps))
            except (OSError, ValueError):
                views = None
            if views is not None:
                cursor = reply.offset
                for wire, view, cap in zip(wires, views, caps):
                    wire.view = view
                    wire.reply = ShmView(reply.segment, cursor,
                                         "uint8", (cap,))
                    cursor += cap
                return wires
        for wire, item in zip(wires, items):
            wire.images = np.ascontiguousarray(item.images)
        return wires

    def _unpack(self, outcome, slot: int = 0):
        """One child outcome -> WorkResult or Exception (parent side)."""
        if isinstance(outcome, Exception):
            return outcome
        logits_view, result = outcome
        if logits_view is not None:
            # Copy out before the slot is reused: the arena region is
            # recycled by the next chunk packed into this slot.
            result.logits = np.array(self._arenas[slot].read(logits_view),
                                     copy=True)
        result.worker = self.name
        # The child executed without knowing its lane name; stamp it on
        # the spans here so forked-lane lane_execute spans are
        # attributable, exactly like the remote client edge does.
        for span in result.spans:
            attrs = span.get("attrs")
            if isinstance(attrs, dict) and not attrs.get("worker"):
                attrs["worker"] = self.name
        return result

    def execute(self, item: WorkItem) -> WorkResult:
        outcome = self.execute_many([item])[0]
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    def execute_many(self, items: list[WorkItem]) -> list:
        self.send_chunk(items)
        return self.collect_chunk()

    def send_chunk(self, items: list[WorkItem]) -> None:
        """Pack a chunk into the idle arena slot and submit it to the
        child without waiting; the single-child pool executes chunks
        strictly in submission order, so collection is FIFO."""
        with self._exec_lock:
            if self._pool is None:
                raise WorkerCrashError(
                    f"worker {self.name!r} is not started")
            if len(self._outstanding) >= self.pipeline_depth:
                raise ValueError(
                    f"worker {self.name!r} already has "
                    f"{len(self._outstanding)} chunk(s) in flight "
                    f"(pipeline_depth={self.pipeline_depth})")
            slot = self._slot
            self._slot = (self._slot + 1) % len(self._arenas)
            wires = self._pack(items, slot)
            timeout_s = chunk_timeout_s(items)
            deadline = (None if timeout_s is None
                        else time.monotonic() + timeout_s)
            try:
                future = self._pool.submit(_child_execute_batch, wires)
            except (BrokenProcessPool, RuntimeError) as error:
                raise WorkerCrashError(
                    f"worker {self.name!r} (pid {self.pid}) died: "
                    f"{error}") from error
            self._outstanding.append(_ProcessFlight(
                future, list(items), slot, deadline))

    def collect_chunk(self) -> list:
        """Block for the oldest outstanding chunk and unpack it."""
        if not self._outstanding:
            # The group believes a chunk is in flight; an empty window
            # here means close() tore the pool down underneath it
            # (monitor-driven eviction) — crash semantics, so the
            # caller requeues instead of failing the items.
            raise WorkerCrashError(
                f"worker {self.name!r} has no chunk in flight "
                "(worker was closed)")
        flight = self._outstanding[0]
        timeout_s = None
        if flight.deadline is not None:
            timeout_s = max(0.0, flight.deadline - time.monotonic())
        try:
            outcomes = flight.future.result(timeout=timeout_s)
        except BrokenProcessPool as error:
            raise WorkerCrashError(
                f"worker {self.name!r} (pid {self.pid}) died: "
                f"{error}") from error
        except FutureTimeout as error:
            # A blown budget is indistinguishable from a hung child;
            # treat the lane as dead so the group can requeue elsewhere.
            self.close()
            raise WorkerCrashError(
                f"worker {self.name!r} (pid {self.pid}) exceeded its "
                f"chunk deadline") from error
        with self._exec_lock:
            self._outstanding.popleft()
        if (not isinstance(outcomes, list)
                or len(outcomes) != len(flight.items)):
            raise WorkerCrashError(
                f"worker {self.name!r} answered a malformed chunk")
        return [self._unpack(outcome, flight.slot)
                for outcome in outcomes]

    def ping(self, timeout_s: float = 5.0) -> bool:
        # A lane mid-chunk is alive by definition; never queue a probe
        # behind outstanding work on the single-child pool (it would
        # falsely time out behind a long chunk).
        if not self._exec_lock.acquire(blocking=False):
            return True
        try:
            if self._outstanding:
                return True
            self._submit(os.getpid, timeout_s=timeout_s)
            return True
        except WorkerCrashError:
            return False
        finally:
            self._exec_lock.release()

    def kill(self) -> None:
        # The real failure mode: SIGKILL the child, leaving the broken
        # pool in place so the next execute raises BrokenProcessPool →
        # WorkerCrashError and the group's crash path runs end to end.
        if self.pid is not None:
            try:
                os.kill(self.pid, getattr(signal, "SIGKILL",
                                          signal.SIGTERM))
            except OSError:
                pass
        else:
            self.close()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self._outstanding.clear()
        for slot, arena in enumerate(self._arenas):
            if arena is not None:
                arena.close()
                self._arenas[slot] = None
        self._slot = 0


# ----------------------------------------------------------------------
# Worker specs — the one grammar the CLI, sweeps and serving share
# ----------------------------------------------------------------------
_LOCAL_KINDS = ("thread", "process")


def normalize_worker_specs(workers) -> list[str]:
    """Expand a worker request into one spec string per lane.

    ``workers`` may be an integer (``1`` → one inline thread lane, the
    determinism baseline; ``N`` → ``N`` process lanes), a single spec
    string, or a sequence of spec strings.  Multipliers expand here:
    ``"process:4"`` → four process lanes.
    """
    if isinstance(workers, int):
        if workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {workers}")
        return ["thread"] if workers == 1 else ["process"] * workers
    if isinstance(workers, str):
        workers = [workers]
    specs: list[str] = []
    for token in workers:
        token = str(token).strip()
        if not token:
            continue
        kind, _, tail = token.partition(":")
        if kind in _LOCAL_KINDS:
            count = 1
            if tail:
                try:
                    count = int(tail)
                except ValueError:
                    raise ConfigurationError(
                        f"bad worker multiplier in {token!r}") from None
                if count < 1:
                    raise ConfigurationError(
                        f"worker multiplier must be >= 1 in {token!r}")
            specs.extend([kind] * count)
        elif ":" in token:
            host, _, port = token.rpartition(":")
            try:
                int(port)
            except ValueError:
                raise ConfigurationError(
                    f"bad remote worker spec {token!r}; expected "
                    "host:port") from None
            if not host:
                raise ConfigurationError(
                    f"bad remote worker spec {token!r}; expected "
                    "host:port")
            specs.append(f"{host}:{int(port)}")
        else:
            raise ConfigurationError(
                f"unknown worker spec {token!r}; expected 'thread', "
                "'process', 'kind:N' or 'host:port'")
    if not specs:
        raise ConfigurationError("worker spec list selected no workers")
    return specs


def create_workers(workers, token: str | None = None) -> list[Worker]:
    """Build (unstarted) workers from specs; names are group-unique.

    ``token`` is the fabric's optional shared secret: it rides to every
    remote lane, which attaches the auth proof to each payload (a host
    started with ``repro worker --listen --token T`` rejects the rest).
    """
    from repro.runtime.remote import RemoteWorker  # avoid module cycle

    built: list[Worker] = []
    for index, spec in enumerate(normalize_worker_specs(workers)):
        if spec == "thread":
            built.append(ThreadWorker(name=f"thread-{index}"))
        elif spec == "process":
            built.append(ProcessWorker(name=f"process-{index}"))
        else:
            host, _, port = spec.rpartition(":")
            built.append(RemoteWorker(host, int(port),
                                      name=f"remote-{index}@{spec}",
                                      token=token))
    return built

"""Synthetic CIFAR-100: a procedurally generated 100-class colour dataset.

The paper's VGG-11 experiment classifies 100 object categories from 32×32
RGB images.  Offline, this module substitutes a controlled 100-class task:
each class is a deterministic (shape, colour-palette) signature — 10 shape
families × 10 palettes — and every instance is perturbed with affine
jitter, hue noise, occlusion and pixel noise.  The ``noise_level`` knob
tunes difficulty so a VGG lands in the paper's ~60% accuracy regime.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.data.dataset import Dataset
from repro.errors import ShapeError

__all__ = ["SyntheticCIFAR100", "generate_cifar100", "NUM_SHAPES",
           "NUM_PALETTES"]

NUM_SHAPES = 10
NUM_PALETTES = 10


def _hsv_to_rgb(h: float, s: float, v: float) -> np.ndarray:
    """Single-colour HSV→RGB (h, s, v in [0, 1])."""
    i = int(h * 6.0) % 6
    f = h * 6.0 - int(h * 6.0)
    p, q, t = v * (1 - s), v * (1 - f * s), v * (1 - (1 - f) * s)
    table = [(v, t, p), (q, v, p), (p, v, t), (p, q, v), (t, p, v), (v, p, q)]
    return np.array(table[i])


def _palette(index: int) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic (foreground, background) colour pair for a palette id."""
    fg_hue = (index / NUM_PALETTES) % 1.0
    bg_hue = (fg_hue + 0.45 + 0.03 * index) % 1.0
    fg = _hsv_to_rgb(fg_hue, 0.85, 0.95)
    bg = _hsv_to_rgb(bg_hue, 0.55, 0.45 + 0.04 * (index % 3))
    return fg, bg


def _shape_mask(shape_id: int, size: int, rng: np.random.Generator) -> np.ndarray:
    """Binary mask for one of the 10 shape families, with instance jitter."""
    yy, xx = np.mgrid[0:size, 0:size].astype(np.float64)
    cy = size / 2 + rng.uniform(-2.5, 2.5)
    cx = size / 2 + rng.uniform(-2.5, 2.5)
    r = size * rng.uniform(0.26, 0.36)
    dy, dx = yy - cy, xx - cx
    dist = np.sqrt(dy**2 + dx**2)
    angle = np.arctan2(dy, dx) + rng.uniform(0, 2 * np.pi)
    if shape_id == 0:                                # disc
        mask = dist <= r
    elif shape_id == 1:                              # square
        mask = (np.abs(dy) <= r * 0.85) & (np.abs(dx) <= r * 0.85)
    elif shape_id == 2:                              # triangle (half-planes)
        mask = (dy <= r * 0.7) & (dy >= -1.4 * r + 2.2 * np.abs(dx))
    elif shape_id == 3:                              # ring
        mask = (dist <= r) & (dist >= r * 0.55)
    elif shape_id == 4:                              # plus / cross
        arm = r * 0.38
        mask = ((np.abs(dy) <= arm) & (np.abs(dx) <= r)) | (
            (np.abs(dx) <= arm) & (np.abs(dy) <= r))
    elif shape_id == 5:                              # diamond
        mask = np.abs(dy) + np.abs(dx) <= r * 1.2
    elif shape_id == 6:                              # 5-petal star
        wobble = 0.55 + 0.45 * np.cos(5 * angle)
        mask = dist <= r * (0.5 + 0.6 * wobble)
    elif shape_id == 7:                              # horizontal bars
        period = max(int(r * 0.8), 3)
        mask = ((yy.astype(int) // period) % 2 == 0) & (dist <= r * 1.15)
    elif shape_id == 8:                              # vertical bars
        period = max(int(r * 0.8), 3)
        mask = ((xx.astype(int) // period) % 2 == 0) & (dist <= r * 1.15)
    else:                                            # checkerboard patch
        period = max(int(r * 0.7), 3)
        checker = ((yy.astype(int) // period + xx.astype(int) // period) % 2
                   == 0)
        mask = checker & (np.abs(dy) <= r) & (np.abs(dx) <= r)
    return mask.astype(np.float64)


class SyntheticCIFAR100:
    """Generator for the 100-class synthetic colour dataset."""

    def __init__(self, image_size: int = 32, seed: int = 99,
                 noise_level: float = 1.0) -> None:
        if image_size < 16:
            raise ShapeError(f"image size too small: {image_size}")
        if noise_level < 0:
            raise ShapeError(f"noise level must be >= 0, got {noise_level}")
        self.image_size = image_size
        self.seed = seed
        self.noise_level = noise_level

    @staticmethod
    def class_signature(label: int) -> tuple[int, int]:
        """(shape_id, palette_id) defining class ``label``."""
        if not 0 <= label < NUM_SHAPES * NUM_PALETTES:
            raise ShapeError(f"label must be 0..99, got {label}")
        return label % NUM_SHAPES, label // NUM_SHAPES

    def _render(self, label: int, rng: np.random.Generator) -> np.ndarray:
        size = self.image_size
        shape_id, palette_id = self.class_signature(label)
        fg, bg = _palette(palette_id)
        lvl = self.noise_level
        # Hue/brightness jitter blurs palette boundaries — the main
        # difficulty control.
        fg = np.clip(fg + rng.normal(0, 0.09 * lvl, 3), 0, 1)
        bg = np.clip(bg + rng.normal(0, 0.09 * lvl, 3), 0, 1)
        mask = _shape_mask(shape_id, size, rng)
        mask = ndimage.gaussian_filter(mask, sigma=0.7)
        image = (bg.reshape(3, 1, 1) * (1 - mask)
                 + fg.reshape(3, 1, 1) * mask)
        # Background clutter: low-frequency colour blobs.
        clutter = rng.normal(0, 1.0, (3, size, size))
        clutter = ndimage.gaussian_filter(clutter, sigma=(0, 3.0, 3.0))
        image = image + 0.18 * lvl * clutter
        # Random occluding patch.
        if lvl > 0 and rng.random() < 0.5:
            ph = rng.integers(4, max(5, size // 3))
            pw = rng.integers(4, max(5, size // 3))
            py = rng.integers(0, size - ph)
            px = rng.integers(0, size - pw)
            image[:, py:py + ph, px:px + pw] = rng.random(3).reshape(3, 1, 1)
        image = image + rng.normal(0, 0.10 * lvl, image.shape)
        return np.clip(image, 0.0, 1.0)

    def generate(self, num_samples: int) -> Dataset:
        """Produce ``num_samples`` images with balanced class labels."""
        if num_samples < 1:
            raise ShapeError("need at least one sample")
        rng = np.random.default_rng(self.seed)
        labels = np.arange(num_samples) % (NUM_SHAPES * NUM_PALETTES)
        rng.shuffle(labels)
        images = np.zeros((num_samples, 3, self.image_size, self.image_size))
        for i, label in enumerate(labels):
            images[i] = self._render(int(label), rng)
        return Dataset(images, labels, num_classes=NUM_SHAPES * NUM_PALETTES)

    def generate_splits(
        self, train_count: int, test_count: int
    ) -> tuple[Dataset, Dataset]:
        """A non-overlapping (train, test) pair from one generator stream."""
        full = self.generate(train_count + test_count)
        return full.split(train_count)


def generate_cifar100(
    train_count: int = 8000,
    test_count: int = 2000,
    image_size: int = 32,
    seed: int = 99,
    noise_level: float = 1.0,
) -> tuple[Dataset, Dataset]:
    """Convenience wrapper used by experiments and examples."""
    maker = SyntheticCIFAR100(image_size=image_size, seed=seed,
                              noise_level=noise_level)
    return maker.generate_splits(train_count, test_count)

"""Synthetic MNIST: a procedurally generated 10-class digit dataset.

The paper evaluates on MNIST (28×28 grayscale digits, zero-padded to 32×32
for LeNet-5).  No network access is available in this environment, so this
module generates an equivalent task: the same tensor shapes, the same class
count, and a difficulty LeNet-5 solves to the same high-90s accuracy
regime.  Generation is fully deterministic given the seed.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.data.strokes import render_digit
from repro.errors import ShapeError

__all__ = ["SyntheticMNIST", "generate_mnist"]


class SyntheticMNIST:
    """Generator for padded 32×32 (or raw 28×28) synthetic digit images."""

    def __init__(self, image_size: int = 32, seed: int = 1234) -> None:
        if image_size not in (28, 32):
            raise ShapeError(
                f"supported image sizes are 28 and 32, got {image_size}"
            )
        self.image_size = image_size
        self.seed = seed

    def generate(self, num_samples: int, augment: bool = True) -> Dataset:
        """Produce ``num_samples`` images with balanced class labels."""
        if num_samples < 1:
            raise ShapeError("need at least one sample")
        rng = np.random.default_rng(self.seed)
        labels = np.arange(num_samples) % 10
        rng.shuffle(labels)
        pad = (self.image_size - 28) // 2
        images = np.zeros((num_samples, 1, self.image_size, self.image_size))
        for i, digit in enumerate(labels):
            glyph = render_digit(int(digit), rng, size=28, augment=augment)
            images[i, 0, pad:pad + 28, pad:pad + 28] = glyph
        return Dataset(images, labels, num_classes=10)

    def generate_splits(
        self, train_count: int, test_count: int
    ) -> tuple[Dataset, Dataset]:
        """A (train, test) pair drawn from one stream, so they never overlap."""
        full = self.generate(train_count + test_count)
        return full.split(train_count)


def generate_mnist(
    train_count: int = 6000,
    test_count: int = 1500,
    image_size: int = 32,
    seed: int = 1234,
) -> tuple[Dataset, Dataset]:
    """Convenience wrapper used by experiments and examples."""
    maker = SyntheticMNIST(image_size=image_size, seed=seed)
    return maker.generate_splits(train_count, test_count)

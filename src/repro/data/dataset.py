"""In-memory dataset container shared by all generators."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError

__all__ = ["Dataset"]


@dataclass
class Dataset:
    """Images (NCHW, float, in ``[0, 1]``) with integer class labels.

    The ``[0, 1]`` range matters: radix encoding quantizes exactly this
    interval, so dataset outputs can feed the input layer directly.
    """

    images: np.ndarray
    labels: np.ndarray
    num_classes: int

    def __post_init__(self) -> None:
        self.images = np.asarray(self.images, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.images.ndim != 4:
            raise ShapeError(
                f"images must be NCHW, got shape {self.images.shape}"
            )
        if self.labels.shape != (self.images.shape[0],):
            raise ShapeError(
                f"labels shape {self.labels.shape} does not match "
                f"{self.images.shape[0]} images"
            )
        if self.labels.size and not (
            0 <= int(self.labels.min()) and int(self.labels.max()) < self.num_classes
        ):
            raise ShapeError("labels out of range for declared class count")

    def __len__(self) -> int:
        return int(self.images.shape[0])

    @property
    def image_shape(self) -> tuple[int, int, int]:
        """(channels, height, width) of a single image."""
        return tuple(self.images.shape[1:])

    def shuffled(self, seed: int = 0) -> "Dataset":
        """A shuffled copy (images and labels permuted together)."""
        order = np.random.default_rng(seed).permutation(len(self))
        return Dataset(self.images[order], self.labels[order],
                       self.num_classes)

    def split(self, first_count: int) -> tuple["Dataset", "Dataset"]:
        """Split into (first ``first_count`` samples, the rest)."""
        if not 0 < first_count < len(self):
            raise ShapeError(
                f"cannot split {len(self)} samples at {first_count}"
            )
        head = Dataset(self.images[:first_count], self.labels[:first_count],
                       self.num_classes)
        tail = Dataset(self.images[first_count:], self.labels[first_count:],
                       self.num_classes)
        return head, tail

    def subset(self, count: int) -> "Dataset":
        """The first ``count`` samples (useful for calibration sets)."""
        count = min(count, len(self))
        return Dataset(self.images[:count], self.labels[:count],
                       self.num_classes)

    def batches(self, batch_size: int):
        """Iterate ``(images, labels)`` mini-batches in order."""
        for start in range(0, len(self), batch_size):
            yield (self.images[start:start + batch_size],
                   self.labels[start:start + batch_size])

    def class_counts(self) -> np.ndarray:
        """Number of samples per class (balance check for generators)."""
        return np.bincount(self.labels, minlength=self.num_classes)

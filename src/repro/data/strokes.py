"""Procedural digit rendering — the offline stand-in for MNIST.

Each digit class is a set of stroke primitives (polylines and elliptical
arcs) in a unit box.  Rendering samples the strokes densely, stamps them
onto a pixel grid, blurs to a pen-like thickness and applies a random
affine deformation.  The result is a grayscale digit image in ``[0, 1]``
that LeNet-class networks learn to the same accuracy regime as MNIST.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.errors import ShapeError

__all__ = ["DIGIT_STROKES", "render_digit", "rasterize_strokes"]


def _line(p0: tuple[float, float], p1: tuple[float, float],
          n: int = 40) -> np.ndarray:
    t = np.linspace(0.0, 1.0, n)[:, np.newaxis]
    return (1 - t) * np.asarray(p0) + t * np.asarray(p1)


def _arc(center: tuple[float, float], rx: float, ry: float,
         start_deg: float, end_deg: float, n: int = 60) -> np.ndarray:
    theta = np.radians(np.linspace(start_deg, end_deg, n))
    xs = center[0] + rx * np.cos(theta)
    ys = center[1] - ry * np.sin(theta)
    return np.stack([xs, ys], axis=1)


def _build_digit_strokes() -> dict[int, list[np.ndarray]]:
    """Stroke sets per digit, as (x, y) point arrays with y pointing down."""
    return {
        0: [_arc((0.50, 0.50), 0.27, 0.38, 0, 360)],
        1: [_line((0.35, 0.28), (0.52, 0.10)),
            _line((0.52, 0.10), (0.52, 0.90))],
        2: [_arc((0.50, 0.32), 0.24, 0.20, 160, -20),
            _line((0.72, 0.40), (0.27, 0.88)),
            _line((0.27, 0.88), (0.76, 0.88))],
        3: [_arc((0.47, 0.30), 0.22, 0.17, 150, -60),
            _arc((0.47, 0.68), 0.25, 0.20, 70, -140)],
        4: [_line((0.62, 0.10), (0.22, 0.62)),
            _line((0.22, 0.62), (0.80, 0.62)),
            _line((0.62, 0.10), (0.62, 0.90))],
        5: [_line((0.72, 0.12), (0.30, 0.12)),
            _line((0.30, 0.12), (0.28, 0.48)),
            _arc((0.47, 0.67), 0.24, 0.21, 110, -120)],
        6: [_arc((0.58, 0.38), 0.24, 0.30, 60, 180),
            _arc((0.48, 0.68), 0.20, 0.20, 0, 360)],
        7: [_line((0.25, 0.14), (0.76, 0.14)),
            _line((0.76, 0.14), (0.40, 0.90))],
        8: [_arc((0.50, 0.30), 0.18, 0.17, 0, 360),
            _arc((0.50, 0.68), 0.22, 0.21, 0, 360)],
        9: [_arc((0.50, 0.32), 0.20, 0.19, 0, 360),
            _line((0.70, 0.34), (0.60, 0.90))],
    }


DIGIT_STROKES: dict[int, list[np.ndarray]] = _build_digit_strokes()


def rasterize_strokes(
    strokes: list[np.ndarray],
    size: int = 28,
    thickness: float = 0.9,
    jitter: float = 0.0,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Stamp unit-box strokes onto a ``size``×``size`` grid.

    ``thickness`` is the Gaussian pen radius in pixels; ``jitter`` adds
    smooth per-stroke control-point noise (fraction of the box) so no two
    rendered instances are identical.
    """
    if size < 8:
        raise ShapeError(f"canvas too small to draw digits: {size}")
    rng = rng or np.random.default_rng(0)
    canvas = np.zeros((size, size))
    margin = 0.12 * size
    span = size - 2 * margin
    for stroke in strokes:
        pts = stroke.copy()
        if jitter > 0.0:
            offset = rng.normal(0.0, jitter, size=(1, 2))
            wobble = rng.normal(0.0, jitter * 0.5, size=pts.shape)
            smooth = ndimage.gaussian_filter1d(wobble, sigma=6.0, axis=0)
            pts = pts + offset + smooth
        xs = margin + pts[:, 0] * span
        ys = margin + pts[:, 1] * span
        cols = np.clip(np.rint(xs), 0, size - 1).astype(np.int64)
        rows = np.clip(np.rint(ys), 0, size - 1).astype(np.int64)
        np.add.at(canvas, (rows, cols), 1.0)
    canvas = ndimage.gaussian_filter(canvas, sigma=thickness)
    peak = canvas.max()
    if peak > 0:
        canvas = np.tanh(2.5 * canvas / peak * 2.0)
        canvas /= canvas.max()
    return canvas


def _random_affine(
    image: np.ndarray, rng: np.random.Generator,
    max_rotate_deg: float, scale_range: tuple[float, float],
    max_shear: float, max_shift: float,
) -> np.ndarray:
    """Apply a random rotation/scale/shear/shift around the image centre."""
    angle = np.radians(rng.uniform(-max_rotate_deg, max_rotate_deg))
    scale = rng.uniform(*scale_range)
    shear = rng.uniform(-max_shear, max_shear)
    cos, sin = np.cos(angle), np.sin(angle)
    rotation = np.array([[cos, -sin], [sin, cos]])
    shear_m = np.array([[1.0, shear], [0.0, 1.0]])
    matrix = (rotation @ shear_m) / scale
    centre = np.array(image.shape) / 2.0 - 0.5
    shift = rng.uniform(-max_shift, max_shift, size=2)
    offset = centre - matrix @ (centre + shift)
    return ndimage.affine_transform(
        image, matrix, offset=offset, order=1, mode="constant", cval=0.0
    )


def render_digit(
    digit: int,
    rng: np.random.Generator,
    size: int = 28,
    augment: bool = True,
) -> np.ndarray:
    """Render one randomized instance of ``digit`` as a ``[0, 1]`` image."""
    if digit not in DIGIT_STROKES:
        raise ShapeError(f"digit must be 0..9, got {digit}")
    thickness = rng.uniform(0.75, 1.25) if augment else 0.9
    jitter = 0.018 if augment else 0.0
    image = rasterize_strokes(
        DIGIT_STROKES[digit], size=size, thickness=thickness,
        jitter=jitter, rng=rng,
    )
    if augment:
        image = _random_affine(
            image, rng, max_rotate_deg=12.0, scale_range=(0.85, 1.12),
            max_shear=0.15, max_shift=1.8,
        )
        noise = rng.normal(0.0, 0.03, size=image.shape)
        image = image + noise
    return np.clip(image, 0.0, 1.0)

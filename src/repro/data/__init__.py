"""Synthetic dataset generators (offline stand-ins for MNIST / CIFAR-100)."""

from repro.data.cifar_synth import (
    NUM_PALETTES,
    NUM_SHAPES,
    SyntheticCIFAR100,
    generate_cifar100,
)
from repro.data.dataset import Dataset
from repro.data.mnist_synth import SyntheticMNIST, generate_mnist
from repro.data.strokes import DIGIT_STROKES, rasterize_strokes, render_digit

__all__ = [
    "DIGIT_STROKES",
    "Dataset",
    "NUM_PALETTES",
    "NUM_SHAPES",
    "SyntheticCIFAR100",
    "SyntheticMNIST",
    "generate_cifar100",
    "generate_mnist",
    "rasterize_strokes",
    "render_digit",
]

"""Exception hierarchy for the repro library.

All library-specific failures derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class EncodingError(ReproError):
    """Raised when a spike-train encoding or decoding request is invalid."""


class QuantizationError(ReproError):
    """Raised for invalid quantization parameters or unfitted quantizers."""


class ShapeError(ReproError):
    """Raised when tensor shapes are incompatible with an operation."""


class ConversionError(ReproError):
    """Raised when an ANN cannot be converted to an SNN."""


class CompilationError(ReproError):
    """Raised when a model cannot be mapped onto the accelerator."""


class ConfigurationError(ReproError):
    """Raised for invalid accelerator or unit configurations."""


class CapacityError(ReproError):
    """Raised when a model exceeds a hardware memory capacity constraint."""


class SimulationError(ReproError):
    """Raised when the functional hardware simulation reaches a bad state."""


class ServeError(ReproError):
    """Raised for invalid inference-serving requests or server states."""


class BackpressureError(ServeError):
    """Raised when a non-waiting submit finds the request queue full."""


class RequestTimeoutError(ServeError):
    """Raised when a request's queue-wait deadline passes before dispatch."""


class DeploymentError(ReproError):
    """Raised when work is routed to a deployment that does not exist.

    A :class:`~repro.runtime.WorkItem` names its deployment by table
    index (and serving requests by registry name); an index outside the
    registered table — or an unknown name — is a caller bug, surfaced as
    this typed error on every executor (thread, process, remote TCP) so
    multi-model routing mistakes never degrade to a bare ``IndexError``.
    """


class CodecError(ReproError):
    """Raised when a wire frame fails structural validation.

    The binary frame codec validates the magic, the declared lengths and
    every array descriptor (whitelisted dtype, shape/byte accounting)
    *before* allocating or copying any buffer, so a truncated header, an
    oversized length prefix or a smuggled dtype is rejected as this
    typed error instead of an allocation, an overflow or an unpickle.
    """


class FabricAuthError(ReproError):
    """Raised when a fabric message fails the shared-secret handshake.

    Servers started with a token reject unauthenticated payloads with a
    structured error carrying this type; clients resurrect it so a
    missing/wrong ``--token`` reads as an auth failure, not a crash.
    """


class ReplicaDivergenceError(ServeError):
    """Raised when replicas of one deployment disagree bit-for-bit.

    The engines are deterministic, so two replicas of the same
    fingerprint answering different logits or traces means silent
    corruption somewhere in the stack — the replicated-serving path
    runtime-asserts bit-identity across replicas and surfaces any
    divergence as this error instead of picking a winner.
    """


class RolloutError(ServeError):
    """Raised when a blue/green rollout cannot be performed.

    Flipping an alias to a deployment that is not registered (or not
    yet serving) would drop requests; the rollout path refuses with
    this typed error instead.
    """


class WorkerCrashError(ReproError):
    """Raised when a runtime worker (process or remote host) dies or hangs.

    The :class:`~repro.runtime.WorkerGroup` scheduler catches this,
    evicts the worker and requeues its in-flight work on a healthy one;
    callers only see it when no healthy worker remains.
    """


class RemoteExecutionError(ReproError):
    """Raised when a remote worker reports a task-level failure.

    The worker itself is healthy (the connection answered); the work item
    it was given could not be executed — a shape mismatch, an unknown
    backend name, a deployment that was never registered.
    """

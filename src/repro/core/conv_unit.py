"""Functional model of one convolution unit (Fig. 2).

``run_pass`` executes Alg. 1 for a group of output channels assigned to
this unit: the full (time step → input channel → row → shift) loop nest on
real spike data, through the input shift register, the ``Y × X`` adder
array and the output accumulator.  The result is bit-exact against the
reference integer semantics — the tests enforce this for random layers —
and cycle costs are charged from the same formulas the analytic model
uses, so functional runs and estimates always agree.

Channel packing: when several whole input rows fit the shift register
(``repro.core.latency.channels_per_pass``), a pass computes that many
output channels at once; slot ``s`` of the register carries a copy of the
input row at offset ``s · W_in`` and feeds the adder-column slot of its
channel.
"""

from __future__ import annotations

import numpy as np

from repro.core.adder_array import AdderArray
from repro.core.calibration import DEFAULT_LATENCY, LatencyCalibration
from repro.core.config import AcceleratorConfig
from repro.core.latency import channels_per_pass, conv_pass_cycles
from repro.core.output_logic import OutputAccumulator
from repro.core.shift_register import InputShiftRegister
from repro.core.stats import UnitStats
from repro.errors import ShapeError, SimulationError
from repro.snn.spec import QuantConvSpec

__all__ = ["ConvUnit"]


class ConvUnit:
    """One convolution unit: shift register + adder array + output logic."""

    def __init__(
        self,
        config: AcceleratorConfig,
        unit_id: int = 0,
        calibration: LatencyCalibration = DEFAULT_LATENCY,
    ) -> None:
        self.config = config
        self.unit_id = unit_id
        self.calibration = calibration

    def run_pass(
        self,
        spec: QuantConvSpec,
        input_bits: np.ndarray,
        channels: list[int],
        num_steps: int,
    ) -> tuple[np.ndarray, UnitStats]:
        """Compute ``channels`` of one conv layer from an input spike train.

        Parameters
        ----------
        spec:
            The quantized layer.
        input_bits:
            ``uint8`` spike tensor of shape ``(T, C_in, H, W)``.
        channels:
            Output-channel indices computed in this pass; must not exceed
            the unit's packing capacity.

        Returns
        -------
        ``(activations, stats)`` where ``activations`` is the requantized
        ``T``-bit integer tensor ``(len(channels), H_out, W_out)``.
        """
        kr, kc = spec.kernel_size
        c_in, h_in, w_in = spec.in_shape
        _, h_out, w_out = spec.out_shape
        t_steps, c_bits, h_bits, w_bits = input_bits.shape
        if (c_bits, h_bits, w_bits) != spec.in_shape or t_steps != num_steps:
            raise ShapeError(
                f"input bits {input_bits.shape} do not match layer input "
                f"(T={num_steps}, {spec.in_shape})"
            )
        capacity = channels_per_pass(spec, self.config)
        if not channels:
            raise SimulationError("a pass needs at least one channel")
        if len(channels) > capacity:
            raise SimulationError(
                f"{len(channels)} channels exceed the unit's packing "
                f"capacity of {capacity}"
            )
        if kr > self.config.conv_unit.rows:
            raise SimulationError(
                f"kernel of {kr} rows exceeds the unit's "
                f"{self.config.conv_unit.rows} adder rows"
            )

        pad = spec.padding
        w_padded = w_in + 2 * pad
        h_padded = h_in + 2 * pad
        n_slots = len(channels)
        # The register spans the whole (replicated) input row; strided
        # layers may need more reach than the nominal X + Kc - 1.
        register_length = max(
            self.config.conv_unit.columns + kc - 1,
            n_slots * w_padded,
            (w_out - 1) * spec.stride + kc,
        )
        register = InputShiftRegister(register_length)
        array = AdderArray(self.config.conv_unit.columns, kr)
        acc = OutputAccumulator(n_slots, h_out, w_out)
        stats = UnitStats()

        # Tap index per adder column: slot s, output position w reads
        # register position s*W_padded + w*stride + (current shift).
        tap_base = np.concatenate([
            s * w_padded + np.arange(w_out) * spec.stride
            for s in range(n_slots)
        ])
        used_columns = n_slots * w_out
        # Kernel value per (adder row, column) for each kernel column j:
        # every column of slot s carries channel ch_s's value.
        kernel_planes = np.zeros(
            (kc, kr, self.config.conv_unit.columns), dtype=np.int64)

        for step in range(num_steps):
            acc.begin_time_step()
            for cin in range(c_in):
                for j in range(kc):
                    per_channel = spec.weights[channels][:, cin, :, j]
                    col = np.repeat(per_channel, w_out, axis=0).T
                    kernel_planes[j, :, :used_columns] = col
                array.reset()
                plane = input_bits[step, cin]
                for row in range(h_padded):
                    src = row - pad
                    padded_row = np.zeros(w_padded, dtype=np.uint8)
                    if 0 <= src < h_in:
                        padded_row[pad:pad + w_in] = plane[src]
                    replicated = np.tile(padded_row, n_slots)
                    register.load_row(replicated)
                    for j in range(kc):
                        taps = np.zeros(self.config.conv_unit.columns,
                                        dtype=np.uint8)
                        taps[:used_columns] = register.bits[tap_base + j]
                        array.step(taps, kernel_planes[j])
                    completed = array.advance()
                    out_row = row - (kr - 1)
                    if out_row >= 0 and out_row % spec.stride == 0:
                        out_row //= spec.stride
                        if out_row < h_out:
                            for s in range(n_slots):
                                acc.add_row(
                                    s, out_row,
                                    completed[s * w_out:(s + 1) * w_out])
                    stats.traffic.activation_read_bits += w_in
                    stats.traffic.kernel_read_values += kr * n_slots
                stats.cycles += conv_pass_cycles(spec, self.calibration)
            stats.cycles += self.calibration.conv_pass_setup
        stats.adder_ops = array.adder_ops
        stats.accumulator_writes = acc.writes
        activations = acc.finalize(
            spec.bias[channels], spec.scales[channels], num_steps)
        stats.traffic.activation_write_bits = int(
            activations.size * num_steps)
        return activations, stats

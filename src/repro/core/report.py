"""Performance report: the metrics the paper's tables quote, in one place."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PerformanceReport"]


@dataclass(frozen=True)
class PerformanceReport:
    """One deployment's headline numbers (a row of Table III)."""

    model_name: str
    num_steps: int
    num_conv_units: int
    clock_mhz: float
    cycles: int
    latency_us: float
    throughput_fps: float
    power_w: float
    energy_per_frame_mj: float
    luts: int
    ffs: int
    bram_blocks: int
    bram_mbit: float
    weights_on_chip: bool
    accuracy: float | None = None

    def summary(self) -> str:
        """Human-readable one-deployment summary."""
        acc = (f"{self.accuracy * 100:.2f}%" if self.accuracy is not None
               else "n/a")
        storage = "on-chip" if self.weights_on_chip else "DRAM"
        lines = [
            f"model        : {self.model_name}",
            f"time steps   : {self.num_steps}",
            f"conv units   : {self.num_conv_units}",
            f"clock        : {self.clock_mhz:.0f} MHz",
            f"accuracy     : {acc}",
            f"latency      : {self.latency_us:,.0f} us "
            f"({self.cycles:,} cycles)",
            f"throughput   : {self.throughput_fps:,.1f} fps",
            f"power        : {self.power_w:.2f} W",
            f"energy/frame : {self.energy_per_frame_mj:.3f} mJ",
            f"resources    : {self.luts:,} LUTs / {self.ffs:,} FFs / "
            f"{self.bram_blocks} BRAM blocks ({self.bram_mbit:.1f} Mbit)",
            f"weights      : {storage}",
        ]
        return "\n".join(lines)

"""Pluggable execution engines for the functional accelerator model.

Importing this package registers the built-in backends:

* ``reference`` — :class:`~repro.core.engine.reference.ReferenceEngine`,
  the shift-register/adder-array hardware model (slow, per-image);
* ``vectorized`` — :class:`~repro.core.engine.vectorized.VectorizedEngine`,
  batched numpy tensor ops with identical integer semantics and traces;
* ``sparse`` — :class:`~repro.core.engine.sparse.SparseEngine`,
  the vectorized semantics restricted to active spike planes: all-zero
  images/patches/taps are skipped, bits and traces unchanged;
* ``auto`` — :class:`~repro.core.engine.auto.AutoEngine`, which routes
  each batch to ``sparse`` or ``vectorized`` by its observed density
  using the deployment's calibrated crossover.

Select one with ``Accelerator(config, backend="vectorized")`` or
``create_engine("vectorized", compiled)``.  ``repro calibrate`` (or
:func:`~repro.core.engine.calibrate.calibrate_deployment`) measures the
sparse/dense crossovers per deployment and persists them; engines pick
installed tables up automatically at construction.
"""

from repro.core.engine.auto import AutoEngine
from repro.core.engine.base import (
    ExecutionEngine,
    available_backends,
    create_engine,
    register_engine,
    resolve_backend,
)
from repro.core.engine.cache import (
    clear_engine_cache,
    engine_cache_stats,
    network_fingerprint,
    warm_compile,
    warm_engine,
)
from repro.core.engine.calibrate import (
    CalibrationTable,
    EngineThresholds,
    calibrate_deployment,
    calibration_store_key,
    clear_calibration_tables,
    install_table,
    lookup_table,
    thresholds_for,
)
from repro.core.engine.reference import ReferenceEngine
from repro.core.engine.sparse import SparseEngine
from repro.core.engine.trace import ExecutionTrace, LayerTrace, TraceMerge
from repro.core.engine.vectorized import VectorizedEngine

__all__ = [
    "AutoEngine",
    "CalibrationTable",
    "EngineThresholds",
    "ExecutionEngine",
    "ExecutionTrace",
    "LayerTrace",
    "TraceMerge",
    "ReferenceEngine",
    "SparseEngine",
    "VectorizedEngine",
    "available_backends",
    "calibrate_deployment",
    "calibration_store_key",
    "clear_calibration_tables",
    "clear_engine_cache",
    "create_engine",
    "engine_cache_stats",
    "install_table",
    "lookup_table",
    "network_fingerprint",
    "register_engine",
    "resolve_backend",
    "thresholds_for",
    "warm_compile",
    "warm_engine",
]

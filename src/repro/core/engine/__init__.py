"""Pluggable execution engines for the functional accelerator model.

Importing this package registers the built-in backends:

* ``reference`` — :class:`~repro.core.engine.reference.ReferenceEngine`,
  the shift-register/adder-array hardware model (slow, per-image);
* ``vectorized`` — :class:`~repro.core.engine.vectorized.VectorizedEngine`,
  batched numpy tensor ops with identical integer semantics and traces;
* ``sparse`` — :class:`~repro.core.engine.sparse.SparseEngine`,
  the vectorized semantics restricted to active spike planes: all-zero
  images/patches/taps are skipped, bits and traces unchanged.

Select one with ``Accelerator(config, backend="vectorized")`` or
``create_engine("vectorized", compiled)``.
"""

from repro.core.engine.base import (
    ExecutionEngine,
    available_backends,
    create_engine,
    register_engine,
    resolve_backend,
)
from repro.core.engine.cache import (
    clear_engine_cache,
    engine_cache_stats,
    network_fingerprint,
    warm_compile,
    warm_engine,
)
from repro.core.engine.reference import ReferenceEngine
from repro.core.engine.sparse import SparseEngine
from repro.core.engine.trace import ExecutionTrace, LayerTrace, TraceMerge
from repro.core.engine.vectorized import VectorizedEngine

__all__ = [
    "ExecutionEngine",
    "ExecutionTrace",
    "LayerTrace",
    "TraceMerge",
    "ReferenceEngine",
    "SparseEngine",
    "VectorizedEngine",
    "available_backends",
    "clear_engine_cache",
    "create_engine",
    "engine_cache_stats",
    "network_fingerprint",
    "register_engine",
    "resolve_backend",
    "warm_compile",
    "warm_engine",
]

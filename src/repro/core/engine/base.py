"""The execution-engine abstraction: interchangeable functional backends.

An :class:`ExecutionEngine` executes a compiled model on batches of
images and returns logits plus per-image :class:`ExecutionTrace` records.
Two backends ship with the repo —

* ``reference`` — the shift-register/adder-array hardware model, bit- and
  cycle-faithful to the paper's microarchitecture (slow, per-image);
* ``vectorized`` — whole-batch numpy tensor ops with the identical
  integer semantics and trace accounting (fast, for sweeps and serving).

Backends register themselves under a short name; :func:`create_engine`
resolves a name (or an :class:`ExecutionEngine` subclass) to an instance
bound to a compiled model.  The equivalence suite pins both backends to
bit-identical logits and identical traces, so callers may switch freely.
"""

from __future__ import annotations

import abc
import inspect

import numpy as np

from repro.core.calibration import DEFAULT_LATENCY, LatencyCalibration
from repro.core.compiler import CompiledModel
from repro.core.engine.trace import ExecutionTrace, TraceMerge
from repro.errors import ConfigurationError, ShapeError

__all__ = [
    "ExecutionEngine",
    "available_backends",
    "create_engine",
    "register_engine",
    "resolve_backend",
]


class ExecutionEngine(abc.ABC):
    """Executes a compiled model; one instance per deployment."""

    #: Registry name of the backend (subclasses override).
    name: str = "abstract"

    def __init__(
        self,
        compiled: CompiledModel,
        calibration: LatencyCalibration = DEFAULT_LATENCY,
    ) -> None:
        self.compiled = compiled
        self.calibration = calibration

    @abc.abstractmethod
    def run_batch(
        self, images: np.ndarray
    ) -> tuple[np.ndarray, list[ExecutionTrace]]:
        """Infer a ``(N, C, H, W)`` batch of images in ``[0, 1]``.

        Returns ``(logits, traces)`` where ``logits`` is the integer
        logit-accumulator tensor ``(N, num_classes)`` and ``traces`` holds
        one :class:`ExecutionTrace` per image.
        """

    def run_merged(
        self, images: np.ndarray
    ) -> tuple[np.ndarray, list[TraceMerge]]:
        """Infer a batch; returns per-image :class:`TraceMerge` records.

        This is the shape runtime workers ship across process and host
        boundaries: integer counter aggregates (JSON/pickle friendly),
        one per image, whose fold equals the fold of the raw traces —
        so any re-grouping downstream stays bit-identical.
        """
        logits, traces = self.run_batch(images)
        return logits, [TraceMerge.from_traces([t]) for t in traces]

    def run_image(self, image: np.ndarray) -> tuple[np.ndarray,
                                                    ExecutionTrace]:
        """Infer one ``(C, H, W)`` image; returns (logits, trace)."""
        logits, traces = self.run_batch(np.asarray(image)[np.newaxis])
        return logits[0], traces[0]

    def _check_batch(self, images: np.ndarray) -> np.ndarray:
        """Validate a batch against the deployed network's input shape."""
        images = np.asarray(images)
        expected = self.compiled.network.input_shape
        if images.ndim != 4 or images.shape[1:] != expected:
            raise ShapeError(
                f"expected a batch of images shaped (N, "
                f"{', '.join(map(str, expected))}), got {images.shape}"
            )
        if images.shape[0] == 0:
            raise ShapeError("batch of images is empty")
        return images


_ENGINES: dict[str, type[ExecutionEngine]] = {}


def register_engine(cls: type[ExecutionEngine]) -> type[ExecutionEngine]:
    """Class decorator: make a backend selectable by its ``name``."""
    if not cls.name or cls.name == "abstract":
        raise ConfigurationError(
            f"engine {cls.__name__} must define a registry name")
    _ENGINES[cls.name] = cls
    return cls


def available_backends() -> tuple[str, ...]:
    """Names of all registered execution backends."""
    return tuple(sorted(_ENGINES))


def resolve_backend(
    backend: str | type[ExecutionEngine],
) -> type[ExecutionEngine]:
    """Map a backend name (or engine subclass) to the engine class."""
    if isinstance(backend, type) and issubclass(backend, ExecutionEngine):
        if inspect.isabstract(backend) or backend is ExecutionEngine:
            raise ConfigurationError(
                f"{backend.__name__} is abstract; pass a concrete engine "
                f"or a name from: {', '.join(available_backends())}"
            )
        return backend
    if isinstance(backend, str):
        try:
            return _ENGINES[backend]
        except KeyError:
            raise ConfigurationError(
                f"unknown execution backend {backend!r}; available: "
                f"{', '.join(available_backends())}"
            ) from None
    raise ConfigurationError(
        f"backend must be a name or an ExecutionEngine subclass, "
        f"got {backend!r}"
    )


def create_engine(
    backend: str | type[ExecutionEngine],
    compiled: CompiledModel,
    calibration: LatencyCalibration = DEFAULT_LATENCY,
) -> ExecutionEngine:
    """Instantiate a backend for a compiled model."""
    return resolve_backend(backend)(compiled, calibration)

"""Warm-instance cache: compile once, reuse everywhere.

Hot paths — the inference server's engine pool, sweep workers, repeated
``SweepDriver.run`` calls in one process — used to pay
:func:`~repro.core.compiler.compile_network` (and engine construction)
per batch or per run.  Compilation is pure: its output depends only on
the quantized network, the accelerator config and the calibration, so a
content-keyed cache can hand back the *same* compiled model (and the
same engine instance) without any observable difference.  The test suite
asserts warm reuse is bit-identical — same logits, same traces — to a
cold compile.

Keys are content fingerprints (SHA-256 over every layer's weight arrays
plus the frozen config/calibration fields), not object identities, so
two structurally identical deployments share one compiled model even
when the network objects differ.  Engines hold no per-request mutable
state (``run_batch`` is a pure function of its inputs), which is what
makes sharing instances safe; the cache is process-local and guarded by
a lock so threaded servers can warm it concurrently.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import fields, is_dataclass

import numpy as np

from repro.core.calibration import DEFAULT_LATENCY, LatencyCalibration
from repro.core.compiler import CompiledModel, compile_network
from repro.core.config import AcceleratorConfig
from repro.core.engine.base import ExecutionEngine, create_engine, resolve_backend

__all__ = [
    "clear_engine_cache",
    "content_key",
    "engine_cache_stats",
    "network_fingerprint",
    "warm_compile",
    "warm_engine",
]

_LOCK = threading.Lock()
_COMPILED: dict[str, CompiledModel] = {}
_ENGINES: dict[str, ExecutionEngine] = {}
_STATS = {"compile_hits": 0, "compile_misses": 0,
          "engine_hits": 0, "engine_misses": 0}


def _feed(digest, value) -> None:
    """Fold one field value into a hash, structure included.

    Handles the shapes that occur in network/config/calibration specs:
    numpy arrays (dtype + shape + raw bytes), nested dataclasses, tuples
    and plain scalars.  Type tags keep e.g. ``(1, 2)`` and ``"(1, 2)"``
    from colliding.
    """
    if isinstance(value, np.ndarray):
        digest.update(b"a")
        digest.update(str(value.dtype).encode())
        digest.update(str(value.shape).encode())
        digest.update(np.ascontiguousarray(value).tobytes())
    elif is_dataclass(value) and not isinstance(value, type):
        digest.update(b"d")
        digest.update(type(value).__name__.encode())
        for f in fields(value):
            digest.update(f.name.encode())
            _feed(digest, getattr(value, f.name))
    elif isinstance(value, (tuple, list)):
        digest.update(b"t")
        for item in value:
            _feed(digest, item)
    else:
        digest.update(b"s")
        digest.update(repr(value).encode())


def network_fingerprint(network) -> str:
    """Content hash of a :class:`~repro.snn.spec.QuantizedNetwork`."""
    digest = hashlib.sha256()
    _feed(digest, network)
    return digest.hexdigest()


def content_key(network, config: AcceleratorConfig,
                calibration: LatencyCalibration | None = None) -> str:
    """The cache's content fingerprint over a deployment's inputs.

    Public because the deployment registry keys named deployments by the
    same fingerprint the warm cache uses — one definition, so "same
    fingerprint" and "same warm engine" can never disagree.
    """
    digest = hashlib.sha256()
    _feed(digest, network)
    _feed(digest, config)
    if calibration is not None:
        _feed(digest, calibration)
    return digest.hexdigest()


_key = content_key


def warm_compile(
    network,
    config: AcceleratorConfig,
) -> CompiledModel:
    """Compile ``network`` for ``config``, served from the cache on reuse.

    Compilation depends only on the network and the config — not on any
    latency calibration — so deployments that differ only in
    calibration share one compiled model.  The returned
    :class:`CompiledModel` may be shared between callers; engines never
    mutate it.
    """
    register_cache_sampler()
    key = _key(network, config)
    with _LOCK:
        compiled = _COMPILED.get(key)
        if compiled is not None:
            _STATS["compile_hits"] += 1
            return compiled
        _STATS["compile_misses"] += 1
    compiled = compile_network(network, config)
    with _LOCK:
        return _COMPILED.setdefault(key, compiled)


def warm_engine(
    network,
    config: AcceleratorConfig,
    backend: str | type[ExecutionEngine] = "vectorized",
    calibration: LatencyCalibration = DEFAULT_LATENCY,
) -> ExecutionEngine:
    """A ready-to-run engine for a deployment, cached across callers.

    Repeated calls with content-equal arguments return the *same* engine
    instance, skipping compilation and construction entirely — the hot
    path the serving and sweep layers sit on.  ``run_batch`` is stateless
    per call, so one instance may serve many callers (and threads).
    """
    name = resolve_backend(backend).name
    key = f"{name}:{_key(network, config, calibration)}"
    with _LOCK:
        engine = _ENGINES.get(key)
        if engine is not None:
            _STATS["engine_hits"] += 1
            return engine
        _STATS["engine_misses"] += 1
    compiled = warm_compile(network, config)
    engine = create_engine(backend, compiled, calibration)
    with _LOCK:
        return _ENGINES.setdefault(key, engine)


def engine_cache_stats() -> dict:
    """Hit/miss counters plus entry counts (diagnostics and tests)."""
    with _LOCK:
        return dict(_STATS, compiled_entries=len(_COMPILED),
                    engine_entries=len(_ENGINES))


def _sample_cache_gauges() -> None:
    """Scrape-time sampler: mirror the cache stats into the registry."""
    from repro.telemetry import get_registry
    gauge = get_registry().gauge(
        "repro_engine_cache",
        "Warm compile/engine cache counters, by stat",
        labelnames=("stat",))
    for stat, value in engine_cache_stats().items():
        gauge.labels(stat=stat).set(value)


def register_cache_sampler() -> None:
    """Attach the cache sampler to the process-wide registry (idempotent
    — ``register_sampler`` dedups by function identity)."""
    from repro.telemetry import get_registry
    get_registry().register_sampler(_sample_cache_gauges)


def clear_engine_cache() -> None:
    """Drop every cached compile and engine (tests, memory pressure)."""
    with _LOCK:
        _COMPILED.clear()
        _ENGINES.clear()
        for counter in _STATS:
            _STATS[counter] = 0

"""The vectorized backend: whole-batch tensor execution, identical traces.

The reference engine simulates every register shift, which makes anything
beyond a handful of images intractable in Python.  This backend exploits
that the accelerator's arithmetic is *linear per layer*: summing binary
spike planes with a left-shifting accumulator over ``T`` steps is exactly
one integer convolution / pooling / matmul over the radix-decoded
activations.  It therefore runs each layer as a single im2col-GEMM (or
window-sum / matmul) over the whole batch and requantizes with the shared
:func:`~repro.snn.spec.requantize` contract — bit-identical logits by
construction (float64 GEMMs are exact at these integer magnitudes, the
same argument ``SNNModel.forward_ints`` relies on).

Trace parity: cycle and memory-traffic counters are charged from the same
calibrated formulas the unit models charge per loop iteration, collapsed
into closed forms; the data-dependent adder-operation counters are
recovered from spike popcounts (a spike train's per-step bits of value
``v`` sum to ``popcount(v)``).  The equivalence suite pins every trace
field against the reference engine.

The arithmetic itself is factored into four overridable hooks —
:meth:`VectorizedEngine._conv_acc`, :meth:`~VectorizedEngine._pool_sums`,
:meth:`~VectorizedEngine._linear_acc` and
:meth:`~VectorizedEngine._popcount_sum` — so alternative compute
strategies (see :mod:`repro.core.engine.sparse`) can swap the tensor
kernels while inheriting every cycle/traffic charge unchanged.  The
charges are closed-form in the layer geometry (data-independent), so any
subclass that only overrides the hooks produces identical traces by
construction; the logits contract is that each hook returns the exact
integer the dense formula returns.
"""

from __future__ import annotations

import numpy as np

from repro.core.compiler import CompiledModel, LayerProgram
from repro.core.engine.base import ExecutionEngine, register_engine
from repro.core.engine.trace import ExecutionTrace, LayerTrace
from repro.core.latency import (
    conv_pass_cycles,
    dram_stream_cycles,
    flatten_cycles,
    input_load_cycles,
)
from repro.core.stats import MemoryTraffic
from repro.encoding import radix
from repro.errors import SimulationError
from repro.nn import functional as F
from repro.snn.spec import requantize

__all__ = ["VectorizedEngine"]


def _popcount(values: np.ndarray, num_steps: int) -> np.ndarray:
    """Per-element spike count of a ``T``-step radix train (elementwise)."""
    v = values.astype(np.int64, copy=True)
    pop = np.zeros(values.shape, dtype=np.int64)
    for _ in range(num_steps):
        pop += v & 1
        v >>= 1
    return pop


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


class _LayerResult:
    """One layer's batched output plus its (shared + per-image) charges."""

    def __init__(self, out: np.ndarray, cycles: int,
                 adder_ops: np.ndarray, traffic: MemoryTraffic) -> None:
        self.out = out
        self.cycles = cycles
        self.adder_ops = adder_ops  # (N,) — the only data-dependent counter
        self.traffic = traffic


@register_engine
class VectorizedEngine(ExecutionEngine):
    """Batched integer-tensor execution with reference-identical traces."""

    name = "vectorized"

    def run_batch(
        self, images: np.ndarray
    ) -> tuple[np.ndarray, list[ExecutionTrace]]:
        images = self._check_batch(images)
        network = self.compiled.network
        t = network.num_steps
        n = images.shape[0]
        x = radix.quantize_real(images, t)  # (N, C, H, W) int64

        traces = [ExecutionTrace() for _ in range(n)]
        in_cycles = input_load_cycles(network.input_shape,
                                      self.calibration, t)
        for trace in traces:
            trace.input_cycles = in_cycles

        logits: np.ndarray | None = None
        for program in self.compiled.programs:
            dram_cycles = 0
            streamed_bits = 0
            if (program.kind in ("conv", "linear")
                    and not program.weights_on_chip):
                streamed_bits = (program.spec.num_weights
                                 * network.weight_bits)
                if streamed_bits:
                    dram_cycles = dram_stream_cycles(
                        streamed_bits, self.compiled.config)
            if program.kind == "conv":
                result = self._run_conv(program, x, t)
            elif program.kind == "pool":
                result = self._run_pool(program, x, t)
            elif program.kind == "flatten":
                result = self._run_flatten(program, x, t)
            else:  # linear
                result = self._run_linear(program, x, t)
                if program.spec.is_output:
                    logits = result.out
            x = result.out
            result.traffic.weight_stream_bits += streamed_bits
            for i, trace in enumerate(traces):
                traffic = MemoryTraffic()
                traffic.merge(result.traffic)
                trace.layers.append(LayerTrace(
                    name=program.name, kind=program.kind,
                    cycles=result.cycles, dram_cycles=dram_cycles,
                    adder_ops=int(result.adder_ops[i]), traffic=traffic))
        if logits is None:
            raise SimulationError(
                "compiled model has no output linear layer")
        return logits, traces

    # ------------------------------------------------------------------
    # Compute hooks: the arithmetic, separable from the trace charges.
    # Subclasses may override these (and only these) — each must return
    # the exact integers of the dense formula (float64 GEMMs on integer
    # operands are exact, so term order / dropped zero terms don't
    # change a single bit).
    # ------------------------------------------------------------------
    def _conv_acc(self, spec, x: np.ndarray) -> np.ndarray:
        """Pre-bias convolution accumulator, ``(N, C_out, H_out, W_out)``."""
        acc, _ = F.conv2d(x.astype(np.float64),
                          spec.weights.astype(np.float64),
                          None, spec.stride, spec.padding)
        return np.rint(acc).astype(np.int64)

    def _pool_sums(self, spec, x: np.ndarray) -> np.ndarray:
        """Integer window sums (pre-shift), ``(N,) + spec.out_shape``."""
        return np.rint(
            F.avg_pool2d(x.astype(np.float64), spec.size, spec.stride)
            * spec.size * spec.size).astype(np.int64)

    def _linear_acc(self, spec, x: np.ndarray) -> np.ndarray:
        """Pre-bias matmul accumulator, ``(N, out_features)``."""
        return np.rint(
            x.astype(np.float64) @ spec.weights.T.astype(np.float64)
        ).astype(np.int64)

    def _popcount_sum(self, x: np.ndarray, t: int,
                      weights: np.ndarray | None = None,
                      axis: int | None = None) -> np.ndarray:
        """Per-image weighted spike count, ``(N,)`` int64.

        ``weights`` (if given) is a 1-D integer cover applied along
        ``axis`` of ``x``; with no weights every spike counts once.
        """
        pops = _popcount(x, t)
        if weights is not None:
            shape = [1] * x.ndim
            shape[axis] = -1
            pops = pops * weights.reshape(shape)
        return pops.reshape(x.shape[0], -1).sum(axis=1)

    # ------------------------------------------------------------------
    # Layer executors: batched compute + closed-form trace charges
    # ------------------------------------------------------------------
    def _run_conv(self, program: LayerProgram, x: np.ndarray,
                  t: int) -> _LayerResult:
        spec = program.spec
        cal = self.calibration
        acc = self._conv_acc(spec, x) + spec.bias.reshape(1, -1, 1, 1)
        out = requantize(acc, spec.scales, t, channel_axis=1)

        c_in, h_in, w_in = spec.in_shape
        c_out, h_out, w_out = spec.out_shape
        kr, kc = spec.kernel_size
        h_padded = h_in + 2 * spec.padding
        # Every unit pass sweeps all padded rows of every input channel at
        # every step; rounds run back to back, concurrent units tie.
        per_round = t * (c_in * conv_pass_cycles(spec, cal)
                         + cal.conv_pass_setup)
        rounds = program.conv_schedule.num_rounds
        cycles = rounds * per_round + cal.layer_setup

        groups = sum(len(r) for r in program.conv_schedule.rounds)
        traffic = MemoryTraffic(
            activation_read_bits=groups * t * c_in * h_padded * w_in,
            activation_write_bits=c_out * h_out * w_out * t,
            kernel_read_values=t * c_in * h_padded * kr * c_out,
        )

        # Adder activity: tap (w, j) reads padded column w*stride + j, so
        # an input spike in column x feeds cover(x) shift cycles, each
        # driving the kr adder rows of every output channel's slot.
        cover = np.zeros(w_in + 2 * spec.padding, dtype=np.int64)
        for j in range(kc):
            cover[np.arange(w_out) * spec.stride + j] += 1
        inner = cover[spec.padding:spec.padding + w_in]
        spikes = self._popcount_sum(x, t, inner, axis=3)
        adder_ops = kr * c_out * spikes
        return _LayerResult(out, cycles, adder_ops, traffic)

    def _run_pool(self, program: LayerProgram, x: np.ndarray,
                  t: int) -> _LayerResult:
        spec = program.spec
        cal = self.calibration
        out = self._pool_sums(spec, x) >> spec.shift

        c, h_in, w_in = spec.in_shape
        _, h_out, w_out = spec.out_shape
        cycles = (t * c * (h_in * (spec.size + cal.pool_row_overhead)
                           + cal.pool_pass_setup)
                  + cal.layer_setup)
        traffic = MemoryTraffic(
            activation_read_bits=t * c * h_in * w_in,
            activation_write_bits=c * h_out * w_out * t,
        )
        # The pool unit sums whole rows: a spike in input row r is added
        # once per output row whose window covers r.
        cover = np.zeros(h_in, dtype=np.int64)
        for oy in range(h_out):
            cover[oy * spec.stride:oy * spec.stride + spec.size] += 1
        adder_ops = self._popcount_sum(x, t, cover, axis=2)
        return _LayerResult(out, cycles, adder_ops, traffic)

    def _run_flatten(self, program: LayerProgram, x: np.ndarray,
                     t: int) -> _LayerResult:
        spec = program.spec
        out = x.reshape(x.shape[0], -1)
        bits = t * spec.out_features
        traffic = MemoryTraffic(activation_read_bits=bits,
                                activation_write_bits=bits)
        cycles = flatten_cycles(spec, self.compiled.config, t)
        adder_ops = np.zeros(x.shape[0], dtype=np.int64)
        return _LayerResult(out, cycles, adder_ops, traffic)

    def _run_linear(self, program: LayerProgram, x: np.ndarray,
                    t: int) -> _LayerResult:
        spec = program.spec
        cal = self.calibration
        acc = self._linear_acc(spec, x) + spec.bias.reshape(1, -1)
        if spec.is_output:
            out = acc
        else:
            out = requantize(acc, spec.scales, t, channel_axis=1)

        p = self.compiled.config.linear_unit.parallel_outputs
        blocks = _ceil_div(spec.out_features, p)
        cycles = (t * (blocks * (spec.in_features + cal.linear_block_flush)
                       + cal.linear_pass_setup)
                  + cal.layer_setup)
        traffic = MemoryTraffic(
            activation_read_bits=t * spec.in_features,
            activation_write_bits=spec.out_features * t,
            kernel_read_values=t * spec.in_features * spec.out_features,
        )
        # Each input spike gates one add in every parallel output's adder.
        adder_ops = self._popcount_sum(x, t) * spec.out_features
        return _LayerResult(out, cycles, adder_ops, traffic)

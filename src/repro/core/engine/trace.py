"""Execution traces shared by every execution engine.

A functional inference — whichever backend ran it — produces one
:class:`ExecutionTrace` per image: an ordered list of per-layer records
whose cycle charges come from the calibrated latency formulas
(``repro.core.latency``) and whose traffic counters feed the dataflow
ablation and the activity-based energy model.  Backends are required to
produce *identical* traces for identical inputs; the equivalence test
suite enforces this.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.stats import MemoryTraffic

__all__ = ["ExecutionTrace", "LayerTrace"]


@dataclass
class LayerTrace:
    """Per-layer record of one functional inference."""

    name: str
    kind: str
    cycles: int
    dram_cycles: int
    adder_ops: int
    traffic: MemoryTraffic


@dataclass
class ExecutionTrace:
    """Aggregate record of one functional inference."""

    layers: list[LayerTrace] = field(default_factory=list)
    input_cycles: int = 0

    @property
    def total_cycles(self) -> int:
        return self.input_cycles + sum(
            l.cycles + l.dram_cycles for l in self.layers)

    @property
    def total_adder_ops(self) -> int:
        return sum(l.adder_ops for l in self.layers)

    def total_traffic(self) -> MemoryTraffic:
        merged = MemoryTraffic()
        for layer in self.layers:
            merged.merge(layer.traffic)
        return merged

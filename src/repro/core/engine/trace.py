"""Execution traces shared by every execution engine.

A functional inference — whichever backend ran it — produces one
:class:`ExecutionTrace` per image: an ordered list of per-layer records
whose cycle charges come from the calibrated latency formulas
(``repro.core.latency``) and whose traffic counters feed the dataflow
ablation and the activity-based energy model.  Backends are required to
produce *identical* traces for identical inputs; the equivalence test
suite enforces this.

:class:`TraceMerge` is the multi-image (and multi-process) aggregate: a
commutative sum of integer counters, so merging shards in any order —
or splitting a dataset into any shard sizes — yields bit-identical
totals.  The sweep driver ships one ``TraceMerge`` per shard back from
its workers and folds them; energy is derived from the merged counters
(``repro.core.energy.trace_energy``) rather than by summing floats, for
the same determinism reason.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.core.stats import MemoryTraffic

__all__ = ["ExecutionTrace", "LayerTrace", "TraceMerge"]


@dataclass
class LayerTrace:
    """Per-layer record of one functional inference."""

    name: str
    kind: str
    cycles: int
    dram_cycles: int
    adder_ops: int
    traffic: MemoryTraffic


@dataclass
class ExecutionTrace:
    """Aggregate record of one functional inference."""

    layers: list[LayerTrace] = field(default_factory=list)
    input_cycles: int = 0

    @property
    def total_cycles(self) -> int:
        return self.input_cycles + sum(
            l.cycles + l.dram_cycles for l in self.layers)

    @property
    def total_adder_ops(self) -> int:
        return sum(l.adder_ops for l in self.layers)

    def total_traffic(self) -> MemoryTraffic:
        merged = MemoryTraffic()
        for layer in self.layers:
            merged.merge(layer.traffic)
        return merged


@dataclass
class TraceMerge:
    """Order-independent aggregate of many images' execution traces.

    Every field is an exact integer sum, so ``merge`` is associative and
    commutative: sharded runs merge to the same totals as a single
    process, whatever the shard sizes or completion order.  Averages and
    energy are derived views over the summed counters.
    """

    num_images: int = 0
    input_cycles: int = 0
    compute_cycles: int = 0   # sum of per-layer unit cycles
    dram_cycles: int = 0
    adder_ops: int = 0
    traffic: MemoryTraffic = field(default_factory=MemoryTraffic)

    @classmethod
    def from_traces(cls, traces) -> "TraceMerge":
        merged = cls()
        for trace in traces:
            merged.add_trace(trace)
        return merged

    def add_trace(self, trace: ExecutionTrace) -> None:
        """Fold one image's trace into the aggregate."""
        self.num_images += 1
        self.input_cycles += trace.input_cycles
        for layer in trace.layers:
            self.compute_cycles += layer.cycles
            self.dram_cycles += layer.dram_cycles
            self.adder_ops += layer.adder_ops
            self.traffic.merge(layer.traffic)

    def merge(self, other: "TraceMerge") -> None:
        """Fold another aggregate (e.g. a shard's) into this one."""
        self.num_images += other.num_images
        self.input_cycles += other.input_cycles
        self.compute_cycles += other.compute_cycles
        self.dram_cycles += other.dram_cycles
        self.adder_ops += other.adder_ops
        self.traffic.merge(other.traffic)

    # ------------------------------------------------------------------
    # Derived views (the interface trace_energy and reports consume)
    # ------------------------------------------------------------------
    @property
    def total_cycles(self) -> int:
        return self.input_cycles + self.compute_cycles + self.dram_cycles

    @property
    def total_adder_ops(self) -> int:
        return self.adder_ops

    def total_traffic(self) -> MemoryTraffic:
        copied = MemoryTraffic()
        copied.merge(self.traffic)
        return copied

    def cycles_per_image(self) -> float:
        return self.total_cycles / self.num_images if self.num_images else 0.0

    # ------------------------------------------------------------------
    # JSON persistence (the sweep result store)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["traffic"] = asdict(self.traffic)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceMerge":
        traffic = MemoryTraffic(**{k: int(v) for k, v in
                                   payload["traffic"].items()})
        fields = {k: int(v) for k, v in payload.items() if k != "traffic"}
        return cls(traffic=traffic, **fields)

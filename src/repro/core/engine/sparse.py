"""The sparse backend: skip silent spike planes, keep every bit and charge.

Radix-coded SNN activations are mostly zero: a quantized input pixel
that never spikes across the ``T`` steps is a zero in the collapsed
integer tensor, and whole receptive-field patches — often whole images
mid-sweep — carry no spikes at all.  The dense GEMMs in the vectorized
engine multiply all of those zeros anyway.  This backend subclasses
:class:`~repro.core.engine.vectorized.VectorizedEngine` and overrides
only its four compute hooks to gather the *active* work:

* images whose activation tensor is entirely zero skip the layer's
  arithmetic outright (their outputs are exact zeros);
* convolutions run an im2col-GEMM over only the patch rows with at
  least one spike, and only the kernel columns some patch touches;
* linear layers drop all-zero input columns before the matmul;
* adder-operation popcounts are computed over the nonzero entries only
  (``np.nonzero`` + ``np.bincount``) instead of ``T`` full-tensor
  passes.

Why this is bit-exact rather than merely close: every accumulator here
is an integer-valued float64 sum with magnitude far below ``2**53``,
so float64 arithmetic is *exact* — dropping terms that are identically
zero, or reordering the remaining ones, cannot change a single bit.
The trace side needs no argument at all: all cycle and memory-traffic
charges in the parent are closed-form in the layer geometry (the
accelerator's units sweep every plane whether or not it spikes), and
the data-dependent adder counters count exactly the same spikes — so
traces are identical by construction.  The equivalence suite pins both
claims against the reference engine.

When a layer's activations are actually dense the gather bookkeeping
is pure overhead, so each hook falls back to the parent's dense kernel
above a density threshold.  The thresholds are *calibrated*: when a
:class:`~repro.core.engine.calibrate.CalibrationTable` is installed for
this deployment, each layer gets its own measured crossover (and the
popcount gather its own); otherwise the historical constants apply
(:data:`DENSE_FALLBACK_DENSITY`, popcount gather at 0.5).  Thresholds
only choose *which* exact kernel runs, so calibration can never change
an output bit.
"""

from __future__ import annotations

import numpy as np

from repro.core.calibration import DEFAULT_LATENCY
from repro.core.engine.base import register_engine
from repro.core.engine.calibrate import EngineThresholds, thresholds_for
from repro.core.engine.vectorized import VectorizedEngine, _popcount
from repro.nn import functional as F

__all__ = ["SparseEngine", "DENSE_FALLBACK_DENSITY"]

#: The uncalibrated default: above this fraction of active rows/columns,
#: gather/scatter loses to the dense GEMM and the hooks defer to the
#: parent implementation.  A calibration table overrides it per layer.
DENSE_FALLBACK_DENSITY = 0.85


@register_engine
class SparseEngine(VectorizedEngine):
    """Sparsity-aware execution: identical bits, only the live work."""

    name = "sparse"

    def __init__(self, compiled, calibration=DEFAULT_LATENCY) -> None:
        super().__init__(compiled, calibration)
        self.apply_thresholds(thresholds_for(compiled, calibration))

    def apply_thresholds(self, thresholds: EngineThresholds) -> None:
        """Adopt (re-)calibrated crossovers; outputs are unaffected."""
        self.thresholds = thresholds
        self._popcount_gather = thresholds.popcount_gather
        self._fallback_default = thresholds.dense_fallback
        self._fallback_by_spec = {
            id(program.spec): thresholds.for_layer(program.name,
                                                   program.kind)
            for program in self.compiled.programs
            if program.kind in ("conv", "linear")
        }

    def _fallback_for(self, spec) -> float:
        return self._fallback_by_spec.get(id(spec),
                                          self._fallback_default)

    # -- compute hooks -------------------------------------------------
    def _conv_acc(self, spec, x: np.ndarray) -> np.ndarray:
        n = x.shape[0]
        c_out, h_out, w_out = spec.out_shape
        threshold = self._fallback_for(spec)
        live = x.reshape(n, -1).any(axis=1)
        acc = np.zeros((n, c_out, h_out, w_out), dtype=np.int64)
        if not live.any():
            return acc
        if live.all():
            if np.count_nonzero(x) > x.size * threshold:
                return super()._conv_acc(spec, x)
            xs = x  # all live: skip the gather copy
        else:
            xs = x[live]
        cols = F.im2col(xs.astype(np.float64), spec.kernel_size,
                        spec.stride, spec.padding)
        m, p, k = cols.shape
        flat = cols.reshape(m * p, k)
        active = flat.any(axis=1)
        flat_k = spec.weights.reshape(c_out, -1).astype(np.float64)
        if active.mean() > threshold:
            prod = np.rint(flat @ flat_k.T).astype(np.int64)
        else:
            prod = np.zeros((m * p, c_out), dtype=np.int64)
            rows = np.nonzero(active)[0]
            if rows.size:
                sub = flat[rows]
                taps = sub.any(axis=0)
                prod[rows] = np.rint(
                    sub[:, taps] @ flat_k[:, taps].T).astype(np.int64)
        acc[live] = (prod.reshape(m, p, c_out).transpose(0, 2, 1)
                     .reshape(m, c_out, h_out, w_out))
        return acc

    def _pool_sums(self, spec, x: np.ndarray) -> np.ndarray:
        n = x.shape[0]
        live = x.reshape(n, -1).any(axis=1)
        if live.all():
            return super()._pool_sums(spec, x)
        sums = np.zeros((n,) + tuple(spec.out_shape), dtype=np.int64)
        if live.any():
            sums[live] = super()._pool_sums(spec, x[live])
        return sums

    def _linear_acc(self, spec, x: np.ndarray) -> np.ndarray:
        n = x.shape[0]
        live = x.any(axis=1)
        if not live.any():
            return np.zeros((n, spec.out_features), dtype=np.int64)
        xs = x if live.all() else x[live]
        taps = xs.any(axis=0)
        if taps.mean() > self._fallback_for(spec):
            out = super()._linear_acc(spec, xs)
        else:
            out = np.rint(
                xs[:, taps].astype(np.float64)
                @ spec.weights[:, taps].T.astype(np.float64)
            ).astype(np.int64)
        if live.all():
            return out
        acc = np.zeros((n, spec.out_features), dtype=np.int64)
        acc[live] = out
        return acc

    def _popcount_sum(self, x: np.ndarray, t: int,
                      weights: np.ndarray | None = None,
                      axis: int | None = None) -> np.ndarray:
        n = x.shape[0]
        flat = x.reshape(n, -1)
        # The gather (nonzero + fancy indexing) costs about one dense
        # pass; with T passes saved on the zeros it wins only while
        # most entries are zero.  The crossover is calibrated.
        if np.count_nonzero(flat) > flat.size * self._popcount_gather:
            return super()._popcount_sum(x, t, weights, axis)
        idx_n, idx_f = np.nonzero(flat)
        if idx_n.size == 0:
            return np.zeros(n, dtype=np.int64)
        pops = _popcount(flat[idx_n, idx_f], t)
        if weights is not None:
            inner = 1
            for extent in x.shape[axis + 1:]:
                inner *= extent
            coord = (idx_f // inner) % x.shape[axis]
            pops = pops * weights[coord]
        # bincount's float64 accumulation is exact here: the weighted
        # popcounts are integers and their sums stay far below 2**53.
        return np.bincount(idx_n, weights=pops,
                           minlength=n).astype(np.int64)

"""The ``auto`` backend: route each batch by its observed density.

The sparse engine wins on event-style frames and loses on dense ones;
the crossover is a property of the *deployment*, measured by
:func:`~repro.core.engine.calibrate.calibrate_deployment` and stored as
the table's ``backend_crossover``.  This backend borrows the warm
cache's sparse and vectorized engines for the same compiled model and,
per incoming batch, measures the realized nonzero fraction and delegates to
whichever side of the calibrated crossover it lands on (uncalibrated
deployments route at :data:`~repro.core.engine.calibrate.DEFAULT_ROUTE_DENSITY`).

Bit-identity is inherited, not re-argued: both delegates are pinned
bit- and trace-identical to the reference engine by the equivalence
suite, so *any* per-batch choice between them yields the same logits
and traces as either alone.  Routing decisions are observable via the
telemetry counter ``engine_auto_routed_total{backend=...}``.
"""

from __future__ import annotations

import numpy as np

from repro.core.calibration import DEFAULT_LATENCY
from repro.core.engine.base import ExecutionEngine, register_engine
from repro.core.engine.cache import warm_engine
from repro.core.engine.calibrate import EngineThresholds, thresholds_for

__all__ = ["AutoEngine"]

# Per-backend counter children, created lazily so importing the engine
# never drags the telemetry registry in (same idiom as codec's byte
# counters).
_ROUTE_COUNTERS: dict[str, object] = {}


def _count_route(backend: str) -> None:
    child = _ROUTE_COUNTERS.get(backend)
    if child is None:
        try:
            from repro.telemetry import get_registry
        except Exception:
            return
        child = get_registry().counter(
            "engine_auto_routed_total",
            "Batches routed by the auto engine, by chosen backend.",
            labelnames=("backend",),
        ).labels(backend=backend)
        _ROUTE_COUNTERS[backend] = child
    child.inc()


@register_engine
class AutoEngine(ExecutionEngine):
    """Density-routed execution: sparse when quiet, vectorized when loud."""

    name = "auto"

    def __init__(self, compiled, calibration=DEFAULT_LATENCY) -> None:
        super().__init__(compiled, calibration)
        # Children come from the warm cache: the same instances every
        # other caller of this deployment runs, so routing adds only a
        # density check — no duplicate engine state, and a calibration
        # table installed later reaches them through the cache refresh.
        self._sparse = warm_engine(compiled.network, compiled.config,
                                   "sparse", calibration)
        self._dense = warm_engine(compiled.network, compiled.config,
                                  "vectorized", calibration)
        self.route_density = thresholds_for(
            compiled, calibration).route_density
        #: Backend chosen for the most recent batch (introspection).
        self.last_backend: str | None = None

    def apply_thresholds(self, thresholds: EngineThresholds) -> None:
        """Adopt new thresholds (the ``install_table`` refresh hook)."""
        self.route_density = thresholds.route_density
        self._sparse.apply_thresholds(thresholds)

    def select_backend(self, images: np.ndarray) -> str:
        """Pure routing decision for a batch (no side effects)."""
        images = np.asarray(images)
        if not images.size:
            return "vectorized"
        density = np.count_nonzero(images) / images.size
        return "sparse" if density <= self.route_density else "vectorized"

    def run_batch(self, images: np.ndarray):
        images = self._check_batch(images)
        backend = self.select_backend(images)
        self.last_backend = backend
        _count_route(backend)
        engine = self._sparse if backend == "sparse" else self._dense
        return engine.run_batch(images)

"""The reference backend: the bit- and cycle-faithful hardware model.

For each layer the engine reads the input spike train from the active
ping-pong bank, dispatches work to the processing units (convolution
rounds run all units concurrently; pooling and linear layers use their
single unit), writes the result to the opposite bank and swaps.  Cycle
charges come from the same calibrated formulas as the analytic latency
model, DRAM weight streams are charged before their layer (the paper's
off-chip option), and all memory traffic is counted for the dataflow
ablation.

This is the shift-register/adder-array model the repo was seeded with; it
simulates every register shift and adder operation, so it is slow —
batches run one image at a time.  Use the ``vectorized`` backend for
anything beyond a handful of images.
"""

from __future__ import annotations

import numpy as np

from repro.core.calibration import DEFAULT_LATENCY, LatencyCalibration
from repro.core.compiler import CompiledModel
from repro.core.conv_unit import ConvUnit
from repro.core.dram import DramModel
from repro.core.engine.base import ExecutionEngine, register_engine
from repro.core.engine.trace import ExecutionTrace, LayerTrace
from repro.core.latency import flatten_cycles, input_load_cycles
from repro.core.linear_unit import LinearUnit
from repro.core.pingpong import BufferPair
from repro.core.pool_unit import PoolUnit
from repro.core.stats import UnitStats
from repro.encoding import radix
from repro.errors import ShapeError, SimulationError

__all__ = ["ReferenceEngine"]


@register_engine
class ReferenceEngine(ExecutionEngine):
    """Runs a compiled model on the functional unit models, per image."""

    name = "reference"

    def __init__(
        self,
        compiled: CompiledModel,
        calibration: LatencyCalibration = DEFAULT_LATENCY,
    ) -> None:
        super().__init__(compiled, calibration)
        config = compiled.config
        self.conv_units = [
            ConvUnit(config, unit_id=i, calibration=calibration)
            for i in range(config.num_conv_units)
        ]
        self.pool_unit = PoolUnit(config, calibration=calibration)
        self.linear_unit = LinearUnit(config, calibration=calibration)

    def run_batch(
        self, images: np.ndarray
    ) -> tuple[np.ndarray, list[ExecutionTrace]]:
        """Infer a batch one image at a time through the unit models."""
        images = self._check_batch(images)
        logits_rows: list[np.ndarray] = []
        traces: list[ExecutionTrace] = []
        for image in images:
            logits, trace = self.run_image(image)
            logits_rows.append(logits)
            traces.append(trace)
        return np.stack(logits_rows), traces

    def run_image(self, image: np.ndarray) -> tuple[np.ndarray,
                                                    ExecutionTrace]:
        """Infer one image; returns (logits, execution trace).

        ``image`` is ``(C, H, W)`` in ``[0, 1]`` — the engine radix-
        encodes it, exactly as the host-side encoder feeds the FPGA.
        """
        network = self.compiled.network
        if image.shape != network.input_shape:
            raise ShapeError(
                f"expected image of shape {network.input_shape}, "
                f"got {image.shape}"
            )
        t = network.num_steps
        config = self.compiled.config
        ints = radix.quantize_real(image[np.newaxis], t)[0]
        bits = radix.encode_ints(ints, t).bits  # (T, C, H, W)

        buffers = BufferPair(
            capacity_2d_bits=max(self.compiled.bram.activation_2d_bits, 1),
            capacity_1d_bits=max(self.compiled.bram.activation_1d_bits, 1),
        )
        trace = ExecutionTrace()
        trace.input_cycles = input_load_cycles(
            network.input_shape, self.calibration, t)
        buffers.planar.prime(bits, bits_per_element=1)
        dram = DramModel(config.memory)
        logits: np.ndarray | None = None

        for program in self.compiled.programs:
            spec = program.spec
            dram_cycles = 0
            streamed_bits = 0
            if (program.kind in ("conv", "linear")
                    and not program.weights_on_chip):
                streamed_bits = spec.num_weights * network.weight_bits
                dram_cycles = dram.stream(program.name, streamed_bits)
            if program.kind == "conv":
                stats, out_bits = self._run_conv(program, buffers, t)
                buffers.planar.write(out_bits, bits_per_element=1)
                buffers.planar.swap()
            elif program.kind == "pool":
                in_bits = buffers.planar.read()
                out_ints, stats = self.pool_unit.run_layer(spec, in_bits, t)
                out_bits = radix.encode_ints(out_ints, t).bits
                buffers.planar.write(out_bits, bits_per_element=1)
                buffers.planar.swap()
            elif program.kind == "flatten":
                in_bits = buffers.planar.read()  # (T, C, H, W)
                flat = in_bits.reshape(t, -1)
                buffers.flat.prime(flat, bits_per_element=1)
                stats = UnitStats(
                    cycles=flatten_cycles(spec, config, t))
                stats.traffic.activation_read_bits = int(flat.size)
                stats.traffic.activation_write_bits = int(flat.size)
            else:  # linear
                in_bits = buffers.flat.read()
                out, stats = self.linear_unit.run_layer(spec, in_bits, t)
                stats.cycles += self.calibration.layer_setup
                if spec.is_output:
                    logits = out
                else:
                    out_bits = radix.encode_ints(out, t).bits
                    buffers.flat.write(out_bits, bits_per_element=1)
                    buffers.flat.swap()
            if program.kind in ("conv", "pool"):
                stats.cycles += self.calibration.layer_setup
            stats.traffic.weight_stream_bits += streamed_bits
            trace.layers.append(LayerTrace(
                name=program.name, kind=program.kind, cycles=stats.cycles,
                dram_cycles=dram_cycles, adder_ops=stats.adder_ops,
                traffic=stats.traffic))
        if logits is None:
            raise SimulationError(
                "compiled model has no output linear layer")
        return logits, trace

    def _run_conv(self, program, buffers: BufferPair,
                  t: int) -> tuple[UnitStats, np.ndarray]:
        """Execute one conv layer's schedule over the parallel units."""
        spec = program.spec
        in_bits = buffers.planar.read()
        c_out, h_out, w_out = spec.out_shape
        out_ints = np.zeros(spec.out_shape, dtype=np.int64)
        stats = UnitStats()
        for round_assignment in program.conv_schedule.rounds:
            round_cycles = 0
            for unit, channels in zip(self.conv_units, round_assignment):
                activations, unit_stats = unit.run_pass(
                    spec, in_bits, list(channels), t)
                out_ints[list(channels)] = activations
                # Units in a round run concurrently: the round costs the
                # slowest unit; counters other than cycles accumulate.
                round_cycles = max(round_cycles, unit_stats.cycles)
                stats.adder_ops += unit_stats.adder_ops
                stats.accumulator_writes += unit_stats.accumulator_writes
                stats.traffic.merge(unit_stats.traffic)
            stats.cycles += round_cycles
        out_bits = radix.encode_ints(out_ints, t).bits
        return stats, out_bits

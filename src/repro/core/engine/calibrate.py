"""Measured sparsity crossovers: calibrate, persist, route.

The sparse engine's speed hinges on three guesses: the per-hook density
above which gather/scatter loses to the dense kernel
(``DENSE_FALLBACK_DENSITY``), the density below which the popcount
gather beats ``T`` full passes, and the byte ratio below which COO wire
frames beat raw buffers.  All three crossovers depend on the *deployed
model* (layer geometry, kernel sizes, batch shapes) and on the host —
not on anything a constant can know.  This module makes them measured:

* :func:`calibrate_deployment` runs a few probe batches per layer/hook
  through the sparse and dense code paths, times both, and fits the
  density where they cross.  The result is a :class:`CalibrationTable`
  persisted in the artifact store **keyed by the warm cache's**
  :func:`~repro.core.engine.cache.content_key`, so the table travels
  with the compiled model it describes.
* :func:`thresholds_for` is the engine-side lookup:
  :class:`~repro.core.engine.sparse.SparseEngine` and the ``auto``
  router consult it at construction time, falling back to the
  historical constants when no table exists.  Thresholds only move
  *where* each hook switches strategy — both strategies return the
  exact same integers, so calibration can never change a bit.
* :func:`install_table` also wires the measured COO byte ratio into
  :mod:`repro.runtime.codec` (unless pinned by ``REPRO_COO_RATIO``).

Probe batches are event-style frames (one bright blob on a dark plane,
optionally fully silent frames) because that is the workload whose
zeros this whole engine exists to skip; densities are realized nonzero
fractions, the same metric the runtime gates test.
"""

from __future__ import annotations

import math
import os
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.calibration import DEFAULT_LATENCY, LatencyCalibration
from repro.core.config import AcceleratorConfig
from repro.core.engine.cache import content_key, warm_compile
from repro.core.engine.vectorized import VectorizedEngine
from repro.nn import functional as F

__all__ = [
    "CalibrationTable",
    "DEFAULT_COO_RATIO",
    "DEFAULT_DENSE_FALLBACK",
    "DEFAULT_DISPATCH_COST_S",
    "DEFAULT_POPCOUNT_GATHER",
    "DEFAULT_ROUTE_DENSITY",
    "EngineThresholds",
    "calibrate_deployment",
    "calibration_store_key",
    "clear_calibration_tables",
    "event_silent_frac",
    "install_table",
    "lookup_table",
    "measure_dispatch_cost",
    "probe_batch",
    "thresholds_for",
]

#: The historical constants — what every engine uses when no table
#: exists.  Calibration replaces them with measurements, per deployment.
DEFAULT_DENSE_FALLBACK = 0.85     # per-hook gather -> dense crossover
DEFAULT_POPCOUNT_GATHER = 0.5     # nonzero-gather popcount crossover
DEFAULT_ROUTE_DENSITY = 0.25      # auto: batches denser go vectorized
DEFAULT_COO_RATIO = 0.9           # codec: COO wins below this byte ratio
#: Assumed per-unit fabric dispatch cost when no table measured one —
#: roughly one warmed process-lane round trip on a laptop-class host.
DEFAULT_DISPATCH_COST_S = 2e-3

_PROBE_DENSITIES = (0.02, 0.05, 0.1, 0.25, 0.5, 0.7, 0.9)


# ----------------------------------------------------------------------
# The table and its process-local registry
# ----------------------------------------------------------------------
@dataclass
class CalibrationTable:
    """Measured crossovers for one deployment (one ``content_key``).

    Densities are nonzero fractions in the metric each runtime gate
    tests: im2col patch-row activity for conv hooks, active-tap fraction
    for linear hooks, element density for popcounts and batch routing.
    ``probes`` keeps the raw (density, sparse_s, dense_s) points for the
    record; nothing reads them back.
    """

    content_key: str
    backend_crossover: float = DEFAULT_ROUTE_DENSITY
    hook_crossovers: dict = field(default_factory=dict)  # "layer:kind" ->
    popcount_gather: float = DEFAULT_POPCOUNT_GATHER
    coo_ratio: float = DEFAULT_COO_RATIO
    dispatch_cost_s: float | None = None
    probe_images: int = 0
    densities: tuple = ()
    probes: dict = field(default_factory=dict)

    def fallback_for(self, name: str, kind: str,
                     default: float = DEFAULT_DENSE_FALLBACK) -> float:
        return float(self.hook_crossovers.get(f"{name}:{kind}", default))

    def to_dict(self) -> dict:
        return {
            "content_key": self.content_key,
            "backend_crossover": self.backend_crossover,
            "hook_crossovers": dict(self.hook_crossovers),
            "popcount_gather": self.popcount_gather,
            "coo_ratio": self.coo_ratio,
            "dispatch_cost_s": self.dispatch_cost_s,
            "probe_images": self.probe_images,
            "densities": list(self.densities),
            "probes": self.probes,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CalibrationTable":
        return cls(
            content_key=payload["content_key"],
            backend_crossover=float(payload["backend_crossover"]),
            hook_crossovers={k: float(v) for k, v in
                             payload.get("hook_crossovers", {}).items()},
            popcount_gather=float(payload["popcount_gather"]),
            coo_ratio=float(payload["coo_ratio"]),
            dispatch_cost_s=(None if payload.get("dispatch_cost_s") is None
                             else float(payload["dispatch_cost_s"])),
            probe_images=int(payload.get("probe_images", 0)),
            densities=tuple(payload.get("densities", ())),
            probes=payload.get("probes", {}),
        )


@dataclass(frozen=True)
class EngineThresholds:
    """What an engine instance actually consults — table or defaults."""

    dense_fallback: float = DEFAULT_DENSE_FALLBACK
    popcount_gather: float = DEFAULT_POPCOUNT_GATHER
    route_density: float = DEFAULT_ROUTE_DENSITY
    by_layer: dict = field(default_factory=dict)  # "layer:kind" -> density
    calibrated: bool = False

    def for_layer(self, name: str, kind: str) -> float:
        return float(self.by_layer.get(f"{name}:{kind}",
                                       self.dense_fallback))


_LOCK = threading.Lock()
_TABLES: dict[str, CalibrationTable] = {}
_MISSING: set[str] = set()        # negative cache of store lookups


def calibration_store_key(key: str) -> str:
    """Artifact-store key for one deployment's table."""
    return f"calibration_{key}"


def install_table(table: CalibrationTable) -> None:
    """Register a table process-wide and wire it into the hot paths.

    Engines constructed afterwards for the table's ``content_key`` pick
    up its thresholds, and engines already sitting in the warm cache
    for that key are refreshed in place (via ``apply_thresholds``) — so
    ``repro calibrate`` reaches a long-running server without a
    redeploy.  The codec ratio is process-global, so the most recently
    installed table wins — ``REPRO_COO_RATIO`` pins it regardless.
    """
    with _LOCK:
        _TABLES[table.content_key] = table
        _MISSING.discard(table.content_key)
    _refresh_warm_engines(table)
    try:
        from repro.runtime import codec
    except Exception:                      # codec layer optional here
        return
    codec.set_coo_ratio(table.coo_ratio)


def _refresh_warm_engines(table: CalibrationTable) -> None:
    """Push a table's thresholds into already-cached warm engines."""
    from repro.core.engine import cache as engine_cache

    with engine_cache._LOCK:
        matching = [engine for key, engine
                    in engine_cache._ENGINES.items()
                    if key.split(":", 1)[-1] == table.content_key]
    if not matching:
        return
    thresholds = _table_thresholds(table)
    for engine in matching:
        apply = getattr(engine, "apply_thresholds", None)
        if apply is not None:
            apply(thresholds)


def lookup_table(key: str, store=None) -> CalibrationTable | None:
    """The table for a ``content_key``: memory first, then the store.

    A disk hit is installed (so later constructions skip the read); a
    miss is negatively cached until :func:`install_table` or
    :func:`clear_calibration_tables` changes the answer.  Corrupt or
    unreadable records read as "no table" — calibration is a speed
    layer, never a correctness dependency.
    """
    with _LOCK:
        table = _TABLES.get(key)
        if table is not None:
            return table
        if store is None and key in _MISSING:
            return None
    if store is None:
        try:
            from repro.harness.artifacts import default_store
            store = default_store()
        except Exception:
            return None
    try:
        skey = calibration_store_key(key)
        if store.has_result(skey):
            table = CalibrationTable.from_dict(store.load_result(skey))
            install_table(table)
            return table
    except Exception:
        pass
    with _LOCK:
        _MISSING.add(key)
    return None


def clear_calibration_tables() -> None:
    """Forget every installed table and negative-cache entry (tests)."""
    with _LOCK:
        _TABLES.clear()
        _MISSING.clear()


def thresholds_for(compiled, calibration: LatencyCalibration = DEFAULT_LATENCY,
                   ) -> EngineThresholds:
    """The thresholds an engine for ``compiled`` should run with.

    Looks the deployment's table up by the warm cache's three-part
    ``content_key(network, config, calibration)`` — the exact key
    :func:`~repro.core.engine.cache.warm_engine` uses — and falls back
    to the historical constants when none exists.
    """
    key = content_key(compiled.network, compiled.config, calibration)
    table = lookup_table(key)
    if table is None:
        return EngineThresholds()
    return _table_thresholds(table)


def _table_thresholds(table: CalibrationTable) -> EngineThresholds:
    return EngineThresholds(
        dense_fallback=DEFAULT_DENSE_FALLBACK,
        popcount_gather=table.popcount_gather,
        route_density=table.backend_crossover,
        by_layer=dict(table.hook_crossovers),
        calibrated=True,
    )


# ----------------------------------------------------------------------
# Probe inputs and crossover fitting
# ----------------------------------------------------------------------
def event_silent_frac(density: float) -> float:
    """Fully-silent frame fraction an event stream at ``density`` carries.

    Address-event sensors emit nothing between events, so the sparser
    the stream the more frames are entirely empty: three quarters of
    the frames at the sparsest probes, tapering to none by 25% density.
    Probes and benches share this prior so the calibrated crossovers
    describe the workloads they are later asked to route.
    """
    return max(0.0, min(0.75, 1.0 - 4.0 * density))


def probe_batch(shape, density: float, batch: int,
                rng: np.random.Generator,
                silent_frac: float | None = None) -> np.ndarray:
    """Event-style frames at a target nonzero density.

    Each live frame carries one bright square blob (values in
    ``[0.5, 1)``, so they quantize to nonzero spikes at any ``T``) sized
    for the requested pixel density; ``silent_frac`` of the frames are
    fully silent, mirroring address-event streams between events — it
    defaults to :func:`event_silent_frac` of the target density.  The
    realized density is ``count_nonzero / size`` — the same metric the
    runtime gates and the auto router measure.
    """
    shape = tuple(shape)
    h, w = shape[-2], shape[-1]
    if silent_frac is None:
        silent_frac = event_silent_frac(density)
    images = np.zeros((batch,) + shape, dtype=np.float64)
    live_density = density / max(1.0 - silent_frac, 1e-9)
    side = int(round(math.sqrt(live_density * h * w)))
    side = max(1, min(side, h, w))
    # Deterministic silent count (not a per-frame coin flip) so the
    # realized batch density lands on target instead of wobbling with
    # the binomial draw.
    num_silent = int(round(batch * silent_frac))
    live_indices = rng.permutation(batch)[num_silent:]
    for i in live_indices:
        r = int(rng.integers(0, h - side + 1))
        c = int(rng.integers(0, w - side + 1))
        images[i, ..., r:r + side, c:c + side] = rng.uniform(
            0.5, 1.0, size=shape[:-2] + (side, side))
    return images


def _best_time(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(max(rounds, 1)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _crossover(points: list[tuple[float, float, float]]) -> float:
    """Density where the dense path starts winning.

    ``points`` are ``(density, sparse_s, dense_s)``.  The fit picks the
    threshold that minimizes total routing regret over the probe set:
    every candidate boundary (below the first probe, between each
    consecutive pair, and 1.0) is scored by the wall clock a router
    using it would save versus the engine it routes away from, and the
    best-scoring boundary wins.  A single noisy probe therefore only
    shifts the fit if its margin outweighs everything the rest of the
    probes agree on — unlike a walk-to-first-crossing, which one bad
    point at the sparse end can pin to ~0.  All-sparse-wins fits 1.0
    (never fall back); dense-wins-everywhere fits below the first probe.
    """
    points = sorted(points)
    if not points:
        return DEFAULT_DENSE_FALLBACK
    candidates = [points[0][0] / 2.0]
    candidates += [(lo[0] + hi[0]) / 2.0
                   for lo, hi in zip(points, points[1:])]
    candidates.append(1.0)

    def saved(threshold: float) -> float:
        return sum((dense_s - sparse_s) if density <= threshold
                   else (sparse_s - dense_s)
                   for density, sparse_s, dense_s in points)

    # Ties break toward the higher threshold (prefer the sparse path
    # when the probes cannot tell the difference — it is the one whose
    # win depends on the workload the probes were drawn from).
    return float(max(candidates, key=lambda t: (saved(t), t)))


class _CaptureEngine(VectorizedEngine):
    """Vectorized run that records every hook's real inputs.

    One pass per probe density yields, for each layer, the exact tensor
    the sparse engine's hook would see — so both strategies are timed on
    identical inputs, layer by layer.
    """

    name = "capture-probe"                 # never registered

    def __init__(self, compiled, calibration) -> None:
        super().__init__(compiled, calibration)
        self.records: list[tuple[str, object, np.ndarray]] = []
        self.pop_records: list[tuple] = []

    def _conv_acc(self, spec, x):
        self.records.append(("conv", spec, x))
        return super()._conv_acc(spec, x)

    def _linear_acc(self, spec, x):
        self.records.append(("linear", spec, x))
        return super()._linear_acc(spec, x)

    def _popcount_sum(self, x, t, weights=None, axis=None):
        self.pop_records.append((x, t, weights, axis))
        return super()._popcount_sum(x, t, weights, axis)


def _forced_sparse(compiled, calibration):
    """A SparseEngine that never falls back (crossovers pinned to 1.0)."""
    from repro.core.engine.sparse import SparseEngine

    engine = SparseEngine(compiled, calibration)
    engine.apply_thresholds(EngineThresholds(
        dense_fallback=1.0, popcount_gather=1.0, by_layer={}))
    return engine


def _conv_row_density(spec, x: np.ndarray) -> float | None:
    """The runtime gate's metric: im2col patch-row activity of ``x``."""
    live = x.reshape(x.shape[0], -1).any(axis=1)
    if not live.any():
        return None
    xs = x if live.all() else x[live]
    cols = F.im2col(xs.astype(np.float64), spec.kernel_size,
                    spec.stride, spec.padding)
    return float(cols.reshape(-1, cols.shape[-1]).any(axis=1).mean())


def _linear_tap_density(x: np.ndarray) -> float | None:
    live = x.any(axis=1)
    if not live.any():
        return None
    xs = x if live.all() else x[live]
    return float(xs.any(axis=0).mean())


def _probe_hooks(compiled, calibration, batches: dict, rounds: int,
                 ) -> tuple[dict, float, dict]:
    """Per-layer (and popcount) crossovers from timed hook probes."""
    spec_names = {id(p.spec): p.name for p in compiled.programs}
    dense = VectorizedEngine(compiled, calibration)
    forced = _forced_sparse(compiled, calibration)
    layer_points: dict[str, list] = {}
    pop_points: list = []
    for images in batches.values():
        capture = _CaptureEngine(compiled, calibration)
        capture.run_batch(images)
        for kind, spec, x in capture.records:
            if kind == "conv":
                metric = _conv_row_density(spec, x)
                sparse_fn = forced._conv_acc
                dense_fn = dense._conv_acc
            else:
                metric = _linear_tap_density(x)
                sparse_fn = forced._linear_acc
                dense_fn = dense._linear_acc
            if metric is None:
                continue
            label = f"{spec_names[id(spec)]}:{kind}"
            layer_points.setdefault(label, []).append((
                metric,
                _best_time(lambda: sparse_fn(spec, x), rounds),
                _best_time(lambda: dense_fn(spec, x), rounds)))
        for x, t, weights, axis in capture.pop_records:
            flat = x.reshape(x.shape[0], -1)
            if not flat.size:
                continue
            metric = float(np.count_nonzero(flat) / flat.size)
            pop_points.append((
                metric,
                _best_time(
                    lambda: forced._popcount_sum(x, t, weights, axis),
                    rounds),
                _best_time(
                    lambda: VectorizedEngine._popcount_sum(
                        dense, x, t, weights, axis),
                    rounds)))
    hook_crossovers = {label: round(_crossover(points), 4)
                       for label, points in layer_points.items()}
    popcount = round(_crossover(pop_points), 4)
    raw = {
        "hooks": {label: [[round(d, 4), s, t] for d, s, t in points]
                  for label, points in layer_points.items()},
        "popcount": [[round(d, 4), s, t] for d, s, t in pop_points],
    }
    return hook_crossovers, popcount, raw


def _probe_backends(compiled, calibration, batches: dict, rounds: int,
                    hook_crossovers: dict, popcount: float,
                    ) -> tuple[float, list]:
    """End-to-end crossover: calibrated sparse vs dense, per density."""
    from repro.core.engine.sparse import SparseEngine

    dense = VectorizedEngine(compiled, calibration)
    sparse = SparseEngine(compiled, calibration)
    sparse.apply_thresholds(EngineThresholds(
        popcount_gather=popcount, by_layer=dict(hook_crossovers),
        calibrated=True))
    points = []
    for images in batches.values():
        density = float(np.count_nonzero(images) / images.size)
        # Full-batch warm-up: the first full-size run pays one-off
        # allocation and code-path costs that min-of-rounds must not
        # attribute to whichever engine ran first.
        sparse.run_batch(images)
        dense.run_batch(images)
        # Interleave the timing rounds so clock drift (thermal
        # throttle, a neighbour's cache pressure) hits both engines
        # alike, and alternate the order so neither always inherits
        # the other's cache state.  Each round is a *paired* sample —
        # both engines timed back to back — and the point's verdict is
        # the median of the per-round ratios: min-of-rounds compares
        # each engine's luckiest moment, which near the crossover flips
        # the winner whenever one engine catches a quiet slice of a
        # noisy host, and a flipped point moves the routing threshold.
        samples = {"sparse": [], "dense": []}
        pair = [("sparse", sparse), ("dense", dense)]
        for round_index in range(max(rounds, 1)):
            ordered = pair if round_index % 2 == 0 else pair[::-1]
            for label, engine in ordered:
                samples[label].append(_best_time(
                    lambda e=engine: e.run_batch(images), 1))
        ratio = float(np.median([d / s for s, d in
                                 zip(samples["sparse"],
                                     samples["dense"])]))
        sparse_s = float(np.median(samples["sparse"]))
        # Report the dense time consistently with the paired verdict:
        # the medians of the two series can disagree with the median
        # ratio on a drifting clock, and _crossover must see the same
        # winner the pairing saw.
        points.append((density, sparse_s, sparse_s * ratio))
    return _crossover(points), [[round(d, 4), s, t] for d, s, t in points]


def _probe_codec(batches: dict, rounds: int) -> tuple[float, list]:
    """COO-vs-raw byte-ratio crossover on encode+decode round trips."""
    try:
        from repro.runtime import codec
    except Exception:
        return DEFAULT_COO_RATIO, []

    def round_trip(array, ratio):
        frame = codec.encode_frame({}, {"x": array}, coo_ratio=ratio)
        hlen, blen = codec.parse_frame_prefix(
            frame[:codec.FRAME_PREFIX_LEN])
        header = frame[codec.FRAME_PREFIX_LEN:
                       codec.FRAME_PREFIX_LEN + hlen]
        codec.decode_frame(header, frame[codec.FRAME_PREFIX_LEN + hlen:])

    points = []
    for images in batches.values():
        array = np.ascontiguousarray(images)
        nnz = int(np.count_nonzero(array))
        if not array.size or array.size < codec._SPARSE_MIN_ELEMENTS:
            continue
        byte_ratio = nnz * (4 + array.itemsize) / array.nbytes
        points.append((
            byte_ratio,
            _best_time(lambda: round_trip(array, float("inf")), rounds),
            _best_time(lambda: round_trip(array, 0.0), rounds)))
    # Never ship COO frames that are *larger* than raw, however fast:
    # wire bytes are the scarcer resource on remote lanes.
    return min(max(_crossover(points), 0.1), 1.0), [
        [round(r, 4), s, t] for r, s, t in points]


def measure_dispatch_cost(network, config: AcceleratorConfig,
                          calibration: LatencyCalibration = DEFAULT_LATENCY,
                          items: int = 8) -> float:
    """Measured per-unit fabric overhead of a warmed process lane.

    Times single-image work items end to end through a one-lane process
    group and subtracts the inline compute cost — what remains is the
    dispatch tax (submit, shm/pickle transfer, result shipping) the
    saturation-aware shard sizer amortizes.
    """
    from repro.core.engine.cache import warm_engine
    from repro.runtime import (
        Deployment,
        WorkItem,
        WorkerGroup,
        create_workers,
    )

    rng = np.random.default_rng(0)
    images = rng.random((items + 1,) + tuple(network.input_shape))
    engine = warm_engine(network, config, "vectorized", calibration)
    inline = _best_time(lambda: engine.run_batch(images[:1]), 3)
    group = WorkerGroup(create_workers(["process"]), deployments=[
        Deployment(network=network, config=config,
                   calibration=calibration)])
    try:
        group.start()
        group.run([WorkItem(item_id=0, deployment=0,
                            images=images[:1])])    # warm the lane
        start = time.perf_counter()
        group.run([WorkItem(item_id=i, deployment=0,
                            images=images[i + 1:i + 2])
                   for i in range(items)])
        per_item = (time.perf_counter() - start) / items
    finally:
        group.stop()
    return max(per_item - inline, 1e-5)


# ----------------------------------------------------------------------
# The calibration pass
# ----------------------------------------------------------------------
def calibrate_deployment(
    network,
    config: AcceleratorConfig | None = None,
    calibration: LatencyCalibration = DEFAULT_LATENCY,
    *,
    store=None,
    force: bool = False,
    batch: int | None = None,
    densities: tuple = _PROBE_DENSITIES,
    rounds: int | None = None,
    measure_dispatch: bool = False,
    rng: np.random.Generator | None = None,
) -> tuple[CalibrationTable, bool]:
    """Measure (or reload) a deployment's :class:`CalibrationTable`.

    Returns ``(table, cached)``: ``cached`` is True when the table was
    served from the artifact store instead of re-measured.  Either way
    the table is installed process-wide, so engines constructed next for
    this deployment run calibrated.  ``measure_dispatch`` additionally
    times a one-lane process round trip (forks a worker; a second or
    two) for the sweep driver's saturation-aware shard sizing.
    """
    if store is None:
        from repro.harness.artifacts import default_store
        store = default_store()
    config = config or AcceleratorConfig.for_network(network)
    key = content_key(network, config, calibration)
    skey = calibration_store_key(key)
    if not force and store.has_result(skey):
        table = CalibrationTable.from_dict(store.load_result(skey))
        install_table(table)
        return table, True

    fast = bool(os.environ.get("REPRO_FAST"))
    batch = batch or (16 if fast else 32)
    rounds = rounds or (6 if fast else 8)
    rng = rng or np.random.default_rng(0)
    compiled = warm_compile(network, config)
    batches = {d: probe_batch(network.input_shape, d, batch, rng)
               for d in densities}

    hook_crossovers, popcount, raw = _probe_hooks(
        compiled, calibration, batches, rounds)
    backend_crossover, backend_points = _probe_backends(
        compiled, calibration, batches, rounds, hook_crossovers, popcount)
    coo_ratio, codec_points = _probe_codec(batches, rounds)
    dispatch = (measure_dispatch_cost(network, config, calibration)
                if measure_dispatch else None)

    table = CalibrationTable(
        content_key=key,
        backend_crossover=round(backend_crossover, 4),
        hook_crossovers=hook_crossovers,
        popcount_gather=popcount,
        coo_ratio=round(coo_ratio, 4),
        dispatch_cost_s=dispatch,
        probe_images=batch,
        densities=tuple(round(float(np.count_nonzero(b) / b.size), 4)
                        for b in batches.values()),
        probes={**raw, "backend": backend_points, "codec": codec_points},
    )
    store.save_result(skey, table.to_dict())
    install_table(table)
    return table, False

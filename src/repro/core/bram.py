"""On-chip block RAM sizing model.

Xilinx UltraScale+ BRAM36 blocks hold 36 kbit each.  The model answers two
questions the paper's memory management section poses: how many blocks the
activation ping-pong buffers and the on-chip weight memories need, and
whether a network's parameters fit on chip at all (else the DRAM path is
compiled in).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import MemoryConfig
from repro.snn.spec import QuantizedNetwork

__all__ = ["BramPlan", "plan_bram"]


def _blocks_for_bits(bits: int, block_bits: int) -> int:
    return -(-bits // block_bits) if bits > 0 else 0


@dataclass(frozen=True)
class BramPlan:
    """BRAM block counts for one deployment."""

    activation_2d_bits: int
    activation_1d_bits: int
    weight_bits: int            # 0 when weights stream from DRAM
    block_bits: int

    @property
    def activation_blocks(self) -> int:
        # Two banks per pair (ping + pong).
        return 2 * (_blocks_for_bits(self.activation_2d_bits,
                                     self.block_bits)
                    + _blocks_for_bits(self.activation_1d_bits,
                                       self.block_bits))

    @property
    def weight_blocks(self) -> int:
        return _blocks_for_bits(self.weight_bits, self.block_bits)

    @property
    def total_blocks(self) -> int:
        return self.activation_blocks + self.weight_blocks

    @property
    def total_bits(self) -> int:
        return self.total_blocks * self.block_bits

    @property
    def total_mbit(self) -> float:
        return self.total_bits / 1e6


def plan_bram(
    network: QuantizedNetwork,
    memory: MemoryConfig,
    weights_on_chip: bool,
) -> BramPlan:
    """Size the buffers for a network, minimizing while fitting every layer.

    Bank capacity is the largest activation tensor that crosses it (input
    or output of any conv/pool layer for the 2-D pair, any linear layer
    for the 1-D pair), stored as ``T``-bit spike trains.
    """
    t = network.num_steps
    bits_2d = t * max(
        [int(s.in_shape[0] * s.in_shape[1] * s.in_shape[2])
         for s in network.layers if s.kind in ("conv", "pool")]
        + [int(s.out_shape[0] * s.out_shape[1] * s.out_shape[2])
           for s in network.layers if s.kind in ("conv", "pool")]
        + [0]
    )
    bits_1d = t * max(
        [s.in_features for s in network.linear_layers()]
        + [s.out_features for s in network.linear_layers()]
        + [0]
    )
    weight_bits = (network.num_parameters * network.weight_bits
                   if weights_on_chip else 0)
    return BramPlan(
        activation_2d_bits=bits_2d,
        activation_1d_bits=bits_1d,
        weight_bits=weight_bits,
        block_bits=memory.bram_block_bits,
    )

"""Execution controller (Fig. 1): binds a compiled model to a backend.

Historically this module held the whole per-image execution loop; that
loop now lives in :mod:`repro.core.engine.reference` as one of several
interchangeable :class:`~repro.core.engine.ExecutionEngine` backends.
The controller remains the orchestration-layer entry point: it resolves a
backend name to an engine bound to the compiled model and exposes the
per-image and batched run calls.  ``ExecutionTrace``/``LayerTrace`` are
re-exported here for backwards compatibility.
"""

from __future__ import annotations

import numpy as np

from repro.core.calibration import DEFAULT_LATENCY, LatencyCalibration
from repro.core.compiler import CompiledModel
from repro.core.engine import ExecutionEngine, create_engine
from repro.core.engine.trace import ExecutionTrace, LayerTrace, TraceMerge

__all__ = ["Controller", "ExecutionTrace", "LayerTrace", "TraceMerge"]


class Controller:
    """Runs a compiled model on a selected execution backend."""

    def __init__(
        self,
        compiled: CompiledModel,
        calibration: LatencyCalibration = DEFAULT_LATENCY,
        backend: str | type[ExecutionEngine] = "reference",
    ) -> None:
        self.compiled = compiled
        self.calibration = calibration
        self.engine = create_engine(backend, compiled, calibration)

    @property
    def backend(self) -> str:
        """Name of the active execution backend."""
        return self.engine.name

    def run_image(self, image: np.ndarray) -> tuple[np.ndarray,
                                                    ExecutionTrace]:
        """Infer one ``(C, H, W)`` image; returns (logits, trace)."""
        return self.engine.run_image(image)

    def run_batch(
        self, images: np.ndarray
    ) -> tuple[np.ndarray, list[ExecutionTrace]]:
        """Infer a ``(N, C, H, W)`` batch; returns (logits, traces)."""
        return self.engine.run_batch(images)

    def run_images(
        self, images: np.ndarray
    ) -> tuple[np.ndarray, TraceMerge]:
        """Infer a batch and aggregate the per-image traces.

        The multi-image counterpart of :meth:`run_image`: returns the
        batch logits plus one :class:`TraceMerge` summing every image's
        cycle, DRAM, adder-operation and memory-traffic counters — the
        form the energy ablations and the sweep driver consume, so
        claims average over many images instead of quoting one.
        """
        logits, traces = self.engine.run_batch(images)
        return logits, TraceMerge.from_traces(traces)

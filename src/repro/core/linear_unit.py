"""Functional model of the linear (fully-connected) unit.

A single row of adders, ``parallel_outputs`` wide.  Weights stream from
memory at one word per cycle (the unit is deliberately bandwidth-bound —
duplicating it would not help, as Table II's discussion notes); each
incoming weight word covers all parallel outputs for one input neuron.
Accumulation runs over input neurons and, via the radix left shift, over
time steps.  The classifier head skips requantization: its raw
accumulators are the logits.
"""

from __future__ import annotations

import numpy as np

from repro.core.calibration import DEFAULT_LATENCY, LatencyCalibration
from repro.core.config import AcceleratorConfig
from repro.core.stats import UnitStats
from repro.errors import ShapeError
from repro.snn.spec import QuantLinearSpec, requantize

__all__ = ["LinearUnit"]


class LinearUnit:
    """The (single) fully-connected unit."""

    def __init__(
        self,
        config: AcceleratorConfig,
        calibration: LatencyCalibration = DEFAULT_LATENCY,
    ) -> None:
        self.config = config
        self.calibration = calibration

    def run_layer(
        self,
        spec: QuantLinearSpec,
        input_bits: np.ndarray,
        num_steps: int,
    ) -> tuple[np.ndarray, UnitStats]:
        """Run one FC layer on a ``(T, N_in)`` spike train.

        Returns ``(N_out,)`` integers: requantized activations for hidden
        layers, raw logit accumulators for the output layer.
        """
        if input_bits.shape != (num_steps, spec.in_features):
            raise ShapeError(
                f"input bits {input_bits.shape} do not match "
                f"(T={num_steps}, N_in={spec.in_features})"
            )
        stats = UnitStats()
        cal = self.calibration
        p = self.config.linear_unit.parallel_outputs
        blocks = -(-spec.out_features // p)
        acc = np.zeros(spec.out_features, dtype=np.int64)
        for step in range(num_steps):
            if step > 0:
                acc <<= 1
            spikes = input_bits[step].astype(bool)
            for block in range(blocks):
                lo = block * p
                hi = min(lo + p, spec.out_features)
                # One weight word per cycle: weights[lo:hi, n] arrives
                # while input neuron n's spike gates the adder row.
                block_weights = spec.weights[lo:hi, :]
                acc[lo:hi] += block_weights[:, spikes].sum(axis=1)
                stats.cycles += spec.in_features + cal.linear_block_flush
                stats.adder_ops += int(spikes.sum()) * (hi - lo)
                stats.traffic.kernel_read_values += (
                    spec.in_features * (hi - lo))
            stats.traffic.activation_read_bits += spec.in_features
            stats.cycles += cal.linear_pass_setup
        acc += spec.bias
        stats.accumulator_writes = blocks * num_steps
        if spec.is_output:
            out = acc
        else:
            out = requantize(acc[np.newaxis, :], spec.scales, num_steps,
                             channel_axis=1)[0]
        stats.traffic.activation_write_bits = int(out.size * num_steps)
        return out, stats

"""Calibration constants for the latency / power / resource models.

The paper specifies the architecture's *behaviour* exactly (Fig. 2, Alg. 1)
but not the cycle-level cost of its memory interfaces, nor Vivado's mapping
of units to LUTs/FFs, nor the FPGA's power breakdown.  Those are captured
here as a small set of constants, fitted once against the paper's published
anchor points and then frozen.

Latency — fitted to Table II (LeNet-5, T=3, 100 MHz, U = 1/2/4/8 →
1063/648/450/370 µs) together with the channel-packing rule of
``repro.core.latency`` (output channels share a unit when whole *input*
rows fit the shift register side by side).  The frozen constants reproduce
the four Table II points to +0.8% / −0.01% / +0.6% / −8.2% and Table I's
latency-vs-T line to within 4% (slope error 0.2%).  Applied unchanged to
the other deployments they predict Table III's LeNet row within ~5%, the
VGG-11 row within ~26% and the Fang-CNN row within ~25% — see
EXPERIMENTS.md for the full paper-vs-model table.

Power — fitted to Table II (3.07/3.09/3.17/3.28 W), cross-checked against
Table III (3.4/3.6 W @200 MHz; 4.9 W @115 MHz with DRAM):
``P = STATIC + (f/100MHz)·(BASE + UNIT·U + BRAM·Mbit) + DRAM_IF``.

Resources — fitted to Table II (LUT 11k/15k/24k/42k, FF 10k/14k/23k/39k):
bottom-up per-unit adder/register/mux counts plus a fixed base
(controller, pooling unit, linear unit, buffer addressing) and a small
superlinear interconnect term.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LatencyCalibration", "PowerCalibration", "ResourceCalibration",
           "DEFAULT_LATENCY", "DEFAULT_POWER", "DEFAULT_RESOURCES"]


@dataclass(frozen=True)
class LatencyCalibration:
    """Cycle-cost constants for the analytic latency model."""

    # Non-overlapped cycles per convolution row pass on top of the Kc
    # shift cycles (row fetch handshake, kernel-row load, write-back).
    conv_row_overhead: int = 6
    # Pipeline fill when a new input channel enters the adder array.
    conv_channel_fill: int = 5
    # Per (channel-group, time-step) sequencing cost of a conv layer.
    conv_pass_setup: int = 12
    # Pooling unit per-row overhead (narrower register, two rows loaded in
    # parallel, but value-width write-back).
    pool_row_overhead: int = 13
    pool_pass_setup: int = 8
    # Linear unit: one weight word per cycle; switching output blocks
    # flushes the adder row.
    linear_block_flush: int = 8
    linear_pass_setup: int = 12
    # Controller reconfiguration between layers.
    layer_setup: int = 200
    # Loading one input-image row into the ping-pong buffer, per step.
    input_row_load: int = 6


@dataclass(frozen=True)
class PowerCalibration:
    """Watt-level constants for the power model (Virtex UltraScale+)."""

    static_w: float = 2.80           # device static + clocking overhead
    base_dynamic_w: float = 0.233    # controller/buffers/units base @100MHz
    conv_unit_dynamic_w: float = 0.0305  # per conv unit @100MHz
    bram_dynamic_w_per_mbit: float = 0.010
    dram_interface_w: float = 1.20   # MIG + IO when DRAM streaming is on
    reference_clock_mhz: float = 100.0


@dataclass(frozen=True)
class ResourceCalibration:
    """LUT/FF cost constants for the resource model."""

    # One adder bit maps to ~1 LUT (carry logic) and ~1 FF (pipeline reg).
    luts_per_adder_bit: float = 1.0
    ffs_per_adder_bit: float = 1.0
    # The spike/zero multiplexer per adder column input.
    luts_per_mux: float = 3.0
    # Kernel-value registers per adder (weight_bits wide).
    ffs_per_kernel_bit: float = 1.0
    # Output-logic accumulator per column (add + shift + saturate).
    luts_per_output_bit: float = 1.0
    ffs_per_output_bit: float = 1.0
    # Per-unit control FSM.
    unit_control_luts: int = 300
    unit_control_ffs: int = 250
    # Fixed base: controller, buffer addressing, DMA, linear unit frame.
    base_luts: int = 5200
    base_ffs: int = 4600
    # Interconnect/arbitration growth with unit count (superlinear).
    interconnect_luts_per_unit_sq: float = 30.0
    interconnect_ffs_per_unit_sq: float = 20.0
    # DRAM memory controller, instantiated only when weights stream.
    dram_controller_luts: int = 9000
    dram_controller_ffs: int = 10000


DEFAULT_LATENCY = LatencyCalibration()
DEFAULT_POWER = PowerCalibration()
DEFAULT_RESOURCES = ResourceCalibration()
